//! Offline stand-in for the `bytes` crate (see `vendor/README.md`).
//!
//! [`Bytes`] is an immutable, cheaply-clonable byte buffer: an
//! `Arc<[u8]>` with `Deref<Target = [u8]>`, which is the entire surface
//! this workspace relies on.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    inner: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            inner: Arc::from(data),
        }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// A new buffer holding a copy of the given subrange.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.inner.len(),
        };
        Bytes::copy_from_slice(&self.inner[start..end])
    }

    /// The bytes as a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes {
            inner: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(v: &'static [u8; N]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.inner.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.inner.as_ref() == other.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.inner.iter().take(32) {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.inner.len() > 32 {
            write!(f, "… ({} bytes)", self.inner.len())?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_deref() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        assert_eq!(b.len(), 4);
        assert_eq!(&b[1..3], &[2, 3]);
        assert_eq!(b.slice(1..3).to_vec(), vec![2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert!(Bytes::new().is_empty());
    }
}
