//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Runs each benchmark routine a small fixed number of iterations and
//! prints a single min/mean line per benchmark. No statistics engine,
//! no HTML reports, no CLI argument handling — just enough for
//! `cargo bench` to build, run, and produce readable smoke numbers.

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

const WARMUP_ITERS: u32 = 2;
const MEASURE_ITERS: u32 = 10;

/// Identifier for a parameterized benchmark (`group/function/param`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything `bench_function` accepts as a name.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// How `iter_batched` amortizes setup cost (ignored by the stand-in).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters_run: u64,
}

impl Bencher {
    fn new() -> Bencher {
        Bencher { iters_run: 0 }
    }

    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        for _ in 0..MEASURE_ITERS {
            let start = Instant::now();
            black_box(routine());
            record(start.elapsed().as_nanos() as u64);
            self.iters_run += 1;
        }
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for i in 0..(WARMUP_ITERS + MEASURE_ITERS) {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            if i >= WARMUP_ITERS {
                record(start.elapsed().as_nanos() as u64);
                self.iters_run += 1;
            }
        }
    }

    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        for i in 0..(WARMUP_ITERS + MEASURE_ITERS) {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            if i >= WARMUP_ITERS {
                record(start.elapsed().as_nanos() as u64);
                self.iters_run += 1;
            }
        }
    }
}

thread_local! {
    static SAMPLES: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
}

fn record(nanos: u64) {
    SAMPLES.with(|s| s.borrow_mut().push(nanos));
}

fn drain_samples() -> Vec<u64> {
    SAMPLES.with(|s| std::mem::take(&mut *s.borrow_mut()))
}

fn human(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} us", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

fn run_one(full_name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::new();
    drain_samples();
    f(&mut b);
    let samples = drain_samples();
    if samples.is_empty() {
        println!("{full_name:<50} (no samples)");
        return;
    }
    let min = *samples.iter().min().expect("non-empty");
    let mean = samples.iter().sum::<u64>() / samples.len() as u64;
    println!(
        "{full_name:<50} min {:>12}  mean {:>12}  ({} iters)",
        human(min),
        human(mean),
        samples.len()
    );
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sample counts are fixed in the stand-in; accepted for API parity.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<N: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&full, &mut f);
        self
    }

    pub fn bench_with_input<N: IntoBenchmarkId, I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: N,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&full, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    pub fn bench_function<N: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into_benchmark_id(), &mut f);
        self
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routines() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("stand_in");
        g.sample_size(10);
        let mut count = 0u32;
        g.bench_function("iter", |b| b.iter(|| count += 1));
        assert!(count >= MEASURE_ITERS);
        g.bench_with_input(BenchmarkId::new("with_input", 4), &4u32, |b, &n| {
            b.iter_batched(|| n, |v| v * 2, BatchSize::LargeInput)
        });
        g.finish();
    }
}
