//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the subset this workspace uses — [`RngCore`],
//! [`SeedableRng`], the [`Rng`] extension trait, and
//! [`rngs::SmallRng`] — with the algorithms rand 0.8.5 uses on 64-bit
//! targets (xoshiro256++ core, widening-multiply rejection sampling
//! for integer ranges). Seeding uses the `rand_core` *default*
//! `seed_from_u64` expansion (a PCG32 step per 4-byte chunk); the
//! repo's tuned experiment thresholds depend on the streams this
//! expansion produces, so do not switch it to the xoshiro-specific
//! SplitMix64 override without retuning them.

use std::fmt;

/// Error type for fallible RNG operations. The stand-in's generators
/// never fail; this exists for signature compatibility.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// Core random-number generation: raw integer output and byte filling.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let chunk = self.next_u64().to_le_bytes();
            let n = (dest.len() - i).min(8);
            dest[i..i + n].copy_from_slice(&chunk[..n]);
            i += n;
        }
    }
    /// Fallible fill (never fails here).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed: the `rand_core` 0.6 default
    /// (one PCG32 output per 4-byte chunk, little-endian).
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            let n = chunk.len();
            chunk.copy_from_slice(&x.to_le_bytes()[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Distributions for [`Rng::gen`].
pub mod distributions {
    use super::RngCore;

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "standard" distribution: uniform over the full domain
    /// (floats: `[0, 1)` with 53 bits of precision, as in rand 0.8.5).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u16> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u16 {
            rng.next_u32() as u16
        }
    }

    impl Distribution<u8> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
            rng.next_u32() as u8
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<i64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Distribution<i32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i32 {
            rng.next_u32() as i32
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            // rand 0.8.5: top bit of a u32 draw.
            (rng.next_u32() as i32) < 0
        }
    }
}

/// Uniform range sampling (`Rng::gen_range`).
pub mod uniform {
    use super::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types that can be drawn uniformly from a range.
    pub trait SampleUniform: Sized {
        /// Uniform draw from `[low, high)`.
        fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        /// Uniform draw from `[low, high]`.
        fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    }

    /// Ranges usable with `gen_range`.
    pub trait SampleRange<T> {
        /// Draw one sample from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "gen_range: empty range");
            T::sample_half_open(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "gen_range: empty range");
            T::sample_inclusive(lo, hi, rng)
        }
    }

    // 64-bit integer uniform sampling via widening multiply with
    // rejection, matching rand 0.8.5's `sample_single` for u64.
    fn u64_below<R: RngCore + ?Sized>(range: u64, rng: &mut R) -> u64 {
        debug_assert!(range > 0);
        let zone = (range << range.leading_zeros()).wrapping_sub(1);
        loop {
            let v = rng.next_u64();
            let m = (v as u128) * (range as u128);
            let (hi, lo) = ((m >> 64) as u64, m as u64);
            if lo <= zone {
                return hi;
            }
        }
    }

    fn u32_below<R: RngCore + ?Sized>(range: u32, rng: &mut R) -> u32 {
        debug_assert!(range > 0);
        let zone = (range << range.leading_zeros()).wrapping_sub(1);
        loop {
            let v = rng.next_u32();
            let m = (v as u64) * (range as u64);
            let (hi, lo) = ((m >> 32) as u32, m as u32);
            if lo <= zone {
                return hi;
            }
        }
    }

    macro_rules! impl_uniform_u64 {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    let range = (high as u64).wrapping_sub(low as u64);
                    low.wrapping_add(u64_below(range, rng) as $t)
                }
                fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    let range = (high as u64).wrapping_sub(low as u64).wrapping_add(1);
                    if range == 0 {
                        // Full domain.
                        return rng.next_u64() as $t;
                    }
                    low.wrapping_add(u64_below(range, rng) as $t)
                }
            }
        )*};
    }
    impl_uniform_u64!(u64, usize, i64, isize);

    macro_rules! impl_uniform_u32 {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    let range = (high as u32).wrapping_sub(low as u32);
                    low.wrapping_add(u32_below(range, rng) as $t)
                }
                fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    let range = (high as u32).wrapping_sub(low as u32).wrapping_add(1);
                    if range == 0 {
                        return rng.next_u32() as $t;
                    }
                    low.wrapping_add(u32_below(range, rng) as $t)
                }
            }
        )*};
    }
    impl_uniform_u32!(u32, i32, u16, i16, u8, i8);

    impl SampleUniform for f64 {
        fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            low + u * (high - low)
        }
        fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
            Self::sample_half_open(low, high, rng)
        }
    }

    impl SampleUniform for f32 {
        fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
            let u = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
            low + u * (high - low)
        }
        fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
            Self::sample_half_open(low, high, rng)
        }
    }
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the standard distribution for `T`.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Uniform draw from a range.
    fn gen_range<T, U: uniform::SampleRange<T>>(&mut self, range: U) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        let f: f64 = self.gen();
        f < p
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++, the
    /// algorithm behind rand 0.8.5's `SmallRng` on 64-bit targets.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            if seed.iter().all(|&b| b == 0) {
                return Self::seed_from_u64(0);
            }
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Standard};
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn xoshiro256plusplus_reference_vector() {
        // The test vector from rand 0.8.5 (rand/src/rngs/xoshiro256plusplus.rs),
        // produced with the reference C implementation.
        let mut seed = [0u8; 32];
        seed[0] = 1;
        seed[8] = 2;
        seed[16] = 3;
        seed[24] = 4;
        let mut rng = SmallRng::from_seed(seed);
        let expected: [u64; 10] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
            14011001112246962877,
            12406186145184390807,
            15849039046786891736,
            10450023813501588000,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = Standard.sample(&mut r);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..17);
            assert!((10..17).contains(&v));
            let u = r.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = SmallRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        assert!(r.try_fill_bytes(&mut buf).is_ok());
    }
}
