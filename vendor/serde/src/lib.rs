//! Offline stand-in for the `serde` crate (see `vendor/README.md`).
//!
//! Instead of the real crate's streaming serializer/deserializer
//! traits, this stand-in uses a concrete value tree ([`Content`]) as
//! the data model. [`Serialize`] turns a value into a `Content`;
//! [`Deserialize`] rebuilds a value from one. The JSON crate
//! (`serde_json`'s stand-in) reads and writes `Content` directly.
//!
//! The derive macros in `serde_derive` target these traits; the
//! encoding conventions (structs as maps, unit enum variants as
//! strings, data-carrying variants as single-key maps, `Option` as
//! null-or-value) mirror serde's JSON conventions, so serialized
//! output looks the way real serde would have produced it.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The concrete data model: everything a value serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// Absent / JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Content>),
    /// Map with arbitrary (but typically string) keys, in insertion
    /// order.
    Map(Vec<(Content, Content)>),
}

impl Content {
    /// Borrow as a map, if this is one.
    pub fn as_map(&self) -> Option<&[(Content, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as a sequence, if this is one.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as a string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for the content's kind (for error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) => "u64",
            Content::I64(_) => "i64",
            Content::F64(_) => "f64",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Look up a string key in a `Content::Map`'s entries.
pub fn map_get<'a>(entries: &'a [(Content, Content)], key: &str) -> Option<&'a Content> {
    entries.iter().find_map(|(k, v)| match k {
        Content::Str(s) if s == key => Some(v),
        _ => None,
    })
}

/// Error produced when deserialization finds the wrong shape.
#[derive(Debug, Clone)]
pub struct SerdeError {
    msg: String,
}

impl SerdeError {
    /// An error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> SerdeError {
        SerdeError {
            msg: msg.to_string(),
        }
    }

    /// "expected X while deserializing T, found Y".
    pub fn expected(what: &str, ty: &str, found: &Content) -> SerdeError {
        SerdeError {
            msg: format!("expected {what} for {ty}, found {}", found.kind()),
        }
    }

    /// "missing field F of T".
    pub fn missing(field: &str, ty: &str) -> SerdeError {
        SerdeError {
            msg: format!("missing field `{field}` of {ty}"),
        }
    }
}

impl fmt::Display for SerdeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for SerdeError {}

/// Serialize a value into the [`Content`] data model.
pub trait Serialize {
    /// The value as a content tree.
    fn serialize(&self) -> Content;
}

/// Rebuild a value from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Parse the value out of a content tree.
    fn deserialize(c: &Content) -> Result<Self, SerdeError>;
}

// ---- primitive impls -------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn deserialize(c: &Content) -> Result<Self, SerdeError> {
                let v = match c {
                    Content::U64(v) => *v,
                    Content::I64(v) if *v >= 0 => *v as u64,
                    Content::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    Content::Str(s) => s
                        .parse::<u64>()
                        .map_err(|_| SerdeError::expected("integer", stringify!($t), c))?,
                    _ => return Err(SerdeError::expected("integer", stringify!($t), c)),
                };
                <$t>::try_from(v)
                    .map_err(|_| SerdeError::custom(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn serialize(&self) -> Content {
        Content::U64(*self as u64)
    }
}
impl Deserialize for usize {
    fn deserialize(c: &Content) -> Result<Self, SerdeError> {
        let v = u64::deserialize(c)?;
        usize::try_from(v).map_err(|_| SerdeError::custom(format!("{v} out of range for usize")))
    }
}

// u128/i128 exceed the value tree's integer width; values that fit in
// 64 bits stay numeric, larger ones fall back to decimal strings (the
// integer deserializers above already accept stringified digits).
impl Serialize for u128 {
    fn serialize(&self) -> Content {
        match u64::try_from(*self) {
            Ok(v) => Content::U64(v),
            Err(_) => Content::Str(self.to_string()),
        }
    }
}
impl Deserialize for u128 {
    fn deserialize(c: &Content) -> Result<Self, SerdeError> {
        match c {
            Content::U64(v) => Ok(u128::from(*v)),
            Content::I64(v) if *v >= 0 => Ok(*v as u128),
            Content::Str(s) => s
                .parse::<u128>()
                .map_err(|_| SerdeError::expected("integer", "u128", c)),
            _ => Err(SerdeError::expected("integer", "u128", c)),
        }
    }
}

impl Serialize for i128 {
    fn serialize(&self) -> Content {
        match i64::try_from(*self) {
            Ok(v) => v.serialize(),
            Err(_) => Content::Str(self.to_string()),
        }
    }
}
impl Deserialize for i128 {
    fn deserialize(c: &Content) -> Result<Self, SerdeError> {
        match c {
            Content::U64(v) => Ok(i128::from(*v)),
            Content::I64(v) => Ok(i128::from(*v)),
            Content::Str(s) => s
                .parse::<i128>()
                .map_err(|_| SerdeError::expected("integer", "i128", c)),
            _ => Err(SerdeError::expected("integer", "i128", c)),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                let v = i64::from(*self);
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(c: &Content) -> Result<Self, SerdeError> {
                let v: i64 = match c {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| SerdeError::expected("integer", stringify!($t), c))?,
                    Content::F64(f) if f.fract() == 0.0 => *f as i64,
                    Content::Str(s) => s
                        .parse::<i64>()
                        .map_err(|_| SerdeError::expected("integer", stringify!($t), c))?,
                    _ => return Err(SerdeError::expected("integer", stringify!($t), c)),
                };
                <$t>::try_from(v)
                    .map_err(|_| SerdeError::custom(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn serialize(&self) -> Content {
        (*self as i64).serialize()
    }
}
impl Deserialize for isize {
    fn deserialize(c: &Content) -> Result<Self, SerdeError> {
        let v = i64::deserialize(c)?;
        isize::try_from(v).map_err(|_| SerdeError::custom(format!("{v} out of range for isize")))
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Content {
        Content::F64(*self)
    }
}
impl Deserialize for f64 {
    fn deserialize(c: &Content) -> Result<Self, SerdeError> {
        match c {
            Content::F64(f) => Ok(*f),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            _ => Err(SerdeError::expected("number", "f64", c)),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn deserialize(c: &Content) -> Result<Self, SerdeError> {
        Ok(f64::deserialize(c)? as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Content {
        Content::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize(c: &Content) -> Result<Self, SerdeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err(SerdeError::expected("bool", "bool", c)),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize(c: &Content) -> Result<Self, SerdeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(SerdeError::expected("string", "String", c)),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn deserialize(c: &Content) -> Result<Self, SerdeError> {
        let s = String::deserialize(c)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(ch), None) => Ok(ch),
            _ => Err(SerdeError::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(c: &Content) -> Result<Self, SerdeError> {
        Ok(Box::new(T::deserialize(c)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.serialize(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(c: &Content) -> Result<Self, SerdeError> {
        match c {
            Content::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(c: &Content) -> Result<Self, SerdeError> {
        c.as_seq()
            .ok_or_else(|| SerdeError::expected("sequence", "Vec", c))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Content {
                Content::Seq(vec![$(self.$n.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(c: &Content) -> Result<Self, SerdeError> {
                let s = c.as_seq().ok_or_else(|| SerdeError::expected("sequence", "tuple", c))?;
                Ok(($($t::deserialize(
                    s.get($n).ok_or_else(|| SerdeError::custom("tuple too short"))?,
                )?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Map keys: types that can serve as serialized map keys (encoded as
/// strings, like serde_json does for non-string keys).
pub trait MapKey: Sized + Ord {
    /// The key as its map-key content (a string or native string).
    fn to_key(&self) -> Content;
    /// Parse the key back from map-key content.
    fn from_key(c: &Content) -> Result<Self, SerdeError>;
}

impl MapKey for String {
    fn to_key(&self) -> Content {
        Content::Str(self.clone())
    }
    fn from_key(c: &Content) -> Result<Self, SerdeError> {
        String::deserialize(c)
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> Content {
                Content::Str(self.to_string())
            }
            fn from_key(c: &Content) -> Result<Self, SerdeError> {
                <$t>::deserialize(c)
            }
        }
    )*};
}
impl_int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.serialize()))
                .collect(),
        )
    }
}
impl<K: MapKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(c: &Content) -> Result<Self, SerdeError> {
        c.as_map()
            .ok_or_else(|| SerdeError::expected("map", "BTreeMap", c))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?)))
            .collect()
    }
}

impl<K: MapKey + std::hash::Hash + Eq, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Content {
        // Deterministic output: sort keys like a BTreeMap would.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Content::Map(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_key(), v.serialize()))
                .collect(),
        )
    }
}
impl<K: MapKey + std::hash::Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(c: &Content) -> Result<Self, SerdeError> {
        c.as_map()
            .ok_or_else(|| SerdeError::expected("map", "HashMap", c))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?)))
            .collect()
    }
}

impl Serialize for Content {
    fn serialize(&self) -> Content {
        self.clone()
    }
}
impl Deserialize for Content {
    fn deserialize(c: &Content) -> Result<Self, SerdeError> {
        Ok(c.clone())
    }
}

impl Serialize for () {
    fn serialize(&self) -> Content {
        Content::Null
    }
}
impl Deserialize for () {
    fn deserialize(_: &Content) -> Result<Self, SerdeError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::deserialize(&7u64.serialize()).unwrap(), 7);
        assert_eq!(i32::deserialize(&(-3i32).serialize()).unwrap(), -3);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert_eq!(bool::deserialize(&true.serialize()).unwrap(), true);
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<u32>::deserialize(&Content::Null).unwrap(),
            None::<u32>
        );
        assert_eq!(
            Vec::<u8>::deserialize(&vec![1u8, 2].serialize()).unwrap(),
            vec![1, 2]
        );
    }

    #[test]
    fn maps_stringify_integer_keys() {
        let mut m = BTreeMap::new();
        m.insert(5u64, "five".to_string());
        let c = m.serialize();
        let entries = c.as_map().unwrap();
        assert_eq!(entries[0].0, Content::Str("5".into()));
        let back: BTreeMap<u64, String> = BTreeMap::deserialize(&c).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn tuples_are_sequences() {
        let t = (1u32, "x".to_string(), 2.0f64);
        let back: (u32, String, f64) = Deserialize::deserialize(&t.serialize()).unwrap();
        assert_eq!(back, t);
    }
}
