//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! Hand-rolled derive macros (no `syn`/`quote`) for the value-tree
//! `serde` stand-in. Supported shapes: named-field structs, tuple
//! structs (including newtypes), unit structs, and enums with unit /
//! tuple / struct variants. Supported attribute: `#[serde(default)]`
//! on named fields. Generics are intentionally unsupported — the
//! workspace derives only concrete types.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field: identifier plus whether `#[serde(default)]` was set.
struct Field {
    name: String,
    default: bool,
}

/// A parsed variant of an enum.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

/// A parsed derive input.
enum Input {
    NamedStruct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derive `serde::Serialize` (value-tree stand-in).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

/// Derive `serde::Deserialize` (value-tree stand-in).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}

// ---- parsing ---------------------------------------------------------

/// Consume leading attributes; report whether any was `#[serde(default)]`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut has_default = false;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    let text = g.stream().to_string();
                    if text.starts_with("serde") && text.contains("default") {
                        has_default = true;
                    }
                    i += 2;
                } else {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    (i, has_default)
}

/// Consume a visibility qualifier if present.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Advance past a type, stopping at a top-level (angle-depth 0) comma.
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle: i32 = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => break,
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
    i
}

/// Parse named fields out of a brace group's token list.
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (j, has_default) = skip_attrs(tokens, i);
        let j = skip_vis(tokens, j);
        let Some(TokenTree::Ident(name)) = tokens.get(j) else {
            break;
        };
        let name = name.to_string();
        // Expect `:` then the type.
        let mut k = j + 1;
        if matches!(tokens.get(k), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
            k = skip_type(tokens, k + 1);
        }
        fields.push(Field {
            name,
            default: has_default,
        });
        // Skip the separating comma.
        if matches!(tokens.get(k), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            k += 1;
        }
        i = k;
    }
    fields
}

/// Count tuple fields in a parenthesis group's token list.
fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut n = 0;
    let mut i = 0;
    while i < tokens.len() {
        let (j, _) = skip_attrs(tokens, i);
        let j = skip_vis(tokens, j);
        if j >= tokens.len() {
            break;
        }
        let k = skip_type(tokens, j);
        n += 1;
        i = if matches!(tokens.get(k), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            k + 1
        } else {
            k
        };
    }
    n
}

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, _) = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, found {other:?}"),
    };
    let name = match tokens.get(i + 1) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    i += 2;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stand-in: generic type `{name}` is not supported");
    }
    match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Input::NamedStruct {
                    name,
                    fields: parse_named_fields(&inner),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Input::TupleStruct {
                    name,
                    arity: count_tuple_fields(&inner),
                }
            }
            _ => Input::UnitStruct { name },
        },
        "enum" => {
            let Some(TokenTree::Group(g)) = tokens.get(i) else {
                panic!("serde_derive: expected enum body for `{name}`");
            };
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let mut variants = Vec::new();
            let mut j = 0;
            while j < inner.len() {
                let (k, _) = skip_attrs(&inner, j);
                let Some(TokenTree::Ident(vname)) = inner.get(k) else {
                    break;
                };
                let vname = vname.to_string();
                let mut k = k + 1;
                let kind = match inner.get(k) {
                    Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Brace => {
                        let vtokens: Vec<TokenTree> = vg.stream().into_iter().collect();
                        k += 1;
                        VariantKind::Struct(parse_named_fields(&vtokens))
                    }
                    Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Parenthesis => {
                        let vtokens: Vec<TokenTree> = vg.stream().into_iter().collect();
                        k += 1;
                        VariantKind::Tuple(count_tuple_fields(&vtokens))
                    }
                    _ => VariantKind::Unit,
                };
                // Skip an optional discriminant, then the separating comma.
                while k < inner.len()
                    && !matches!(&inner[k], TokenTree::Punct(p) if p.as_char() == ',')
                {
                    k += 1;
                }
                if k < inner.len() {
                    k += 1;
                }
                variants.push(Variant { name: vname, kind });
                j = k;
            }
            Input::Enum { name, variants }
        }
        other => panic!("serde_derive: cannot derive for `{other}`"),
    }
}

// ---- code generation -------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    match input {
        Input::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "m.push((::serde::Content::Str(::std::string::String::from(\"{f}\")), \
                     ::serde::Serialize::serialize(&self.{f})));\n",
                    f = f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Content {{\n\
                 let mut m: ::std::vec::Vec<(::serde::Content, ::serde::Content)> = ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Content::Map(m)\n\
                 }}\n}}\n"
            )
        }
        Input::TupleStruct { name, arity } => {
            if *arity == 1 {
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Content {{\n\
                     ::serde::Serialize::serialize(&self.0)\n\
                     }}\n}}\n"
                )
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                    .collect();
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Content {{\n\
                     ::serde::Content::Seq(::std::vec![{}])\n\
                     }}\n}}\n",
                    items.join(", ")
                )
            }
        }
        Input::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Content {{ ::serde::Content::Null }}\n}}\n"
        ),
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Content::Str(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let payload = if *arity == 1 {
                            "::serde::Serialize::serialize(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Content::Map(::std::vec![\
                             (::serde::Content::Str(::std::string::String::from(\"{vn}\")), {payload})]),\n",
                            binds = binds.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::serde::Content::Str(::std::string::String::from(\"{f}\")), \
                                     ::serde::Serialize::serialize({f}))",
                                    f = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Content::Map(::std::vec![\
                             (::serde::Content::Str(::std::string::String::from(\"{vn}\")), \
                             ::serde::Content::Map(::std::vec![{items}]))]),\n",
                            binds = binds.join(", "),
                            items = items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Content {{\n\
                 match self {{\n{arms}}}\n\
                 }}\n}}\n"
            )
        }
    }
}

fn gen_named_field_builder(ty: &str, path: &str, fields: &[Field], source: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let fetch = if f.default {
            format!(
                "match ::serde::map_get({source}, \"{f}\") {{ \
                 Some(v) => ::serde::Deserialize::deserialize(v)?, \
                 None => ::core::default::Default::default() }}",
                f = f.name
            )
        } else {
            format!(
                "match ::serde::map_get({source}, \"{f}\") {{ \
                 Some(v) => ::serde::Deserialize::deserialize(v)?, \
                 None => return ::core::result::Result::Err(::serde::SerdeError::missing(\"{f}\", \"{ty}\")) }}",
                f = f.name
            )
        };
        out.push_str(&format!("{f}: {fetch},\n", f = f.name));
    }
    format!("{path} {{\n{out}}}")
}

fn gen_deserialize(input: &Input) -> String {
    match input {
        Input::NamedStruct { name, fields } => {
            let builder = gen_named_field_builder(name, name, fields, "m");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(c: &::serde::Content) -> ::core::result::Result<Self, ::serde::SerdeError> {{\n\
                 let m = c.as_map().ok_or_else(|| ::serde::SerdeError::expected(\"map\", \"{name}\", c))?;\n\
                 ::core::result::Result::Ok({builder})\n\
                 }}\n}}\n"
            )
        }
        Input::TupleStruct { name, arity } => {
            if *arity == 1 {
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(c: &::serde::Content) -> ::core::result::Result<Self, ::serde::SerdeError> {{\n\
                     ::core::result::Result::Ok({name}(::serde::Deserialize::deserialize(c)?))\n\
                     }}\n}}\n"
                )
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::deserialize(s.get({i}).ok_or_else(|| \
                             ::serde::SerdeError::custom(\"tuple struct {name} too short\"))?)?"
                        )
                    })
                    .collect();
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(c: &::serde::Content) -> ::core::result::Result<Self, ::serde::SerdeError> {{\n\
                     let s = c.as_seq().ok_or_else(|| ::serde::SerdeError::expected(\"sequence\", \"{name}\", c))?;\n\
                     ::core::result::Result::Ok({name}({items}))\n\
                     }}\n}}\n",
                    items = items.join(", ")
                )
            }
        }
        Input::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(_c: &::serde::Content) -> ::core::result::Result<Self, ::serde::SerdeError> {{\n\
             ::core::result::Result::Ok({name})\n\
             }}\n}}\n"
        ),
        Input::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let body = if *arity == 1 {
                            format!(
                                "::core::result::Result::Ok({name}::{vn}(::serde::Deserialize::deserialize(v)?))"
                            )
                        } else {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::deserialize(s.get({i}).ok_or_else(|| \
                                         ::serde::SerdeError::custom(\"variant {name}::{vn} too short\"))?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "{{ let s = v.as_seq().ok_or_else(|| \
                                 ::serde::SerdeError::expected(\"sequence\", \"{name}::{vn}\", v))?; \
                                 ::core::result::Result::Ok({name}::{vn}({items})) }}",
                                items = items.join(", ")
                            )
                        };
                        data_arms.push_str(&format!("\"{vn}\" => {body},\n"));
                    }
                    VariantKind::Struct(fields) => {
                        let builder = gen_named_field_builder(
                            &format!("{name}::{vn}"),
                            &format!("{name}::{vn}"),
                            fields,
                            "mm",
                        );
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{ let mm = v.as_map().ok_or_else(|| \
                             ::serde::SerdeError::expected(\"map\", \"{name}::{vn}\", v))?; \
                             ::core::result::Result::Ok({builder}) }},\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(c: &::serde::Content) -> ::core::result::Result<Self, ::serde::SerdeError> {{\n\
                 match c {{\n\
                 ::serde::Content::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => ::core::result::Result::Err(::serde::SerdeError::custom(\
                 ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                 }},\n\
                 ::serde::Content::Map(m) if m.len() == 1 => {{\n\
                 let (k, v) = &m[0];\n\
                 let k = k.as_str().ok_or_else(|| ::serde::SerdeError::expected(\"string key\", \"{name}\", c))?;\n\
                 match k {{\n\
                 {data_arms}\
                 other => ::core::result::Result::Err(::serde::SerdeError::custom(\
                 ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                 }}\n\
                 }},\n\
                 _ => ::core::result::Result::Err(::serde::SerdeError::expected(\"variant\", \"{name}\", c)),\n\
                 }}\n\
                 }}\n}}\n"
            )
        }
    }
}
