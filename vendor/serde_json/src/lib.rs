//! Offline stand-in for `serde_json` (see `vendor/README.md`).
//!
//! A deterministic JSON value type plus text (de)serialization bridged
//! over the value-tree `serde` stand-in. Objects are `BTreeMap`-backed,
//! so serialized output is key-sorted and byte-stable, matching the
//! default (non-`preserve_order`) behavior of the real crate.

use serde::{Content, Deserialize, SerdeError, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::io;

// ---- error -----------------------------------------------------------

/// JSON (de)serialization error.
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({:?})", self.msg)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<SerdeError> for Error {
    fn from(e: SerdeError) -> Error {
        Error::new(e)
    }
}

impl From<Error> for io::Error {
    fn from(e: Error) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e.msg)
    }
}

/// Result alias matching the real crate.
pub type Result<T> = std::result::Result<T, Error>;

// ---- number ----------------------------------------------------------

#[derive(Clone, Copy, PartialEq)]
enum N {
    U(u64),
    I(i64),
    F(f64),
}

/// A JSON number: unsigned, signed, or floating point.
#[derive(Clone, Copy, PartialEq)]
pub struct Number(N);

impl Number {
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::U(u) => Some(u),
            N::I(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::U(u) if u <= i64::MAX as u64 => Some(u as i64),
            N::I(i) => Some(i),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self.0 {
            N::U(u) => Some(u as f64),
            N::I(i) => Some(i as f64),
            N::F(f) => Some(f),
        }
    }

    pub fn is_u64(&self) -> bool {
        matches!(self.0, N::U(_))
    }

    pub fn is_i64(&self) -> bool {
        self.as_i64().is_some()
    }

    pub fn is_f64(&self) -> bool {
        matches!(self.0, N::F(_))
    }
}

impl fmt::Debug for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            N::U(u) => write!(f, "{u}"),
            N::I(i) => write!(f, "{i}"),
            N::F(v) => f.write_str(&format_f64(v)),
        }
    }
}

impl From<u64> for Number {
    fn from(u: u64) -> Number {
        Number(N::U(u))
    }
}

impl From<i64> for Number {
    fn from(i: i64) -> Number {
        if i >= 0 {
            Number(N::U(i as u64))
        } else {
            Number(N::I(i))
        }
    }
}

impl From<f64> for Number {
    fn from(f: f64) -> Number {
        Number(N::F(f))
    }
}

/// Shortest round-trip decimal for a finite f64, always containing a
/// `.` or exponent so it re-parses as a float (e.g. `1.0`, not `1`).
fn format_f64(v: f64) -> String {
    let mut s = format!("{v}");
    if !s.contains('.') && !s.contains('e') && !s.contains('E') && !s.contains("inf") {
        s.push_str(".0");
    }
    s
}

// ---- value -----------------------------------------------------------

/// The JSON value type. `Object` is sorted by key.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

/// Object map alias matching the real crate's `serde_json::Map`.
pub type Map<K, V> = BTreeMap<K, V>;

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Lenient lookup: `None` when missing or not an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.get(key),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_compact(self, &mut out);
        f.write_str(&out)
    }
}

impl Default for Value {
    fn default() -> Value {
        Value::Null
    }
}

// ---- Value <-> serde Content bridge ----------------------------------

fn content_to_value(c: &Content) -> Value {
    match c {
        Content::Null => Value::Null,
        Content::Bool(b) => Value::Bool(*b),
        Content::U64(u) => Value::Number(Number(N::U(*u))),
        Content::I64(i) => Value::Number(Number::from(*i)),
        Content::F64(f) => Value::Number(Number(N::F(*f))),
        Content::Str(s) => Value::String(s.clone()),
        Content::Seq(items) => Value::Array(items.iter().map(content_to_value).collect()),
        Content::Map(entries) => {
            let mut o = BTreeMap::new();
            for (k, v) in entries {
                let key = match k {
                    Content::Str(s) => s.clone(),
                    other => {
                        let mut buf = String::new();
                        write_compact(&content_to_value(other), &mut buf);
                        buf
                    }
                };
                o.insert(key, content_to_value(v));
            }
            Value::Object(o)
        }
    }
}

fn value_to_content(v: &Value) -> Content {
    match v {
        Value::Null => Content::Null,
        Value::Bool(b) => Content::Bool(*b),
        Value::Number(Number(N::U(u))) => Content::U64(*u),
        Value::Number(Number(N::I(i))) => Content::I64(*i),
        Value::Number(Number(N::F(f))) => Content::F64(*f),
        Value::String(s) => Content::Str(s.clone()),
        Value::Array(a) => Content::Seq(a.iter().map(value_to_content).collect()),
        Value::Object(o) => Content::Map(
            o.iter()
                .map(|(k, v)| (Content::Str(k.clone()), value_to_content(v)))
                .collect(),
        ),
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Content {
        value_to_content(self)
    }
}

impl Deserialize for Value {
    fn deserialize(c: &Content) -> std::result::Result<Value, SerdeError> {
        Ok(content_to_value(c))
    }
}

// ---- writer ----------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(Number(N::F(f))) if !f.is_finite() => out.push_str("null"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    const PAD: &str = "  ";
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                for _ in 0..=indent {
                    out.push_str(PAD);
                }
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            for _ in 0..indent {
                out.push_str(PAD);
            }
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                for _ in 0..=indent {
                    out.push_str(PAD);
                }
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            for _ in 0..indent {
                out.push_str(PAD);
            }
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

// ---- parser ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(bytes: &'a [u8]) -> Parser<'a> {
        Parser { bytes, pos: 0 }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn err(&self, what: &str) -> Error {
        Error::new(format!("{what} at byte {}", self.pos))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.insert(key, val);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("bad low surrogate"));
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar from the raw bytes.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().ok_or_else(|| self.err("eof"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("short unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad unicode escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if stripped.parse::<u64>().is_ok() {
                    if let Ok(i) = text.parse::<i64>() {
                        return Ok(Value::Number(Number(if i >= 0 {
                            N::U(i as u64)
                        } else {
                            N::I(i)
                        })));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number(N::U(u))));
            }
        }
        let f: f64 = text.parse().map_err(|_| self.err("bad number"))?;
        Ok(Value::Number(Number(N::F(f))))
    }
}

fn parse_root(bytes: &[u8]) -> Result<Value> {
    let mut p = Parser::new(bytes);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

// ---- public API ------------------------------------------------------

/// Convert any serializable value into a [`Value`].
pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(content_to_value(&value.serialize()))
}

/// Convert a [`Value`] into any deserializable type.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    Ok(T::deserialize(&value_to_content(&value))?)
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&content_to_value(&value.serialize()), &mut out);
    Ok(out)
}

/// Serialize to a pretty-printed (2-space indent) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&content_to_value(&value.serialize()), 0, &mut out);
    Ok(out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    Ok(to_string(value)?.into_bytes())
}

/// Serialize to pretty-printed JSON bytes.
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    Ok(to_string_pretty(value)?.into_bytes())
}

/// Serialize compact JSON into an [`io::Write`] sink.
pub fn to_writer<W: io::Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let text = to_string(value)?;
    writer
        .write_all(text.as_bytes())
        .map_err(|e| Error::new(e))?;
    Ok(())
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    from_value(parse_root(s.as_bytes())?)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    from_value(parse_root(bytes)?)
}

/// Build a [`Value`] literal. Supports the flat shapes the workspace
/// uses: `json!(null)`, `json!([a, b])`, `json!({"k": expr, ...})`,
/// and `json!(expr)` for any serializable expression.
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![
            $( $crate::to_value(&$item).expect("json! value serializes") ),*
        ])
    };
    ({ $($key:tt : $val:expr),* $(,)? }) => {{
        let mut object = ::std::collections::BTreeMap::new();
        $(
            object.insert(
                ::std::string::String::from($key),
                $crate::to_value(&$val).expect("json! value serializes"),
            );
        )*
        $crate::Value::Object(object)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serializes")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_containers() {
        let v = json!({
            "name": "abr",
            "count": 42u64,
            "neg": -7i64,
            "ratio": 0.5f64,
            "flag": true,
            "items": vec![1u64, 2, 3],
        });
        let text = to_string(&v).unwrap();
        assert_eq!(
            text,
            "{\"count\":42,\"flag\":true,\"items\":[1,2,3],\"name\":\"abr\",\"neg\":-7,\"ratio\":0.5}"
        );
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        let text = to_string(&1.0f64).unwrap();
        assert_eq!(text, "1.0");
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, 1.0);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line\nquote\"back\\slash\ttab\u{8}\u{c}\u{1}unicode\u{1F600}";
        let text = to_string(s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn index_is_lenient() {
        let v = json!({"a": 1u64});
        assert_eq!(v["a"].as_u64(), Some(1));
        assert!(v["missing"].is_null());
        assert!(v["a"]["deeper"].is_null());
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = json!({"a": vec![1u64], "b": 2u64});
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "{\n  \"a\": [\n    1\n  ],\n  \"b\": 2\n}");
    }

    #[test]
    fn large_u64_survives() {
        let big = u64::MAX;
        let text = to_string(&big).unwrap();
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(back, big);
    }
}
