//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! The `proptest!` macro expands each property into a plain function
//! that runs a fixed number of deterministically generated cases
//! (default 16, `PROPTEST_CASES` overrides). There is no shrinking:
//! a failing case panics with its case number and the runner's seed
//! state so it can be reproduced by rerunning the test. Properties
//! only become tests when the caller writes `#[test]` inside the
//! macro, matching how this workspace already uses the stand-in.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// Deterministic case generator: SplitMix64 from a fixed seed.
    pub struct TestRunner {
        state: u64,
    }

    impl TestRunner {
        pub fn new_deterministic(seed: u64) -> TestRunner {
            TestRunner { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform-ish draw in `[0, bound)`; modulo bias is acceptable
        /// for test-case generation.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        pub fn state(&self) -> u64 {
            self.state
        }
    }

    impl Default for TestRunner {
        fn default() -> TestRunner {
            TestRunner::new_deterministic(0x243f_6a88_85a3_08d3)
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` — try another.
        Reject(String),
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    impl TestCaseError {
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }

        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Number of cases each property runs (`PROPTEST_CASES` override).
    pub fn cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(16)
    }
}

use test_runner::TestRunner;

pub mod strategy {
    use super::test_runner::TestRunner;

    /// A generator of values for property tests.
    pub trait Strategy {
        type Value;

        fn sample(&self, runner: &mut TestRunner) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    /// Adapter returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, runner: &mut TestRunner) -> O {
            (self.f)(self.inner.sample(runner))
        }
    }
}

pub use strategy::{Just, Strategy};

// ---- ranges ----------------------------------------------------------

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, runner: &mut TestRunner) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as u128 - self.start as u128) as u64;
                // A zero width only happens for the full u64 domain.
                let off = if width == 0 {
                    runner.next_u64()
                } else {
                    runner.below(width)
                };
                (self.start as u128 + off as u128) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn sample(&self, runner: &mut TestRunner) -> $ty {
                assert!(self.start() <= self.end(), "empty range strategy");
                let width = (*self.end() as u128 - *self.start() as u128 + 1) as u64;
                let off = if width == 0 {
                    runner.next_u64()
                } else {
                    runner.below(width)
                };
                (*self.start() as u128 + off as u128) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, runner: &mut TestRunner) -> f64 {
        self.start + runner.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, runner: &mut TestRunner) -> f64 {
        self.start() + runner.unit_f64() * (self.end() - self.start())
    }
}

// ---- tuples ----------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(runner),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

// ---- any / Arbitrary -------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(runner: &mut TestRunner) -> $ty {
                runner.next_u64() as $ty
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> bool {
        runner.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(runner: &mut TestRunner) -> f64 {
        runner.unit_f64()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// ---- collections -----------------------------------------------------

pub mod collection {
    use super::test_runner::TestRunner;
    use super::Strategy;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for vectors of `element` with length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + runner.below(span) as usize;
            (0..len).map(|_| self.element.sample(runner)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestCaseResult, TestRunner};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

// ---- macros ----------------------------------------------------------

/// Define properties. Each expands to a plain function running
/// [`test_runner::cases`] deterministic cases; add `#[test]` inside the
/// macro to register it with the test harness.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block )*) => {$(
        $(#[$meta])*
        #[allow(dead_code)]
        fn $name() {
            let cases = $crate::test_runner::cases();
            let mut runner = $crate::test_runner::TestRunner::default();
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < cases && attempts < cases * 64 {
                attempts += 1;
                let state = runner.state();
                let outcome: $crate::test_runner::TestCaseResult = (|| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut runner);)+
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} failed on case {} (runner state {:#x}): {}",
                            stringify!($name), accepted, state, msg
                        );
                    }
                }
            }
            assert!(
                accepted == cases,
                "property {} rejected too many cases ({} accepted of {} wanted)",
                stringify!($name), accepted, cases
            );
        }
    )*};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Fail the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` (both: `{:?}`)",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Reject the current case (it is regenerated, not failed) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut runner = TestRunner::default();
        for _ in 0..200 {
            let v = Strategy::sample(&(10u64..20), &mut runner);
            assert!((10..20).contains(&v));
            let w = Strategy::sample(&(0u64..u64::MAX), &mut runner);
            assert!(w < u64::MAX);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let draw = || {
            let mut runner = TestRunner::default();
            let strat = crate::collection::vec((0u64..100, crate::any::<bool>()), 1..10);
            (0..5)
                .map(|_| Strategy::sample(&strat, &mut runner))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }

    proptest! {
        #[test]
        fn macro_runs_and_maps(x in (0u32..50).prop_map(|v| v * 2), flag in crate::any::<bool>()) {
            prop_assume!(x != 2);
            prop_assert!(x < 100);
            prop_assert_eq!(x % 2, 0);
            if flag {
                prop_assert_ne!(x, 99);
            }
            if x == 0 {
                return Ok(());
            }
        }
    }
}
