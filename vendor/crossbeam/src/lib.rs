//! Offline stand-in placeholder for `crossbeam` (see `vendor/README.md`).
//! Listed in the workspace dependency table but not currently used by
//! any member crate; the patch entry exists so the lockfile resolves
//! offline. Grow this only when a crate actually needs it.
