//! Quickstart: the adaptive driver in ~60 lines.
//!
//! Builds a rearranged disk, attaches the adaptive driver, generates a
//! skewed request stream, lets the analyzer find the hot blocks, places
//! them with the organ-pipe policy, and shows the seek-time drop.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use abr::core::analyzer::{FullAnalyzer, ReferenceAnalyzer};
use abr::core::arranger::BlockArranger;
use abr::core::placement::PolicyKind;
use abr::disk::{models, Disk, DiskLabel};
use abr::driver::request::IoRequest;
use abr::driver::{AdaptiveDriver, DriverConfig, Ioctl, IoctlReply};
use abr::sim::dist::Zipf;
use abr::sim::{SimRng, SimTime};

fn main() {
    // A Toshiba MK156F with 48 cylinders reserved in the middle (the
    // paper's configuration), formatted and attached.
    let model = models::toshiba_mk156f();
    let label = DiskLabel::rearranged(model.geometry, 48);
    let config = DriverConfig::default();
    let mut disk = Disk::new(model);
    AdaptiveDriver::format(&mut disk, &label, &config);
    let mut driver = AdaptiveDriver::attach(disk, config).expect("attach");
    let n_blocks = driver.label().virtual_geometry().total_sectors() / 16;

    // A highly skewed request stream over the whole disk: rank-r of 2000
    // scattered blocks, Zipf-distributed like the paper's measurements.
    let zipf = Zipf::fit_top_share(2000, 100, 0.90);
    let mut rng = SimRng::new(7);
    let block_of_rank: Vec<u64> = (0..2000).map(|_| rng.below(n_blocks)).collect();

    let mut run_phase = |driver: &mut AdaptiveDriver, start_us: u64| -> (f64, f64) {
        let mut analyzer = FullAnalyzer::new();
        for i in 0..20_000u64 {
            let block = block_of_rank[zipf.sample(&mut rng)];
            let now = SimTime::from_micros(start_us + i * 40_000);
            driver
                .submit(IoRequest::read(0, block * 16, 16), now)
                .expect("submit");
            driver.drain();
            analyzer.observe(block, 1);
        }
        let stats = match driver.ioctl(Ioctl::ReadStats, SimTime::from_micros(u64::MAX / 2)) {
            Ok(IoctlReply::Stats(s)) => s,
            _ => unreachable!(),
        };
        let curve = driver.disk().model().seek;
        let seek_ms = stats.reads.sched_seek.mean_by(|d| curve.time_ms(d));
        (seek_ms, stats.reads.sched_seek.fraction_of(0) * 100.0)
    };

    let (before_ms, before_zero) = run_phase(&mut driver, 0);
    println!(
        "before rearrangement: mean seek {before_ms:5.2} ms, {before_zero:4.1}% zero-length seeks"
    );

    // Find the hot blocks by monitoring (the driver recorded every
    // request), then place the hottest 1000 with the organ-pipe policy.
    let mut analyzer = FullAnalyzer::new();
    if let Ok(IoctlReply::RequestTable { records, .. }) =
        driver.ioctl(Ioctl::ReadRequestTable, SimTime::from_micros(u64::MAX / 2))
    {
        for r in records {
            analyzer.observe(r.block, 1);
        }
    }
    let arranger = BlockArranger::new(PolicyKind::OrganPipe.make(1));
    let report = arranger
        .rearrange(
            &mut driver,
            &analyzer.hot_list(1000),
            1000,
            SimTime::from_micros(u64::MAX / 2 + 1_000_000),
        )
        .expect("rearrange");
    println!(
        "rearranged {} blocks ({} disk ops, {:.1} s of disk time)",
        report.blocks_placed,
        report.io_ops,
        report.busy.as_secs_f64()
    );

    let (after_ms, after_zero) = run_phase(&mut driver, u64::MAX / 2 + 100_000_000);
    println!(
        "after  rearrangement: mean seek {after_ms:5.2} ms, {after_zero:4.1}% zero-length seeks"
    );
    println!(
        "seek time reduction: {:.0}%",
        (1.0 - after_ms / before_ms) * 100.0
    );
}
