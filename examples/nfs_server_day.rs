//! Simulate the paper's NFS file server for an off day and an on day.
//!
//! Reproduces the §5.2 protocol on the Toshiba MK156F with the *system*
//! file system workload: one day without rearrangement, then the hottest
//! 1018 blocks are placed overnight by the organ-pipe policy, and the
//! next day is measured with rearrangement active.
//!
//! ```text
//! cargo run --release --example nfs_server_day [fujitsu] [users]
//! ```

use abr::core::{DayMetrics, Experiment, ExperimentConfig};
use abr::disk::models;
use abr::workload::WorkloadProfile;

fn row(label: &str, m: &DayMetrics) {
    let a = m.all;
    println!(
        "{label:3}  requests {:6}  | seek dist {:5.1} cyl (FCFS {:5.1}) | zero-seeks {:4.1}% | seek {:5.2} ms | service {:5.2} ms | waiting {:6.2} ms",
        a.n, a.seek_dist, a.fcfs_seek_dist, a.zero_seek_pct, a.seek_ms, a.service_ms, a.waiting_ms
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let disk = if args.iter().any(|a| a == "fujitsu") {
        models::fujitsu_m2266()
    } else {
        models::toshiba_mk156f()
    };
    let profile = if args.iter().any(|a| a == "users") {
        WorkloadProfile::users_fs()
    } else {
        WorkloadProfile::system_fs()
    };
    let n_blocks = if disk.geometry.cylinders >= 1200 {
        3500
    } else {
        1018
    };
    println!(
        "disk: {} | workload: {} | placing {} blocks on 'on' days",
        disk.name, profile.name, n_blocks
    );
    println!("building file server (newfs, population, aging, warm-up day)...");
    let cfg = ExperimentConfig::new(disk, profile);
    let mut server = Experiment::new(cfg);

    println!("running measured off day (7am-10pm)...");
    let off = server.run_day();
    row("off", &off);

    let report = server.rearrange_for_next_day(n_blocks);
    println!(
        "overnight: placed {} blocks with {} disk ops in {:.1} s of disk time",
        report.blocks_placed,
        report.io_ops,
        report.busy.as_secs_f64()
    );

    println!("running measured on day...");
    let on = server.run_day();
    row("on", &on);

    println!();
    println!(
        "seek time reduced {:.0}%, service time {:.0}%, waiting time {:.0}%",
        (1.0 - on.all.seek_ms / off.all.seek_ms) * 100.0,
        (1.0 - on.all.service_ms / off.all.service_ms) * 100.0,
        (1.0 - on.all.waiting_ms / off.all.waiting_ms) * 100.0,
    );
    println!("(the paper measured ~90% / ~40% / ~44% for the Toshiba system file system)");
}
