//! Crash recovery of the rearranged disk (§4.1.2).
//!
//! The block table's on-disk copy "always correctly reflects the
//! rearranged blocks", but its dirty bits may be stale; the driver
//! therefore marks every entry dirty when it rebuilds the in-memory table
//! after a failure, so no update to a repositioned block can be lost.
//! This example demonstrates the full cycle: rearrange, update a
//! rearranged block, crash without cleaning, re-attach, clean — and show
//! the update survived.
//!
//! ```text
//! cargo run --release --example crash_recovery
//! ```

use abr::core::analyzer::HotBlock;
use abr::core::arranger::BlockArranger;
use abr::core::placement::PolicyKind;
use abr::disk::{models, Disk, DiskLabel};
use abr::driver::request::IoRequest;
use abr::driver::{AdaptiveDriver, DriverConfig};
use abr::sim::SimTime;
use bytes::Bytes;

fn t(s: u64) -> SimTime {
    SimTime::from_micros(s * 1_000_000)
}

fn main() {
    let model = models::toshiba_mk156f();
    let label = DiskLabel::rearranged(model.geometry, 48);
    let config = DriverConfig::default();
    let mut disk = Disk::new(model);
    AdaptiveDriver::format(&mut disk, &label, &config);
    let mut driver = AdaptiveDriver::attach(disk, config).expect("attach");

    // Write version 1 of block 7, then rearrange it into the reserved
    // area.
    let v1 = Bytes::from(vec![0x11u8; 8192]);
    driver
        .submit(IoRequest::write(0, 7 * 16, 16, v1), t(0))
        .expect("write v1");
    driver.drain();
    let arranger = BlockArranger::new(PolicyKind::OrganPipe.make(1));
    arranger
        .rearrange(
            &mut driver,
            &[HotBlock {
                block: 7,
                count: 99,
            }],
            1,
            t(10),
        )
        .expect("rearrange");
    println!("block 7 copied into the reserved area (3 disk ops incl. table write)");

    // Update the block *through* the driver: the write is redirected to
    // the reserved copy and the table entry goes dirty.
    let v2 = Bytes::from(vec![0x22u8; 8192]);
    driver
        .submit(IoRequest::write(0, 7 * 16, 16, v2.clone()), t(20))
        .expect("write v2");
    driver.drain();
    println!("block 7 updated; the new data lives only in the reserved copy");

    // CRASH. No clean shutdown, no DKIOCCLEAN. The in-memory table (and
    // its dirty bits) are gone; only the on-disk table copy survives.
    let surviving_disk = driver.crash();
    println!("crash! re-attaching a fresh driver from the surviving media...");

    let mut driver2 = AdaptiveDriver::attach(surviving_disk, config).expect("re-attach");
    println!(
        "recovered block table: {} entries, all conservatively marked dirty: {}",
        driver2.block_table().len(),
        driver2.block_table().iter().all(|(_, e)| e.dirty)
    );

    // Clean the reserved area: because the entry is dirty, the (updated)
    // copy is written back to block 7's home location.
    arranger.clean(&mut driver2, t(100)).expect("clean");
    driver2
        .submit(IoRequest::read(0, 7 * 16, 16), t(200))
        .expect("read back");
    let done = driver2.drain();
    assert_eq!(done[0].data, v2, "update lost!");
    println!("after clean-out, block 7 at its home location holds the post-crash update.");
    println!("no data was lost: the conservative all-dirty rule did its job.");
}
