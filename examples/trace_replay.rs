//! Trace-driven policy comparison — the ICDE 1993 methodology.
//!
//! Records one day of the system-file-server workload as a block-level
//! trace, then replays the *identical* stream against each placement
//! policy (and against no rearrangement), so every millisecond of
//! difference is attributable to the policy alone.
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```

use abr::core::replay::{replay, trace_hot_list, ReplayConfig};
use abr::core::{Experiment, ExperimentConfig, PolicyKind};
use abr::disk::models;
use abr::sim::SimDuration;
use abr::workload::WorkloadProfile;

fn main() {
    println!("recording one day of the system file server (Toshiba MK156F)...");
    let mut profile = WorkloadProfile::system_fs();
    profile.day_length = SimDuration::from_hours(6);
    let mut cfg = ExperimentConfig::new(models::toshiba_mk156f(), profile);
    cfg.seed = 0xC0FFEE;
    let mut server = Experiment::new(cfg);
    let (day, trace) = server.run_day_traced();
    println!(
        "  {} requests captured; {} active blocks; top-100 blocks = {:.0}% of traffic",
        trace.len(),
        day.active_blocks(),
        day.top_k_share(100) * 100.0
    );
    let hot = trace_hot_list(&trace, 16);
    println!("  hottest block referenced {} times", hot[0].count);
    println!();

    println!(
        "{:14} {:>10} {:>12} {:>12} {:>12}",
        "placement", "seek (ms)", "service (ms)", "waiting (ms)", "zero-seeks"
    );
    let mut replay_cfg = ReplayConfig::new(models::toshiba_mk156f());
    let base = replay(&trace, &replay_cfg);
    println!(
        "{:14} {:>10.2} {:>12.2} {:>12.2} {:>11.1}%",
        "none", base.all.seek_ms, base.all.service_ms, base.all.waiting_ms, base.all.zero_seek_pct
    );
    replay_cfg.n_blocks = 1017;
    for policy in PolicyKind::all() {
        replay_cfg.policy = policy;
        let m = replay(&trace, &replay_cfg);
        println!(
            "{:14} {:>10.2} {:>12.2} {:>12.2} {:>11.1}%",
            policy.name(),
            m.all.seek_ms,
            m.all.service_ms,
            m.all.waiting_ms,
            m.all.zero_seek_pct
        );
    }
    println!();
    println!("identical request stream in every row: the differences are pure policy.");
    println!("(the paper's Table 7 ordering — organ-pipe ~ interleaved > serial — holds.)");
}
