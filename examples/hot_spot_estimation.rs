//! Space-efficient hot-spot estimation ([Salem 92, Salem 93]).
//!
//! The paper's reference stream analyzer kept "a list of several thousand
//! reference counts, enough so that replacement was rarely necessary",
//! but notes that much shorter lists still guess the hot set accurately.
//! This example quantifies that: it compares the bounded analyzer (with
//! the Space-Saving replacement heuristic) at several list sizes against
//! exact counting, on a synthetic stream with the paper's skew.
//!
//! ```text
//! cargo run --release --example hot_spot_estimation
//! ```

use abr::core::analyzer::{BoundedAnalyzer, FullAnalyzer, ReferenceAnalyzer};
use abr::sim::dist::Zipf;
use abr::sim::SimRng;

fn main() {
    // The paper's measured skew: ~2000 active blocks, top-100 absorb 90%.
    let zipf = Zipf::fit_top_share(2000, 100, 0.90);
    println!(
        "stream: 200k references over 2000 blocks, Zipf exponent {:.3} (top-100 = 90%)",
        zipf.exponent()
    );

    let mut rng = SimRng::new(42);
    let stream: Vec<u64> = (0..200_000).map(|_| zipf.sample(&mut rng) as u64).collect();

    let mut exact = FullAnalyzer::new();
    for &b in &stream {
        exact.observe(b, 1);
    }
    let truth: Vec<u64> = exact.hot_list(100).iter().map(|h| h.block).collect();

    println!(
        "\n{:>10} {:>12} {:>14} {:>12}",
        "list size", "replacements", "top-100 found", "memory vs full"
    );
    for capacity in [50usize, 100, 200, 400, 1000, 2000] {
        let mut bounded = BoundedAnalyzer::new(capacity);
        for &b in &stream {
            bounded.observe(b, 1);
        }
        let guess: Vec<u64> = bounded.hot_list(100).iter().map(|h| h.block).collect();
        let found = truth.iter().filter(|b| guess.contains(b)).count();
        println!(
            "{:>10} {:>12} {:>11}/100 {:>11.0}%",
            capacity,
            bounded.replacements(),
            found,
            capacity as f64 / exact.tracked() as f64 * 100.0
        );
    }
    println!(
        "\nexact analyzer tracked {} blocks; a 200-entry list (one tenth the memory)",
        exact.tracked()
    );
    println!("recovers nearly the whole hot set — the [Salem 93] result the paper leans on.");
}
