//! The Figure 3 worked example: how the three placement policies lay the
//! same hot list out in the reserved region.
//!
//! ```text
//! cargo run --release --example placement_policies
//! ```

use abr::core::analyzer::HotBlock;
use abr::core::placement::{PolicyKind, SlotMap};
use abr::disk::{models, DiskLabel, Geometry};
use abr::driver::ReservedLayout;

fn main() {
    // A small reserved region so the whole layout fits on screen:
    // 3 cylinders of a disk with 64 sectors per cylinder, 4 KB blocks.
    let g: Geometry = models::tiny_test_disk().geometry;
    let label = DiskLabel::rearranged_aligned(g, 3, 8);
    let layout = ReservedLayout::for_label(&label, 4096, 8).expect("rearranged disk");
    let slots = SlotMap::new(&layout, &g);
    println!(
        "reserved region: {} slots over {} cylinders (centre cylinder first in fill order)",
        slots.n_slots(),
        slots.cylinders().len()
    );

    // The paper's example flavour: two interleave chains plus two loose
    // blocks, frequencies annotated.
    let hot = vec![
        HotBlock {
            block: 100,
            count: 20,
        },
        HotBlock {
            block: 102,
            count: 15,
        }, // successor of 100 (gap 2), close
        HotBlock {
            block: 104,
            count: 11,
        }, // successor of 102, close
        HotBlock {
            block: 40,
            count: 9,
        },
        HotBlock {
            block: 42,
            count: 3,
        }, // successor of 40 but NOT close (3 < 9/2)
        HotBlock { block: 7, count: 2 },
    ];
    println!("\nhot list (block:count):");
    for h in &hot {
        println!("  block {:3}  count {:2}", h.block, h.count);
    }
    println!("\ninterleave factor 1 => successor gap 2; 'close' = at least half the predecessor's count\n");

    for kind in PolicyKind::all() {
        let policy = kind.make(1);
        let placed = policy.place(&hot, &slots);
        println!("{}:", kind.name());
        // Render slots in ascending slot order with occupants.
        let mut by_slot: Vec<(u32, u64)> = placed.iter().map(|&(b, s)| (s, b)).collect();
        by_slot.sort_unstable();
        let cells: Vec<String> = (0..slots.n_slots())
            .map(|s| {
                by_slot
                    .iter()
                    .find(|&&(slot, _)| slot == s)
                    .map(|&(_, b)| format!("{b:3}"))
                    .unwrap_or_else(|| "  .".to_string())
            })
            .collect();
        // Group by cylinder for readability.
        for (idx, cyl_slots) in slots.cylinders().iter().enumerate() {
            let mut sorted = cyl_slots.clone();
            sorted.sort_unstable();
            let row: Vec<&str> = sorted.iter().map(|&s| cells[s as usize].as_str()).collect();
            println!(
                "  cylinder {:3} (fill order {}): [{}]",
                abr::disk::Geometry::cylinder_of(&g, layout.slot_sector(sorted[0])),
                idx,
                row.join("|")
            );
        }
        println!();
    }
    println!("note how organ-pipe packs strictly by rank; interleaved keeps the");
    println!("100->102->104 chain two slots apart (preserving rotational spacing);");
    println!("serial ignores frequency and sorts the chosen blocks by block number.");
}
