//! Property-based tests on core invariants, with `proptest`.

use abr::core::analyzer::{BoundedAnalyzer, FullAnalyzer, HotBlock, ReferenceAnalyzer};
use abr::core::placement::{PolicyKind, SlotMap};
use abr::disk::{models, DiskLabel, Geometry};
use abr::driver::blocktable::BlockTable;
use abr::driver::{physio, ReservedLayout};
use abr::sim::{DistTable, Histogram, SimDuration};
use proptest::prelude::*;
use std::collections::HashSet;

fn arb_geometry() -> impl Strategy<Value = Geometry> {
    (64u32..2048, 1u32..20, 16u32..120).prop_map(|(cyl, trk, sect)| Geometry {
        cylinders: cyl,
        tracks_per_cylinder: trk,
        sectors_per_track: sect,
        rpm: 3600,
    })
}

proptest! {
    #[test]
    fn label_mapping_is_bijective_outside_reserved(
        g in arb_geometry(),
        frac in 0.02f64..0.3,
        samples in proptest::collection::vec(0u64..u64::MAX, 20),
    ) {
        let n_res = ((g.cylinders as f64 * frac) as u32).max(1).min(g.cylinders - 2);
        let Some(reserved) = abr::disk::ReservedArea::centered_aligned(&g, n_res, 16) else {
            return Ok(());
        };
        let label = DiskLabel {
            physical: g,
            partitions: vec![],
            reserved: Some(reserved),
        };
        let vtotal = label.virtual_geometry().total_sectors();
        for s in samples {
            let v = s % vtotal;
            let p = label.virtual_to_physical(v);
            // Round-trips exactly.
            prop_assert_eq!(label.physical_to_virtual(p), Some(v));
            // Never lands in the reserved region.
            let cyl = g.cylinder_of(p);
            prop_assert!(!reserved.contains_cylinder(cyl));
        }
        // Reserved sectors have no virtual address.
        let res_start = reserved.start_sector(&g);
        prop_assert_eq!(label.physical_to_virtual(res_start), None);
    }

    #[test]
    fn label_encode_decode_roundtrip(
        g in arb_geometry(),
        n_parts in 0usize..5,
    ) {
        let mut label = DiskLabel::whole_disk(g);
        let total = g.total_sectors();
        label.partitions = (0..n_parts)
            .map(|i| abr::disk::Partition {
                start_sector: (total / (n_parts as u64 + 1)) * i as u64,
                n_sectors: total / (n_parts as u64 + 1),
            })
            .collect();
        let bytes = label.encode();
        prop_assert_eq!(DiskLabel::decode(&bytes).unwrap(), label);
    }

    #[test]
    fn block_table_roundtrip_arbitrary(
        entries in proptest::collection::vec((0u64..1_000_000, any::<bool>()), 0..200),
    ) {
        let g = models::toshiba_mk156f().geometry;
        let label = DiskLabel::rearranged(g, 48);
        let layout = ReservedLayout::for_label(&label, 8192, 1020).unwrap();
        let mut t = BlockTable::new();
        let mut used = HashSet::new();
        let mut slot = 0u32;
        for (block, dirty) in entries {
            let orig = block * 16;
            if !used.insert(orig) || slot >= layout.n_slots {
                continue;
            }
            t.insert(orig, slot);
            if dirty {
                t.mark_dirty(orig);
            }
            slot += 1;
        }
        let bytes = t.encode(&layout).unwrap();
        let back = BlockTable::decode(&bytes).unwrap();
        prop_assert_eq!(back.len(), t.len());
        for (orig, e) in t.iter() {
            prop_assert_eq!(back.lookup(orig), Some(e));
        }
    }

    #[test]
    fn physio_split_partitions_exactly(
        sector in 0u64..100_000,
        n in 1u32..500,
        spb in 1u32..64,
    ) {
        let pieces = physio::split(sector, n, spb);
        let mut cur = sector;
        for (s, len) in &pieces {
            prop_assert_eq!(*s, cur);
            prop_assert!(*len > 0);
            prop_assert!(s % u64::from(spb) + u64::from(*len) <= u64::from(spb));
            cur += u64::from(*len);
        }
        prop_assert_eq!(cur, sector + u64::from(n));
    }

    #[test]
    fn placement_policies_never_double_book(
        seed_blocks in proptest::collection::vec(0u64..50_000, 1..300),
    ) {
        let g = models::toshiba_mk156f().geometry;
        let label = DiskLabel::rearranged(g, 48);
        let layout = ReservedLayout::for_label(&label, 8192, 1020).unwrap();
        let slots = SlotMap::new(&layout, &g);
        // Deduplicate blocks, then rank by descending synthetic counts.
        let uniq: Vec<u64> = seed_blocks
            .into_iter()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let hot: Vec<HotBlock> = uniq
            .iter()
            .enumerate()
            .map(|(i, &b)| HotBlock {
                block: b,
                count: (uniq.len() - i) as u64,
            })
            .collect();
        for kind in PolicyKind::all() {
            let placed = kind.make(1).place(&hot, &slots);
            // Every hot block placed (up to capacity), no slot reused.
            prop_assert_eq!(placed.len(), hot.len().min(slots.n_slots() as usize));
            let slots_used: HashSet<u32> = placed.iter().map(|&(_, s)| s).collect();
            prop_assert_eq!(slots_used.len(), placed.len());
            let blocks_used: HashSet<u64> = placed.iter().map(|&(b, _)| b).collect();
            prop_assert_eq!(blocks_used.len(), placed.len());
            for &(_, s) in &placed {
                prop_assert!(s < slots.n_slots());
            }
        }
    }

    #[test]
    fn bounded_analyzer_overestimates_but_bounds_error(
        stream in proptest::collection::vec(0u64..50, 1..2000),
    ) {
        // Space-Saving invariants: estimated count >= true count, and
        // error <= total / capacity.
        let capacity = 10usize;
        let mut exact = FullAnalyzer::new();
        let mut bounded = BoundedAnalyzer::new(capacity);
        for &b in &stream {
            exact.observe(b, 1);
            bounded.observe(b, 1);
        }
        let bound = stream.len() as u64 / capacity as u64;
        for h in bounded.hot_list(capacity) {
            let truth = exact.count_of(h.block);
            prop_assert!(h.count >= truth, "estimate below truth");
            prop_assert!(
                h.count - truth <= bound,
                "error {} exceeds bound {}",
                h.count - truth,
                bound
            );
        }
    }

    #[test]
    fn histogram_mean_matches_reference(
        samples in proptest::collection::vec(0u64..500_000u64, 1..300),
    ) {
        let mut h = Histogram::millis(100);
        for &s in &samples {
            h.record(SimDuration::from_micros(s));
        }
        let expect = samples.iter().sum::<u64>() / samples.len() as u64;
        prop_assert_eq!(h.mean().unwrap().as_micros(), expect);
        prop_assert_eq!(h.count(), samples.len() as u64);
        // CDF monotone, ends at 1.
        let cdf = h.cdf_points();
        for w in cdf.windows(2) {
            prop_assert!(w[0].1 <= w[1].1);
        }
        prop_assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dist_table_mean_by_is_linear(
        values in proptest::collection::vec(0u64..1000, 1..200),
    ) {
        let mut d = DistTable::new();
        for &v in &values {
            d.record(v);
        }
        // mean_by(identity) == mean()
        prop_assert!((d.mean_by(|v| v as f64) - d.mean()).abs() < 1e-9);
        // mean_by(2x) == 2 * mean()
        prop_assert!((d.mean_by(|v| 2.0 * v as f64) - 2.0 * d.mean()).abs() < 1e-9);
    }

    #[test]
    fn seek_curves_nonnegative_and_zero_at_zero(d in 0u64..4096) {
        for m in [models::toshiba_mk156f(), models::fujitsu_m2266()] {
            let t = m.seek.time_ms(d);
            prop_assert!(t >= 0.0);
            if d == 0 {
                prop_assert_eq!(t, 0.0);
            } else {
                prop_assert!(t > 0.0);
            }
        }
    }

    #[test]
    fn reserved_layout_slots_disjoint(
        n_cyl in 4u32..120,
        block_kb in 1u32..5,
    ) {
        let g = models::fujitsu_m2266().geometry;
        let block = block_kb * 2048; // 2,4,6,8 KB
        let spb = block / 512;
        let Some(reserved) = abr::disk::ReservedArea::centered_aligned(&g, n_cyl, spb) else {
            return Ok(());
        };
        let layout = ReservedLayout::new(&g, reserved, block, 1024);
        let end = layout.start_sector + layout.total_sectors;
        let mut prev = layout.start_sector + layout.table_sectors;
        for i in 0..layout.n_slots {
            let s = layout.slot_sector(i);
            prop_assert_eq!(s, prev);
            prev = s + u64::from(spb);
            prop_assert!(prev <= end);
            prop_assert_eq!(layout.slot_of_sector(s), Some(i));
        }
    }
}

// Corruption robustness: decoding an encoded table with arbitrary bit
// damage must surface as `TableError` (or decode to the *original* table
// when the damage lands in ignored padding or a redundant copy) — never
// as a silently different table.
proptest! {
    #[test]
    fn block_table_bit_flips_never_mis_decode(
        blocks in proptest::collection::vec(0u64..100_000, 1..60),
        flips in proptest::collection::vec((any::<usize>(), 0u32..8), 1..10),
    ) {
        let g = models::toshiba_mk156f().geometry;
        let label = DiskLabel::rearranged(g, 48);
        let layout = ReservedLayout::for_label(&label, 8192, 1020).unwrap();
        let t = table_of(&blocks, &layout);
        let mut bytes = t.encode(&layout).unwrap();
        for (pos, bit) in flips {
            let i = pos % bytes.len();
            bytes[i] ^= 1 << bit;
        }
        check_decode_is_error_or_original(BlockTable::decode(&bytes), &t);
    }

    #[test]
    fn table_region_survives_corruption_of_one_half(
        blocks in proptest::collection::vec(0u64..100_000, 1..60),
        flips in proptest::collection::vec((any::<usize>(), 0u32..8), 1..32),
        hit_second_half in any::<bool>(),
    ) {
        let g = models::toshiba_mk156f().geometry;
        let label = DiskLabel::rearranged(g, 48);
        let layout = ReservedLayout::for_label(&label, 8192, 1020).unwrap();
        let t = table_of(&blocks, &layout);
        let mut bytes = t.encode_region(&layout).unwrap();
        let half = bytes.len() / 2;
        for (pos, bit) in flips {
            let i = pos % half + if hit_second_half { half } else { 0 };
            bytes[i] ^= 1 << bit;
        }
        // Damage confined to one redundant copy: the other must carry it.
        let back = BlockTable::decode_region(&bytes);
        prop_assert!(back.is_ok(), "one-half corruption lost the table");
        check_decode_is_error_or_original(back, &t);
    }
}

fn table_of(blocks: &[u64], layout: &ReservedLayout) -> BlockTable {
    let mut t = BlockTable::new();
    let mut used = HashSet::new();
    let mut slot = 0u32;
    for &block in blocks {
        let orig = block * 16;
        if !used.insert(orig) || slot >= layout.n_slots {
            continue;
        }
        t.insert(orig, slot);
        if block % 2 == 0 {
            t.mark_dirty(orig);
        }
        slot += 1;
    }
    t
}

fn check_decode_is_error_or_original(
    back: Result<BlockTable, abr::driver::blocktable::TableError>,
    original: &BlockTable,
) {
    if let Ok(back) = back {
        assert_eq!(back.len(), original.len(), "mis-decoded table");
        for (orig, e) in original.iter() {
            assert_eq!(back.lookup(orig), Some(e), "mis-decoded entry");
        }
    }
}
