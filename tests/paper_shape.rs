//! Shape tests against the paper's headline results.
//!
//! These run scaled-down experiment days (short day length) so the suite
//! stays fast, and assert the *qualitative* shapes the paper reports —
//! who wins, in which direction, with loose factors. The full-scale
//! regenerators (`cargo run -p abr-bench --bin experiments`) produce the
//! quantitative comparison recorded in EXPERIMENTS.md.

use abr::core::{Experiment, ExperimentConfig, PolicyKind};
use abr::disk::models;
use abr::sim::SimDuration;
use abr::workload::WorkloadProfile;

/// A shortened system-fs day on the Toshiba.
fn short_system(seed: u64) -> ExperimentConfig {
    let mut profile = WorkloadProfile::system_fs();
    profile.day_length = SimDuration::from_hours(3);
    let mut cfg = ExperimentConfig::new(models::toshiba_mk156f(), profile);
    cfg.seed = seed;
    cfg
}

#[test]
fn rearrangement_cuts_seeks_dramatically_on_system_fs() {
    let mut e = Experiment::new(short_system(1));
    let off = e.run_day();
    e.rearrange_for_next_day(1017);
    let on = e.run_day();

    // Seek time cut by well over half (paper: ~90%).
    assert!(
        on.all.seek_ms < 0.4 * off.all.seek_ms,
        "seek {:.2} !<< {:.2}",
        on.all.seek_ms,
        off.all.seek_ms
    );
    // Service time cut substantially (paper: ~40%).
    assert!(
        on.all.service_ms < 0.85 * off.all.service_ms,
        "service {:.2} !< {:.2}",
        on.all.service_ms,
        off.all.service_ms
    );
    // Waiting time falls too (paper: 87 -> 50).
    assert!(on.all.waiting_ms < off.all.waiting_ms);
    // Zero-length seeks jump (paper: 23% -> 88%).
    assert!(
        on.all.zero_seek_pct > off.all.zero_seek_pct + 20.0,
        "zero-seeks {:.1}% !>> {:.1}%",
        on.all.zero_seek_pct,
        off.all.zero_seek_pct
    );
    // Mean seek distance collapses (paper: 173 -> 8 cylinders).
    assert!(on.all.seek_dist < 0.15 * off.all.seek_dist);
}

#[test]
fn system_fs_request_distribution_is_paper_skewed() {
    let mut e = Experiment::new(short_system(2));
    let day = e.run_day();
    // §5.4: fewer than 2000 blocks absorb all requests; the hottest 100
    // absorb ~90%.
    assert!(
        day.active_blocks() < 2000,
        "active {} blocks",
        day.active_blocks()
    );
    assert!(
        day.top_k_share(100) > 0.75,
        "top-100 share {:.2}",
        day.top_k_share(100)
    );
}

#[test]
fn marginal_benefit_beyond_knee_is_small() {
    // Figure 8's shape: most of the reduction is achieved by a small
    // number of blocks; doubling past the knee adds little.
    let mut e = Experiment::new(short_system(3));
    e.run_day();
    let mut at = |n: usize| {
        e.rearrange_for_next_day(n);
        let day = e.run_day();
        day.all.seek_dist_reduction_pct()
    };
    let at100 = at(100);
    let at1017 = at(1017);
    assert!(at100 > 50.0, "reduction at 100 blocks only {at100:.1}%");
    assert!(
        at1017 - at100 < 25.0,
        "large marginal gain past the knee: {at100:.1}% -> {at1017:.1}%"
    );
}

#[test]
fn organ_pipe_beats_serial() {
    // Table 7's ordering. Interleaved ~ organ-pipe, both beat serial.
    let reduction = |policy: PolicyKind, seed: u64| {
        let mut cfg = short_system(seed);
        cfg.policy = policy;
        let mut e = Experiment::new(cfg);
        e.run_day();
        e.rearrange_for_next_day(1017);
        let day = e.run_day();
        day.all.seek_time_reduction_pct()
    };
    let organ = reduction(PolicyKind::OrganPipe, 4);
    let serial = reduction(PolicyKind::Serial, 4);
    assert!(
        organ > serial + 10.0,
        "organ-pipe {organ:.1}% !> serial {serial:.1}%"
    );
}

#[test]
fn users_fs_benefits_less_than_system_fs() {
    // §5.3: users-fs reductions are smaller but still real.
    let mut profile = WorkloadProfile::users_fs();
    profile.day_length = SimDuration::from_hours(3);
    let mut cfg = ExperimentConfig::new(models::toshiba_mk156f(), profile);
    cfg.seed = 5;
    let mut u = Experiment::new(cfg);
    let u_off = u.run_day();
    u.rearrange_for_next_day(1017);
    let u_on = u.run_day();
    let users_cut = 1.0 - u_on.all.seek_ms / u_off.all.seek_ms;
    assert!(users_cut > 0.1, "users seek cut only {users_cut:.2}");

    let mut s = Experiment::new(short_system(5));
    let s_off = s.run_day();
    s.rearrange_for_next_day(1017);
    let s_on = s.run_day();
    let system_cut = 1.0 - s_on.all.seek_ms / s_off.all.seek_ms;
    assert!(
        system_cut > users_cut,
        "system {system_cut:.2} !> users {users_cut:.2}"
    );
}

#[test]
fn fujitsu_shows_same_shape_with_faster_mechanics() {
    let mut profile = WorkloadProfile::system_fs();
    profile.day_length = SimDuration::from_hours(3);
    let mut cfg = ExperimentConfig::new(models::fujitsu_m2266(), profile);
    cfg.seed = 6;
    let mut e = Experiment::new(cfg);
    let off = e.run_day();
    e.rearrange_for_next_day(3500);
    let on = e.run_day();
    assert!(on.all.seek_ms < 0.4 * off.all.seek_ms);
    assert!(on.all.service_ms < off.all.service_ms);
    // Absolute times far below the Toshiba's (newer, faster drive).
    assert!(off.all.seek_ms < 12.0);
}

#[test]
fn bounded_analyzer_matches_full_analyzer_end_to_end() {
    // The [Salem 93] space-efficient estimation: running the whole
    // adaptive loop with a small bounded list gives nearly the same
    // benefit as exact counting.
    let mut exact_cfg = short_system(7);
    exact_cfg.analyzer_capacity = None;
    let mut bounded_cfg = short_system(7);
    bounded_cfg.analyzer_capacity = Some(400);

    let run = |cfg: ExperimentConfig| {
        let mut e = Experiment::new(cfg);
        e.run_day();
        e.rearrange_for_next_day(300);
        e.run_day().all.seek_ms
    };
    let exact = run(exact_cfg);
    let bounded = run(bounded_cfg);
    assert!(
        (bounded - exact).abs() < 0.5 * exact + 1.0,
        "bounded {bounded:.2} vs exact {exact:.2}"
    );
}
