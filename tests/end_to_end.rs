//! End-to-end integration: data integrity and correctness through the
//! full stack — file system, driver remapping, rearrangement cycles and
//! crash recovery.

use abr::core::analyzer::{FullAnalyzer, ReferenceAnalyzer};
use abr::core::arranger::BlockArranger;
use abr::core::placement::PolicyKind;
use abr::disk::{models, Disk, DiskLabel};
use abr::driver::request::IoRequest;
use abr::driver::{AdaptiveDriver, DriverConfig, SchedulerKind};
use abr::fs::{FileSystem, FsConfig};
use abr::sim::{SimRng, SimTime};

fn t(ms: u64) -> SimTime {
    SimTime::from_micros(ms * 1000)
}

fn small_config() -> DriverConfig {
    DriverConfig {
        block_size: 8192,
        scheduler: SchedulerKind::Scan,
        monitor_capacity: 100_000,
        table_max_entries: 512,
        ..DriverConfig::default()
    }
}

fn fresh_driver(reserved_cylinders: u32) -> AdaptiveDriver {
    let model = models::toshiba_mk156f();
    let label = if reserved_cylinders > 0 {
        DiskLabel::rearranged(model.geometry, reserved_cylinders)
    } else {
        DiskLabel::whole_disk(model.geometry)
    };
    let cfg = small_config();
    let mut disk = Disk::new(model);
    AdaptiveDriver::format(&mut disk, &label, &cfg);
    AdaptiveDriver::attach(disk, cfg).unwrap()
}

/// Push a batch of requests through the driver synchronously, returning
/// read data in submission order.
fn run_batch(
    driver: &mut AdaptiveDriver,
    reqs: Vec<IoRequest>,
    clock_ms: &mut u64,
) -> Vec<bytes::Bytes> {
    let mut ids = Vec::new();
    for r in reqs {
        let is_read = r.dir.is_read();
        let id = driver.submit(r, t(*clock_ms)).expect("submit");
        *clock_ms += 25;
        if is_read {
            ids.push(id);
        }
    }
    let done = driver.drain();
    *clock_ms += 1000;
    ids.iter()
        .map(|id| {
            done.iter()
                .find(|c| c.id == *id)
                .expect("completion present")
                .data
                .clone()
        })
        .collect()
}

#[test]
fn file_data_survives_rearrangement_cycles() {
    let mut driver = fresh_driver(48);
    let part_sectors = driver.label().partitions[0].n_sectors;
    let cfg = FsConfig {
        cache_blocks: 32,
        ..FsConfig::default()
    };
    let mut fs = FileSystem::newfs(cfg, part_sectors, 340);
    let mut clock = 0u64;

    // Create a handful of files and flush them to disk.
    let (dir, reqs) = fs.mkdir().unwrap();
    run_batch(&mut driver, reqs, &mut clock);
    let mut files = Vec::new();
    for i in 0..8u64 {
        let (f, reqs) = fs.create(dir, 8192 * (i + 1)).unwrap();
        run_batch(&mut driver, reqs, &mut clock);
        files.push(f);
    }
    run_batch(&mut driver, fs.sync(), &mut clock);

    // Several days of rearrangement churn: count references, place the
    // hot blocks, verify every file's every block, repeat with a
    // different hot set.
    let arranger = BlockArranger::new(PolicyKind::OrganPipe.make(1));
    for round in 0..3 {
        // Read all files through the (possibly remapped) driver and
        // verify contents. Drop cache effects by reading cold-ish.
        for &f in &files {
            let n = fs.n_file_blocks(f).unwrap();
            for idx in 0..n {
                let reqs = fs.read(f, idx, 1).unwrap();
                let datas = run_batch(&mut driver, reqs, &mut clock);
                // The data block read is the last read in the batch (if
                // it missed the cache). Verify any read that matches the
                // expected payload length.
                let expected = fs.expected_payload(f, idx).unwrap();
                if let Some(d) = datas.iter().find(|d| d.len() == expected.len()) {
                    assert_eq!(
                        d, &expected,
                        "round {round}: file {f:?} block {idx} corrupted"
                    );
                }
            }
        }
        run_batch(&mut driver, fs.sync(), &mut clock);

        // Rearrange a different slice of blocks each round.
        let mut analyzer = FullAnalyzer::new();
        for (i, &f) in files.iter().enumerate() {
            if (i + round) % 2 == 0 {
                for &b in fs.file_blocks(f).unwrap() {
                    analyzer.observe(b, (i + 2) as u64);
                }
            }
        }
        let hot = analyzer.hot_list(100);
        arranger
            .rearrange(&mut driver, &hot, 100, t(clock))
            .unwrap();
        clock += 120_000;
    }

    // Final clean: everything must return home intact.
    arranger.clean(&mut driver, t(clock)).unwrap();
    clock += 120_000;
    assert!(driver.block_table().is_empty());
    for &f in &files {
        let n = fs.n_file_blocks(f).unwrap();
        for idx in 0..n {
            let reqs = fs.read(f, idx, 1).unwrap();
            let datas = run_batch(&mut driver, reqs, &mut clock);
            let expected = fs.expected_payload(f, idx).unwrap();
            if let Some(d) = datas.iter().find(|d| d.len() == expected.len()) {
                assert_eq!(d, &expected, "after clean: file {f:?} block {idx}");
            }
        }
    }
}

#[test]
fn updates_to_rearranged_blocks_survive_crash() {
    let mut driver = fresh_driver(48);
    let mut clock = 0u64;

    // Write distinct data to 20 blocks scattered over the disk.
    let spb = u64::from(driver.sectors_per_block());
    // Skip block 0: it holds the disk label, which newfs never touches.
    let blocks: Vec<u64> = (0..20u64).map(|i| i * 731 + 3).collect();
    for &b in &blocks {
        let payload = bytes::Bytes::from(vec![b as u8 ^ 0x5A; 8192]);
        driver
            .submit(IoRequest::write(0, b * spb, 16, payload), t(clock))
            .unwrap();
        driver.drain();
        clock += 50;
    }

    // Rearrange all of them.
    let arranger = BlockArranger::new(PolicyKind::OrganPipe.make(1));
    let hot: Vec<_> = blocks
        .iter()
        .enumerate()
        .map(|(i, &b)| abr::core::analyzer::HotBlock {
            block: b,
            count: 100 - i as u64,
        })
        .collect();
    arranger.rearrange(&mut driver, &hot, 20, t(clock)).unwrap();
    clock += 120_000;

    // Update half of them through the driver (redirected writes).
    for &b in blocks.iter().step_by(2) {
        let payload = bytes::Bytes::from(vec![b as u8 ^ 0xC3; 8192]);
        driver
            .submit(IoRequest::write(0, b * spb, 16, payload), t(clock))
            .unwrap();
        driver.drain();
        clock += 50;
    }

    // Crash and recover.
    let disk = driver.crash();
    let mut driver2 = AdaptiveDriver::attach(disk, small_config()).unwrap();
    assert_eq!(driver2.block_table().len(), 20);
    arranger.clean(&mut driver2, t(clock)).unwrap();
    clock += 240_000;

    // Every block must hold its latest version.
    for (i, &b) in blocks.iter().enumerate() {
        driver2
            .submit(IoRequest::read(0, b * spb, 16), t(clock))
            .unwrap();
        let done = driver2.drain();
        clock += 50;
        let expect = if i % 2 == 0 {
            b as u8 ^ 0xC3
        } else {
            b as u8 ^ 0x5A
        };
        assert!(
            done[0].data.iter().all(|&x| x == expect),
            "block {b} lost its update across the crash"
        );
    }
}

#[test]
fn raw_interface_sees_rearranged_data() {
    let mut driver = fresh_driver(48);
    let spb = u64::from(driver.sectors_per_block());
    // Write two adjacent blocks, rearrange only the second.
    let base = 100u64;
    for off in 0..2u64 {
        let payload = bytes::Bytes::from(vec![0xA0 + off as u8; 8192]);
        driver
            .submit(
                IoRequest::write(0, (base + off) * spb, 16, payload),
                t(off * 100),
            )
            .unwrap();
        driver.drain();
    }
    let arranger = BlockArranger::new(PolicyKind::Serial.make(1));
    arranger
        .rearrange(
            &mut driver,
            &[abr::core::analyzer::HotBlock {
                block: base + 1,
                count: 5,
            }],
            1,
            t(1_000),
        )
        .unwrap();

    // A raw read spanning both blocks is split by physio; both halves
    // must return the right bytes even though one is remapped.
    let ids = driver
        .submit_raw(
            abr::driver::request::IoDir::Read,
            0,
            base * spb,
            32,
            t(200_000),
        )
        .unwrap();
    assert_eq!(ids.len(), 2);
    let done = driver.drain();
    assert!(done[0].data.iter().all(|&x| x == 0xA0));
    assert!(done[1].data.iter().all(|&x| x == 0xA1));
}

#[test]
fn workload_over_driver_is_lossless() {
    // Run a tiny workload through the full stack and spot-check ten file
    // blocks for integrity at the end of the day.
    let mut driver = fresh_driver(48);
    let part_sectors = driver.label().partitions[0].n_sectors;
    let cfg = FsConfig {
        cache_blocks: 64,
        ..FsConfig::default()
    };
    let mut fs = FileSystem::newfs(cfg, part_sectors, 340);
    let mut rng = SimRng::new(99);
    let (mut workload, setup) = abr::workload::WorkloadState::setup(
        abr::workload::WorkloadProfile::tiny_test(),
        &mut fs,
        &mut rng,
    )
    .unwrap();
    let mut clock = 0u64;
    run_batch(&mut driver, setup, &mut clock);

    let mut now = t(clock);
    for _ in 0..800 {
        let (at, op) = workload.next_op(now, &fs);
        now = at;
        for r in workload.apply(op, &mut fs) {
            driver.submit(r, now).unwrap();
        }
        driver.drain();
    }
    for r in fs.sync() {
        driver.submit(r, now).unwrap();
    }
    driver.drain();

    // Verify a sample of hot files block by block (reading raw from the
    // disk store through the driver's mapping).
    let mut checked = 0;
    for f in workload.hottest_files(10) {
        if let Ok(n) = fs.n_file_blocks(f) {
            for idx in 0..n.min(3) {
                let blocks = fs.file_blocks(f).unwrap().to_vec();
                let expected = fs.expected_payload(f, idx).unwrap();
                let spb = u64::from(driver.sectors_per_block());
                driver
                    .submit(
                        IoRequest::read(0, blocks[idx] * spb, (expected.len() / 512) as u32),
                        now + abr::sim::SimDuration::from_secs(60 + checked),
                    )
                    .unwrap();
                let done = driver.drain();
                assert_eq!(done[0].data, expected, "file {f:?} block {idx}");
                checked += 1;
            }
        }
    }
    assert!(checked >= 10, "only checked {checked} blocks");
}
