//! Fault injection end to end: power-cut recovery, degraded pass-through,
//! and the data-integrity property — under any fault schedule, every
//! successful read returns data the application actually wrote, never a
//! silently corrupted block.

use abr::core::analyzer::HotBlock;
use abr::core::arranger::BlockArranger;
use abr::core::placement::PolicyKind;
use abr::disk::fault::{FaultInjector, FaultPlan};
use abr::disk::{models, Disk, DiskLabel, SECTOR_SIZE};
use abr::driver::request::IoRequest;
use abr::driver::{AdaptiveDriver, DriverConfig, SchedulerKind};
use abr::sim::{SimRng, SimTime};
use bytes::Bytes;
use std::collections::HashMap;

const BLOCK: usize = 4096;
const SPB: u64 = (BLOCK / SECTOR_SIZE) as u64;

fn t(s: u64) -> SimTime {
    SimTime::from_micros(s * 1_000_000)
}

fn config() -> DriverConfig {
    DriverConfig {
        block_size: BLOCK as u32,
        scheduler: SchedulerKind::Scan,
        monitor_capacity: 4096,
        table_max_entries: 64,
        ..DriverConfig::default()
    }
}

/// A formatted tiny rearranged disk, attached.
fn fresh_driver() -> AdaptiveDriver {
    let model = models::tiny_test_disk();
    let label = DiskLabel::rearranged_aligned(model.geometry, 10, SPB as u32);
    let mut disk = Disk::new(model);
    AdaptiveDriver::format(&mut disk, &label, &config());
    AdaptiveDriver::attach(disk, config()).expect("attach")
}

fn arranger() -> BlockArranger {
    BlockArranger::new(PolicyKind::OrganPipe.make(1))
}

/// Per-block recognizable content, distinct per (block, version) at
/// sector granularity so torn writes are detectable sector by sector.
fn pattern(block: u64, version: u64) -> Bytes {
    let mut buf = vec![0u8; BLOCK];
    for (s, chunk) in buf.chunks_mut(SECTOR_SIZE).enumerate() {
        chunk.fill((block.wrapping_mul(31) ^ version.wrapping_mul(7) ^ s as u64) as u8);
    }
    Bytes::from(buf)
}

/// Write `n` distinct blocks (fault-free) and return their hot list.
fn seed_blocks(driver: &mut AdaptiveDriver, n: u64) -> Vec<HotBlock> {
    let mut hot = Vec::new();
    for i in 0..n {
        let block = 10 + i * 7;
        driver
            .submit(
                IoRequest::write(0, block * SPB, SPB as u32, pattern(block, 0)),
                t(i),
            )
            .expect("submit");
        let done = driver.drain();
        assert!(done[0].error.is_none(), "fault-free seed write failed");
        hot.push(HotBlock {
            block,
            count: 100 - i,
        });
    }
    hot
}

/// Acceptance sweep: cut power after op 0, 1, 2, … of one rearrangement
/// pass. Whatever boundary the cut lands on, the morning re-attach must
/// find a consistent table and every acknowledged write intact — and a
/// follow-up clean must copy everything home correctly.
#[test]
fn power_cut_at_every_op_boundary_recovers() {
    let mut boundaries = 0u64;
    for k in 0..200 {
        let mut driver = fresh_driver();
        let hot = seed_blocks(&mut driver, 6);
        driver.disk_mut().set_injector(Some(FaultInjector::new(
            FaultPlan {
                power_cut_after_ops: Some(k),
                ..FaultPlan::none()
            },
            SimRng::new(k),
        )));
        let result = arranger().rearrange(&mut driver, &hot, hot.len(), t(100));
        let fired = driver.disk().injector().expect("injector").is_dead();

        // Overnight power-cycle: detach at whatever state the cut left,
        // restore power, re-attach from the on-disk table.
        let mut disk = driver.crash();
        if let Some(inj) = disk.injector_mut() {
            inj.revive();
        }
        let mut driver =
            AdaptiveDriver::attach(disk, config()).expect("recovery attach after power cut");
        assert!(
            !driver.is_degraded(),
            "cut after {k} ops left the table region unreadable"
        );
        for (i, h) in hot.iter().enumerate() {
            driver
                .submit(
                    IoRequest::read(0, h.block * SPB, SPB as u32),
                    t(200 + i as u64),
                )
                .expect("submit");
            let done = driver.drain();
            assert!(done[0].error.is_none(), "read failed after cut at op {k}");
            assert_eq!(
                done[0].data,
                pattern(h.block, 0),
                "acked write to block {} lost or corrupted by cut at op {k}",
                h.block
            );
        }
        // The recovered (conservatively all-dirty) table must clean.
        arranger()
            .clean(&mut driver, t(300))
            .expect("clean after recovery");
        for (i, h) in hot.iter().enumerate() {
            driver
                .submit(
                    IoRequest::read(0, h.block * SPB, SPB as u32),
                    t(400 + i as u64),
                )
                .expect("submit");
            assert_eq!(
                driver.drain()[0].data,
                pattern(h.block, 0),
                "clean after cut at op {k} corrupted block {}",
                h.block
            );
        }
        if result.is_ok() && !fired {
            boundaries = k;
            break;
        }
    }
    // The sweep must actually have exercised a multi-op pass.
    assert!(
        boundaries >= 6,
        "sweep covered only {boundaries} boundaries"
    );
}

/// Acceptance: with the table region hard-failed (both redundant copies),
/// the driver attaches in pass-through mode and serves every request
/// correctly at its original address; block movement is refused.
#[test]
fn degraded_mode_serves_all_requests_at_original_addresses() {
    let mut driver = fresh_driver();
    let hot = seed_blocks(&mut driver, 12);
    arranger()
        .rearrange(&mut driver, &hot, 8, t(100))
        .expect("rearrange");
    assert_eq!(driver.block_table().len(), 8);
    let layout = *driver.layout().expect("layout");

    // Scribble over the whole table region — magic, both copies, all gone.
    let mut disk = driver.crash();
    disk.store_mut().write(
        layout.start_sector,
        &vec![0xFF; layout.table_sectors as usize * SECTOR_SIZE],
    );
    let mut driver = AdaptiveDriver::attach(disk, config()).expect("degraded attach");
    assert!(driver.is_degraded());
    assert!(driver.block_table().is_empty());

    // 100 % of reads are served with the correct data, at home addresses.
    for (i, h) in hot.iter().enumerate() {
        driver
            .submit(
                IoRequest::read(0, h.block * SPB, SPB as u32),
                t(200 + i as u64),
            )
            .expect("submit");
        let done = driver.drain();
        assert!(done[0].error.is_none(), "degraded read failed");
        assert_eq!(done[0].data, pattern(h.block, 0), "block {}", h.block);
    }
    // Writes keep working (at home), and read back.
    let b = hot[0].block;
    driver
        .submit(
            IoRequest::write(0, b * SPB, SPB as u32, pattern(b, 1)),
            t(300),
        )
        .expect("submit");
    assert!(driver.drain()[0].error.is_none());
    driver
        .submit(IoRequest::read(0, b * SPB, SPB as u32), t(301))
        .expect("submit");
    assert_eq!(driver.drain()[0].data, pattern(b, 1));
    // Block movement is disabled rather than risking mis-directed copies.
    assert!(arranger().clean(&mut driver, t(400)).is_err());
    assert!(arranger().rearrange(&mut driver, &hot, 4, t(500)).is_err());
}

/// The integrity property: run a random request mix under a fault
/// schedule, tracking a shadow model. Every *successful* read must
/// return, sector for sector, data from the last acknowledged write —
/// or, where a *reported-failed* write intervened, from that failed
/// attempt (a torn prefix is allowed precisely because the failure was
/// surfaced). Nothing else may ever appear: no silent corruption.
fn integrity_schedule(seed: u64, plan: FaultPlan) {
    let mut driver = fresh_driver();
    let blocks: Vec<u64> = (0..24u64).map(|i| 8 + i * 5).collect();

    // Acked baseline for every block, then arm the injector.
    let mut shadow: HashMap<u64, Bytes> = HashMap::new();
    let mut version: HashMap<u64, u64> = HashMap::new();
    // Content of writes that *failed* since the last acked write; a torn
    // prefix of any of these may legitimately be on the medium.
    let mut tainted: HashMap<u64, Vec<Bytes>> = HashMap::new();
    for (i, &b) in blocks.iter().enumerate() {
        driver
            .submit(
                IoRequest::write(0, b * SPB, SPB as u32, pattern(b, 0)),
                t(i as u64),
            )
            .expect("submit");
        assert!(driver.drain()[0].error.is_none());
        shadow.insert(b, pattern(b, 0));
        version.insert(b, 0);
    }
    driver
        .disk_mut()
        .set_injector(Some(FaultInjector::new(plan, SimRng::new(seed))));

    let mut rng = SimRng::new(seed ^ 0x51ED);
    let mut now = t(1_000);
    for step in 0..400u64 {
        now += abr::sim::SimDuration::from_secs(10);
        // Periodically restore power so a scheduled cut doesn't reduce
        // the rest of the run to guaranteed failures.
        if step % 50 == 49 {
            if let Some(inj) = driver.disk_mut().injector_mut() {
                if inj.is_dead() {
                    inj.revive();
                }
            }
        }
        // Occasionally run a (possibly failing) rearrangement pass: block
        // movement under faults must preserve the property too.
        if step == 150 || step == 300 {
            let hot: Vec<HotBlock> = blocks
                .iter()
                .enumerate()
                .map(|(i, &b)| HotBlock {
                    block: b,
                    count: 100 - i as u64,
                })
                .collect();
            let _ = arranger().rearrange(&mut driver, &hot, 8, now);
            now += abr::sim::SimDuration::from_secs(100);
            continue;
        }
        let b = blocks[rng.index(blocks.len())];
        if rng.chance(0.35) {
            let v = version[&b] + 1;
            let data = pattern(b, v);
            driver
                .submit(IoRequest::write(0, b * SPB, SPB as u32, data.clone()), now)
                .expect("submit");
            let done = driver.drain();
            if done[0].error.is_none() {
                shadow.insert(b, data);
                version.insert(b, v);
                tainted.remove(&b);
            } else {
                version.insert(b, v);
                tainted.entry(b).or_default().push(data);
            }
        } else {
            driver
                .submit(IoRequest::read(0, b * SPB, SPB as u32), now)
                .expect("submit");
            let done = driver.drain();
            if done[0].error.is_some() {
                continue; // failed reads carry no data and make no claim
            }
            let got = &done[0].data;
            let acked = &shadow[&b];
            let candidates = tainted.get(&b);
            for s in 0..SPB as usize {
                let range = s * SECTOR_SIZE..(s + 1) * SECTOR_SIZE;
                let sector = &got[range.clone()];
                let ok = sector == &acked[range.clone()]
                    || candidates.is_some_and(|c| c.iter().any(|d| sector == &d[range.clone()]));
                assert!(
                    ok,
                    "seed {seed}, step {step}: block {b} sector {s} returned bytes \
                     that were never written (silent corruption)"
                );
            }
        }
    }
}

#[test]
fn no_silent_corruption_under_fault_schedules() {
    for seed in 0..4 {
        integrity_schedule(seed, FaultPlan::with_error_rate(0.05));
    }
    integrity_schedule(
        99,
        FaultPlan {
            power_cut_after_ops: Some(120),
            ..FaultPlan::with_error_rate(0.02)
        },
    );
}

#[test]
fn zero_fault_plan_changes_nothing_end_to_end() {
    // Same request sequence with no injector vs. a `none()` plan: the
    // completion stream must be bit-identical.
    let run = |inject: bool| {
        let mut driver = fresh_driver();
        if inject {
            driver
                .disk_mut()
                .set_injector(Some(FaultInjector::new(FaultPlan::none(), SimRng::new(42))));
        }
        let hot = seed_blocks(&mut driver, 6);
        arranger()
            .rearrange(&mut driver, &hot, 6, t(100))
            .expect("rearrange");
        let mut out = Vec::new();
        for (i, h) in hot.iter().enumerate() {
            driver
                .submit(
                    IoRequest::read(0, h.block * SPB, SPB as u32),
                    t(200 + i as u64),
                )
                .expect("submit");
            let c = driver.drain().remove(0);
            out.push((c.completed, c.data, c.breakdown.total()));
        }
        out
    };
    assert_eq!(run(false), run(true));
}
