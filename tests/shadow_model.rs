//! Shadow-model stress test: the driver + rearrangement machinery must
//! behave exactly like a flat array of blocks, no matter how reads,
//! writes, copies, evictions, cleans, crashes and re-attaches interleave.
//!
//! A reference model (a plain `HashMap<block, payload>`) shadows every
//! operation; after each step, reads through the real stack must match
//! the model byte for byte.

use abr::core::analyzer::HotBlock;
use abr::core::arranger::BlockArranger;
use abr::core::placement::PolicyKind;
use abr::disk::{models, Disk, DiskLabel};
use abr::driver::request::IoRequest;
use abr::driver::{AdaptiveDriver, DriverConfig, Ioctl, SchedulerKind};
use abr::sim::{SimRng, SimTime};
use bytes::Bytes;
use std::collections::HashMap;

// Virtual blocks exercised. Block 0 holds the disk label (newfs never
// touches it), so the exercised range starts at 1.
const FIRST_BLOCK: u64 = 1;
const N_BLOCKS: u64 = 700;
const SPB: u64 = 8; // 4 KB blocks on the tiny test disk

struct Harness {
    driver: AdaptiveDriver,
    model: HashMap<u64, u8>, // block -> fill byte (0 = never written)
    clock_us: u64,
    arranger: BlockArranger,
    rng: SimRng,
}

impl Harness {
    fn new(seed: u64) -> Self {
        let model = models::tiny_test_disk();
        let label = DiskLabel::rearranged_aligned(model.geometry, 10, SPB as u32);
        let cfg = Self::config();
        let mut disk = Disk::new(model);
        AdaptiveDriver::format(&mut disk, &label, &cfg);
        Harness {
            driver: AdaptiveDriver::attach(disk, cfg).unwrap(),
            model: HashMap::new(),
            clock_us: 0,
            arranger: BlockArranger::new(PolicyKind::OrganPipe.make(1)),
            rng: SimRng::new(seed),
        }
    }

    fn config() -> DriverConfig {
        DriverConfig {
            block_size: (SPB * 512) as u32,
            scheduler: SchedulerKind::Scan,
            monitor_capacity: 1 << 16,
            table_max_entries: 128,
            ..DriverConfig::default()
        }
    }

    fn now(&mut self) -> SimTime {
        self.clock_us += 40_000;
        SimTime::from_micros(self.clock_us)
    }

    fn write(&mut self, block: u64, fill: u8) {
        let t = self.now();
        let payload = Bytes::from(vec![fill; (SPB * 512) as usize]);
        self.driver
            .submit(IoRequest::write(0, block * SPB, SPB as u32, payload), t)
            .unwrap();
        self.driver.drain();
        self.model.insert(block, fill);
    }

    fn check(&mut self, block: u64) {
        let t = self.now();
        self.driver
            .submit(IoRequest::read(0, block * SPB, SPB as u32), t)
            .unwrap();
        let done = self.driver.drain();
        let expect = self.model.get(&block).copied().unwrap_or(0);
        assert!(
            done[0].data.iter().all(|&b| b == expect),
            "block {block}: expected fill {expect:#x}, got {:#x} (table: {} entries)",
            done[0].data[0],
            self.driver.block_table().len()
        );
    }

    fn rearrange_random(&mut self, n: usize) {
        // A random hot list over the exercised range.
        let mut hot = Vec::new();
        let mut seen = std::collections::HashSet::new();
        while hot.len() < n {
            let b = FIRST_BLOCK + self.rng.below(N_BLOCKS - FIRST_BLOCK);
            if seen.insert(b) {
                hot.push(HotBlock {
                    block: b,
                    count: (n - hot.len()) as u64,
                });
            }
        }
        let t = self.now();
        if self.rng.chance(0.5) {
            self.arranger
                .rearrange(&mut self.driver, &hot, n, t)
                .unwrap();
        } else {
            self.arranger
                .rearrange_incremental(&mut self.driver, &hot, n, t)
                .unwrap();
        }
        self.clock_us += 300_000_000; // movement takes a while
    }

    fn crash_and_recover(&mut self) {
        let disk = std::mem::replace(
            &mut self.driver,
            // Throwaway placeholder; replaced below.
            {
                let m = models::tiny_test_disk();
                let l = DiskLabel::rearranged_aligned(m.geometry, 10, SPB as u32);
                let mut d = Disk::new(m);
                AdaptiveDriver::format(&mut d, &l, &Self::config());
                AdaptiveDriver::attach(d, Self::config()).unwrap()
            },
        )
        .crash();
        self.driver = AdaptiveDriver::attach(disk, Self::config()).unwrap();
    }
}

#[test]
fn storage_semantics_hold_under_random_interleavings() {
    for seed in 0..4u64 {
        let mut h = Harness::new(seed);
        let mut op_rng = SimRng::new(seed ^ 0xD00D);
        for step in 0..600 {
            match op_rng.below(100) {
                0..=44 => {
                    let b = FIRST_BLOCK + op_rng.below(N_BLOCKS - FIRST_BLOCK);
                    let fill = (op_rng.below(255) + 1) as u8;
                    h.write(b, fill);
                }
                45..=89 => {
                    let b = FIRST_BLOCK + op_rng.below(N_BLOCKS - FIRST_BLOCK);
                    h.check(b);
                }
                90..=95 => {
                    let n = 1 + op_rng.index(60);
                    h.rearrange_random(n);
                }
                96..=97 => {
                    let t = h.now();
                    h.arranger.clean(&mut h.driver, t).unwrap();
                }
                _ => h.crash_and_recover(),
            }
            // Periodically verify a random sample end to end.
            if step % 97 == 0 {
                for _ in 0..5 {
                    let b = FIRST_BLOCK + op_rng.below(N_BLOCKS - FIRST_BLOCK);
                    h.check(b);
                }
            }
        }
        // Final sweep: every block the model knows about must read back.
        let blocks: Vec<u64> = h.model.keys().copied().collect();
        for b in blocks {
            h.check(b);
        }
        // And after a final clean, still.
        let t = h.now();
        h.arranger.clean(&mut h.driver, t).unwrap();
        assert!(h.driver.block_table().is_empty());
        let blocks: Vec<u64> = h.model.keys().copied().collect();
        for b in blocks {
            h.check(b);
        }
    }
}

#[test]
fn monitors_never_perturb_semantics() {
    // Reading stats/request tables mid-stream must not affect data.
    let mut h = Harness::new(99);
    for i in 0..50u64 {
        h.write(FIRST_BLOCK + i * 3 % (N_BLOCKS - 1), (i + 1) as u8);
        if i % 7 == 0 {
            let t = h.now();
            h.driver.ioctl(Ioctl::ReadRequestTable, t).unwrap();
            h.driver.ioctl(Ioctl::ReadStats, t).unwrap();
        }
    }
    h.rearrange_random(30);
    for i in 0..50u64 {
        h.check(FIRST_BLOCK + i * 3 % (N_BLOCKS - 1));
    }
}
