//! Two file systems on one disk, one shared reserved region — the
//! §4.1.1 configuration: "A disk may have several partitions and
//! consequently several file systems on it. However, only a single
//! reserved region will be implemented by the driver, and blocks from
//! any of the file systems may be copied there."

use abr::core::analyzer::{FullAnalyzer, ReferenceAnalyzer};
use abr::core::arranger::BlockArranger;
use abr::core::placement::PolicyKind;
use abr::disk::{models, Disk, DiskLabel, Partition};
use abr::driver::request::IoRequest;
use abr::driver::{AdaptiveDriver, DriverConfig, Ioctl, IoctlReply};
use abr::fs::{FileSystem, FsConfig};
use abr::sim::SimTime;

fn t(ms: u64) -> SimTime {
    SimTime::from_micros(ms * 1000)
}

/// Build the paper's disk: one physical device, a reserved region in the
/// middle, and two block-aligned partitions (the *system* and *users*
/// logical devices).
fn two_partition_driver() -> AdaptiveDriver {
    let model = models::toshiba_mk156f();
    let mut label = DiskLabel::rearranged(model.geometry, 48);
    let vtotal = label.virtual_geometry().total_sectors();
    // Split at a block-aligned midpoint.
    let half = (vtotal / 2) / 16 * 16;
    label.partitions = vec![
        Partition {
            start_sector: 0,
            n_sectors: half,
        },
        Partition {
            start_sector: half,
            n_sectors: (vtotal - half) / 16 * 16,
        },
    ];
    let cfg = DriverConfig::default();
    let mut disk = Disk::new(model);
    AdaptiveDriver::format(&mut disk, &label, &cfg);
    AdaptiveDriver::attach(disk, cfg).unwrap()
}

#[test]
fn blocks_from_both_file_systems_share_the_reserved_region() {
    let mut driver = two_partition_driver();
    let mut clock = 0u64;

    // A file system on each partition; create one hot file in each.
    let spc = 340u64;
    let mut files = Vec::new();
    for part in 0..2usize {
        let n_sectors = driver.label().partitions[part].n_sectors;
        let cfg = FsConfig {
            partition: part,
            cache_blocks: 1, // force every read to the disk
            ..FsConfig::default()
        };
        let mut fs = FileSystem::newfs(cfg, n_sectors, spc);
        let (dir, reqs) = fs.mkdir().unwrap();
        for r in reqs {
            driver.submit(r, t(clock)).unwrap();
            clock += 30;
        }
        let (f, reqs) = fs.create(dir, 4 * 8192).unwrap();
        for r in reqs {
            driver.submit(r, t(clock)).unwrap();
            clock += 30;
        }
        for r in fs.sync() {
            driver.submit(r, t(clock)).unwrap();
            clock += 30;
        }
        driver.drain();
        files.push((fs, f, part));
    }

    // Generate traffic to both files; the driver's monitor sees absolute
    // virtual block numbers, so counts from both partitions merge.
    driver.ioctl(Ioctl::ReadRequestTable, t(clock)).unwrap();
    for round in 0..12u64 {
        for (fs, f, _part) in &mut files {
            for r in fs.read(*f, (round % 4) as usize, 1).unwrap() {
                driver.submit(r, t(clock)).unwrap();
                clock += 30;
            }
        }
        driver.drain();
        clock += 500;
    }
    let records = match driver.ioctl(Ioctl::ReadRequestTable, t(clock)).unwrap() {
        IoctlReply::RequestTable { records, .. } => records,
        _ => unreachable!(),
    };
    assert!(!records.is_empty());

    // Rearrange the combined hot list: blocks from BOTH partitions.
    let mut analyzer = FullAnalyzer::new();
    for r in &records {
        analyzer.observe(r.block, 1);
    }
    let hot = analyzer.hot_list(40);
    let arranger = BlockArranger::new(PolicyKind::OrganPipe.make(1));
    let report = arranger
        .rearrange(&mut driver, &hot, 40, t(clock + 60_000))
        .unwrap();
    assert!(report.blocks_placed > 4);
    clock += 600_000;

    // The reserved area must now hold blocks originating in both
    // partitions.
    let part1_start = driver.label().partitions[1].start_sector;
    let mut from_p0 = 0;
    let mut from_p1 = 0;
    for (orig, _) in driver.block_table().iter() {
        // orig is a physical sector; map back to virtual to classify.
        let v = driver
            .label()
            .physical_to_virtual(orig)
            .expect("not reserved");
        if v < part1_start {
            from_p0 += 1;
        } else {
            from_p1 += 1;
        }
    }
    assert!(from_p0 > 0, "no partition-0 blocks placed");
    assert!(from_p1 > 0, "no partition-1 blocks placed");

    // Data integrity through the shared remap, for both file systems.
    for (fs, f, part) in &files {
        for idx in 0..4usize {
            let blocks = fs.file_blocks(*f).unwrap();
            let expected = fs.expected_payload(*f, idx).unwrap();
            driver
                .submit(IoRequest::read(*part, blocks[idx] * 16, 16), t(clock))
                .unwrap();
            clock += 100;
            let done = driver.drain();
            assert_eq!(done[0].data, expected, "partition {part} block {idx}");
        }
    }

    // Clean: everything returns to its home partition intact.
    arranger.clean(&mut driver, t(clock + 60_000)).unwrap();
    clock += 600_000;
    for (fs, f, part) in &files {
        let blocks = fs.file_blocks(*f).unwrap();
        let expected = fs.expected_payload(*f, 0).unwrap();
        driver
            .submit(IoRequest::read(*part, blocks[0] * 16, 16), t(clock))
            .unwrap();
        clock += 100;
        assert_eq!(
            driver.drain()[0].data,
            expected,
            "partition {part} after clean"
        );
    }
}

#[test]
fn partition_isolation() {
    // Requests cannot cross partition boundaries, and the same
    // partition-relative sector addresses distinct physical locations on
    // distinct partitions.
    let mut driver = two_partition_driver();
    let n0 = driver.label().partitions[0].n_sectors;
    assert!(driver.submit(IoRequest::read(0, n0, 16), t(0)).is_err());

    let a = bytes::Bytes::from(vec![0xAA; 8192]);
    let b = bytes::Bytes::from(vec![0xBB; 8192]);
    driver
        .submit(IoRequest::write(0, 800, 16, a.clone()), t(1))
        .unwrap();
    driver
        .submit(IoRequest::write(1, 800, 16, b.clone()), t(2))
        .unwrap();
    driver.drain();
    driver
        .submit(IoRequest::read(0, 800, 16), t(10_000))
        .unwrap();
    driver
        .submit(IoRequest::read(1, 800, 16), t(10_001))
        .unwrap();
    let done = driver.drain();
    assert_eq!(done[0].data, a);
    assert_eq!(done[1].data, b);
}
