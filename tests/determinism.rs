//! Determinism: the whole experiment pipeline is a pure function of its
//! seed. Every table and figure in EXPERIMENTS.md is exactly
//! reproducible.

use abr::core::{Experiment, ExperimentConfig};
use abr::disk::models;
use abr::sim::SimDuration;
use abr::workload::WorkloadProfile;

fn tiny_config(seed: u64) -> ExperimentConfig {
    let mut profile = WorkloadProfile::tiny_test();
    profile.day_length = SimDuration::from_mins(30);
    let mut cfg = ExperimentConfig::new(models::toshiba_mk156f(), profile);
    cfg.seed = seed;
    cfg
}

fn fingerprint_day(d: &abr::core::DayMetrics) -> String {
    // Bit-exact floats plus the raw per-block counters: any
    // nondeterminism anywhere in the stack (hash iteration order,
    // uninitialized state, clock skew) shows up here.
    format!(
        "{}:{}:{}:{}:{}:{}:{:?}:{:?}",
        d.day,
        d.all.n,
        d.all.seek_ms.to_bits(),
        d.all.service_ms.to_bits(),
        d.all.waiting_ms.to_bits(),
        d.rearranged,
        d.service_cdf
            .iter()
            .map(|(a, b)| (a.to_bits(), b.to_bits()))
            .collect::<Vec<_>>(),
        d.block_counts,
    )
}

fn run_fingerprint(seed: u64) -> String {
    let mut e = Experiment::new(tiny_config(seed));
    let off = e.run_day();
    e.rearrange_for_next_day(200);
    let on = e.run_day();
    format!("{}|{}", fingerprint_day(&off), fingerprint_day(&on))
}

#[test]
fn identical_seeds_give_identical_days() {
    assert_eq!(run_fingerprint(1234), run_fingerprint(1234));
}

#[test]
fn different_seeds_give_different_days() {
    assert_ne!(run_fingerprint(1), run_fingerprint(2));
}

#[test]
fn day_metrics_serde_roundtrip() {
    let mut e = Experiment::new(tiny_config(77));
    let day = e.run_day();
    let json = serde_json::to_string(&day).unwrap();
    let back: abr::core::DayMetrics = serde_json::from_str(&json).unwrap();
    assert_eq!(back.all.n, day.all.n);
    assert_eq!(back.service_cdf.len(), day.service_cdf.len());
    assert_eq!(back.block_counts, day.block_counts);
}
