//! Disk-image persistence across "process lifetimes": everything the
//! paper stores on the medium (label, block table, data) must survive a
//! save/load cycle and keep working.

use abr::core::analyzer::HotBlock;
use abr::core::arranger::BlockArranger;
use abr::core::placement::PolicyKind;
use abr::disk::{image, models, Disk, DiskLabel};
use abr::driver::request::IoRequest;
use abr::driver::{AdaptiveDriver, DriverConfig, SchedulerKind};
use abr::sim::SimTime;
use bytes::Bytes;

fn t(s: u64) -> SimTime {
    SimTime::from_micros(s * 1_000_000)
}

fn config() -> DriverConfig {
    DriverConfig {
        block_size: 8192,
        scheduler: SchedulerKind::Scan,
        monitor_capacity: 4096,
        table_max_entries: 512,
        ..DriverConfig::default()
    }
}

fn save_load(driver: AdaptiveDriver) -> AdaptiveDriver {
    let disk = driver.crash();
    let mut img = Vec::new();
    image::save(&disk, &mut img).expect("save");
    let restored = image::load(&img[..]).expect("load");
    AdaptiveDriver::attach(restored, config()).expect("attach")
}

#[test]
fn rearranged_state_survives_image_roundtrip() {
    let model = models::toshiba_mk156f();
    let label = DiskLabel::rearranged(model.geometry, 48);
    let mut disk = Disk::new(model);
    AdaptiveDriver::format(&mut disk, &label, &config());
    let mut driver = AdaptiveDriver::attach(disk, config()).unwrap();

    // Write recognizable data, rearrange, update through the remap.
    let v1 = Bytes::from(vec![0x41u8; 8192]);
    driver
        .submit(IoRequest::write(0, 512 * 16, 16, v1), t(0))
        .unwrap();
    driver.drain();
    let arranger = BlockArranger::new(PolicyKind::OrganPipe.make(1));
    arranger
        .rearrange(
            &mut driver,
            &[HotBlock {
                block: 512,
                count: 7,
            }],
            1,
            t(10),
        )
        .unwrap();
    let v2 = Bytes::from(vec![0x42u8; 8192]);
    driver
        .submit(IoRequest::write(0, 512 * 16, 16, v2.clone()), t(200))
        .unwrap();
    driver.drain();

    // "Reboot" twice: state must carry through repeated image cycles.
    let mut driver = save_load(save_load(driver));
    assert!(driver.label().is_rearranged());
    assert_eq!(driver.block_table().len(), 1);
    // Reads still redirect to the reserved copy holding v2.
    driver
        .submit(IoRequest::read(0, 512 * 16, 16), t(400))
        .unwrap();
    assert_eq!(driver.drain()[0].data, v2);

    // And cleaning after the reboot copies the (conservatively dirty)
    // data home correctly.
    arranger.clean(&mut driver, t(500)).unwrap();
    driver
        .submit(IoRequest::read(0, 512 * 16, 16), t(900))
        .unwrap();
    assert_eq!(driver.drain()[0].data, v2);
}

#[test]
fn image_is_canonical() {
    // Two saves of the same logical state produce identical bytes
    // (sectors are serialized in sorted order), so images diff cleanly.
    let model = models::tiny_test_disk();
    let label = DiskLabel::rearranged_aligned(model.geometry, 10, 8);
    let cfg = DriverConfig {
        block_size: 4096,
        ..config()
    };
    let mut disk = Disk::new(model);
    AdaptiveDriver::format(&mut disk, &label, &cfg);
    let mut a = Vec::new();
    image::save(&disk, &mut a).unwrap();
    let mut b = Vec::new();
    image::save(&image::load(&a[..]).unwrap(), &mut b).unwrap();
    assert_eq!(a, b);
}

#[test]
fn plain_disk_roundtrip_keeps_partition_data() {
    let model = models::fujitsu_m2266();
    let label = DiskLabel::whole_disk(model.geometry);
    let mut disk = Disk::new(model);
    AdaptiveDriver::format(&mut disk, &label, &config());
    let mut driver = AdaptiveDriver::attach(disk, config()).unwrap();
    for i in 0..10u64 {
        let data = Bytes::from(vec![i as u8; 8192]);
        driver
            .submit(IoRequest::write(0, (100 + i * 50) * 16, 16, data), t(i))
            .unwrap();
        driver.drain();
    }
    let mut driver = save_load(driver);
    for i in 0..10u64 {
        driver
            .submit(IoRequest::read(0, (100 + i * 50) * 16, 16), t(100 + i))
            .unwrap();
        let done = driver.drain();
        assert!(done[0].data.iter().all(|&b| b == i as u8), "block {i}");
    }
}
