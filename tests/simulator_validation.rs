//! Simulator validation against analytic results.
//!
//! A calibrated simulator should agree with queueing theory where theory
//! applies. These tests drive the disk+driver stack with controlled
//! arrival processes and compare measured statistics against closed
//! forms: the uniform-random seek-distance mean (≈ N/3) and the M/G/1
//! Pollaczek–Khinchine waiting time.

use abr::disk::{models, Disk, DiskLabel};
use abr::driver::request::IoRequest;
use abr::driver::{AdaptiveDriver, DriverConfig, Ioctl, IoctlReply, SchedulerKind};
use abr::sim::arrival::Poisson;
use abr::sim::{SimRng, SimTime};

fn plain_driver(scheduler: SchedulerKind) -> AdaptiveDriver {
    let model = models::toshiba_mk156f();
    let label = DiskLabel::whole_disk(model.geometry);
    let cfg = DriverConfig {
        scheduler,
        ..DriverConfig::default()
    };
    let mut disk = Disk::new(model);
    AdaptiveDriver::format(&mut disk, &label, &cfg);
    AdaptiveDriver::attach(disk, cfg).unwrap()
}

/// Run Poisson arrivals of uniform-random 8 KB reads and return
/// (mean service ms, mean wait ms, mean FCFS seek distance).
fn run_poisson(scheduler: SchedulerKind, rate_per_sec: f64, n_requests: usize) -> (f64, f64, f64) {
    let mut driver = plain_driver(scheduler);
    let p = Poisson::per_sec(rate_per_sec);
    let mut rng = SimRng::new(42);
    let total_blocks = driver.label().virtual_geometry().total_sectors() / 16;
    let mut now = SimTime::ZERO;
    for _ in 0..n_requests {
        now = p.next_after(now, &mut rng);
        // Complete everything due before this arrival.
        while let Some(c) = driver.next_completion() {
            if c > now {
                break;
            }
            driver.complete_next(c);
        }
        let block = rng.below(total_blocks);
        driver
            .submit(IoRequest::read(0, block * 16, 16), now)
            .unwrap();
    }
    driver.drain();
    let snap = match driver.ioctl(Ioctl::ReadStats, SimTime::MAX).unwrap() {
        IoctlReply::Stats(s) => s,
        _ => unreachable!(),
    };
    (
        snap.reads.service.mean_ms(),
        snap.reads.queueing.mean_ms(),
        snap.reads.arrival_seek.mean(),
    )
}

#[test]
fn uniform_random_seeks_average_a_third_of_the_stroke() {
    // For i.i.d. uniform positions on [0, N], E|X-Y| = N/3.
    let (_, _, mean_dist) = run_poisson(SchedulerKind::Fcfs, 5.0, 4000);
    let n = 815.0;
    assert!(
        (mean_dist - n / 3.0).abs() < 0.05 * n,
        "mean seek distance {mean_dist:.1} not ~{:.1}",
        n / 3.0
    );
}

#[test]
fn mg1_waiting_time_matches_pollaczek_khinchine() {
    // Under FCFS the driver+disk is an M/G/1 queue. Estimate E[S] and
    // E[S^2] from a light-load run, then check the P-K prediction
    // W = lambda E[S^2] / (2 (1 - rho)) at a moderate load.
    //
    // Collect the service-time distribution empirically first (load so
    // light that queueing is negligible).
    let mut driver = plain_driver(SchedulerKind::Fcfs);
    let mut rng = SimRng::new(7);
    let total_blocks = driver.label().virtual_geometry().total_sectors() / 16;
    let mut now = SimTime::ZERO;
    let mut s1 = 0.0f64;
    let mut s2 = 0.0f64;
    let n_cal = 3000;
    for _ in 0..n_cal {
        now += abr::sim::SimDuration::from_secs(1); // fully idle between
        let block = rng.below(total_blocks);
        driver
            .submit(IoRequest::read(0, block * 16, 16), now)
            .unwrap();
        let done = driver.drain();
        let s = done[0].service().as_millis_f64() / 1000.0; // seconds
        s1 += s;
        s2 += s * s;
    }
    let es = s1 / n_cal as f64;
    let es2 = s2 / n_cal as f64;

    // Now a loaded run at rho ~ 0.5.
    let lambda = 0.5 / es;
    let (_, wait_ms, _) = run_poisson(SchedulerKind::Fcfs, lambda, 30_000);
    let rho = lambda * es;
    let pk_ms = lambda * es2 / (2.0 * (1.0 - rho)) * 1000.0;
    let err = (wait_ms - pk_ms).abs() / pk_ms;
    assert!(
        err < 0.15,
        "M/G/1 wait {wait_ms:.2} ms vs P-K {pk_ms:.2} ms (err {:.0}%)",
        err * 100.0
    );
}

#[test]
fn scan_beats_fcfs_under_load() {
    // At the same arrival rate, SCAN's reordering must reduce both seek
    // work and waiting time relative to FCFS — the gap the paper's
    // Table 3 FCFS rows quantify.
    let (svc_f, wait_f, _) = run_poisson(SchedulerKind::Fcfs, 22.0, 20_000);
    let (svc_s, wait_s, _) = run_poisson(SchedulerKind::Scan, 22.0, 20_000);
    assert!(svc_s < svc_f, "SCAN service {svc_s:.2} !< FCFS {svc_f:.2}");
    assert!(
        wait_s < 0.7 * wait_f,
        "SCAN wait {wait_s:.2} !<< FCFS {wait_f:.2}"
    );
}

#[test]
fn rotational_latency_averages_half_a_revolution() {
    // Isolated random requests wait on average half a revolution
    // (8.33 ms at 3600 RPM) for the target sector.
    let mut driver = plain_driver(SchedulerKind::Fcfs);
    let mut rng = SimRng::new(9);
    let total_blocks = driver.label().virtual_geometry().total_sectors() / 16;
    let mut now = SimTime::ZERO;
    for _ in 0..4000 {
        now += abr::sim::SimDuration::from_micros(1_000_037); // not a multiple of the rev
        let block = rng.below(total_blocks);
        driver
            .submit(IoRequest::read(0, block * 16, 16), now)
            .unwrap();
        driver.drain();
    }
    let snap = match driver.ioctl(Ioctl::ReadStats, SimTime::MAX).unwrap() {
        IoctlReply::Stats(s) => s,
        _ => unreachable!(),
    };
    let rot = snap.reads.rotation.mean_ms();
    assert!(
        (rot - 8.33).abs() < 0.5,
        "mean rotational latency {rot:.2} ms not ~8.33"
    );
}
