//! # abr-obs — observability substrate
//!
//! The paper's adaptive mechanism is driven entirely by what the driver
//! can *observe* about the request stream (§4.1.4–§4.1.5). This crate is
//! the reproduction's equivalent of the measurement rig the authors
//! wired into their SunOS kernel, extended to modern observability
//! practice:
//!
//! * [`span`] — per-request lifecycle spans (arrival → queue → dispatch
//!   → seek/rotation/transfer → completion, with retry and fault edges)
//!   plus arranger/daemon activity events, all timestamped in
//!   *simulated* time so traces are bit-reproducible.
//! * [`recorder`] — a bounded flight-recorder ring buffer with exact
//!   drop counting: overhead is fixed no matter how long a run is, and
//!   recording is a thread-local concern so `--jobs N` parallelism
//!   cannot perturb a trace.
//! * [`registry`] — a unified metrics registry (counters, gauges,
//!   fixed-bucket histograms, high-resolution [`hires::LogHistogram`]s)
//!   with static handles, snapshotable as deterministic JSON through
//!   [`abr_sim::json`].
//! * [`series`] — a per-day metric time series: registry deltas
//!   snapshotted at each simulated day boundary, so tail latency and
//!   adaptation are visible day over day, not just end-of-run.
//! * [`slo`] — declarative tail-latency objectives
//!   (`p99(driver.service_us) < 150ms`) evaluated per day against the
//!   series deltas, with violations recorded.
//! * [`timer`] — scoped *wall-clock* timers feeding the same registry,
//!   so simulated-time and real-time cost of each pipeline phase
//!   (analyzer, placement, event loop) are reported side by side.
//!
//! ## Determinism contract
//!
//! Everything recorded into the trace is derived from simulated time and
//! the deterministic request stream; wall-clock measurements go only
//! into registry metrics under the `wall.` prefix, which callers must
//! keep out of byte-compared artifacts. The CI determinism gate relies
//! on this split: `experiments --jobs 4 --trace` must produce the same
//! trace bytes as `--jobs 1`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hires;
pub mod recorder;
pub mod registry;
pub mod series;
pub mod slo;
pub mod span;
pub mod timer;

pub use hires::LogHistogram;
pub use recorder::{
    record, record_with, trace_active, trace_pause, trace_start, trace_take, FlightRecorder,
    TraceBuffer, TracePause, DEFAULT_TRACE_CAPACITY,
};
pub use registry::{
    registry_clear, registry_reset, registry_snapshot, with_registry, CounterId, FixedHistogram,
    GaugeId, HiresId, HistogramId, Registry,
};
pub use series::{day_series_len, day_series_record, day_series_reset, day_series_take};
pub use slo::{slo_active, slo_clear, slo_install, Slo, SloQuantile};
pub use span::{MoveKind, ObsEvent, RearrangePhase, RequestSpan};
pub use timer::{time_scope, ScopedWallTimer};
