//! Flight-recorder ring buffer and the thread-local trace context.
//!
//! Tracing follows the same discipline as the bench engine's
//! `RunMeter`: one benchmark run executes entirely on one worker
//! thread, so the recorder is thread-local state switched on with
//! [`trace_start`] and harvested with [`trace_take`]. Instrumentation
//! sites deep in the driver call [`record`] (or [`record_with`], which
//! defers event construction); both are near-free no-ops when tracing
//! is off, so the instrumented hot path costs one thread-local read
//! per event in normal operation.
//!
//! The buffer is **bounded**: once `capacity` events are stored, new
//! events are dropped and counted instead of evicting old ones.
//! Keep-oldest (rather than keep-newest) makes overflow deterministic
//! and cheap — no memmove, and the retained prefix is identical no
//! matter how far past capacity a run goes. CI fails a traced smoke
//! run if the drop count is nonzero at the default capacity.

use std::cell::RefCell;

use crate::span::ObsEvent;

/// Default flight-recorder capacity (events). Sized so a full traced
/// `table2` campaign (≈330k request completions plus arranger traffic)
/// fits with ample headroom; at ~150 bytes per in-memory event this is
/// a ~160 MiB worst-case bound, only ever paid when tracing.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 20;

/// A bounded in-memory event buffer with exact drop counting.
#[derive(Debug)]
pub struct FlightRecorder {
    events: Vec<ObsEvent>,
    capacity: usize,
    dropped: u64,
    paused: u32,
}

impl FlightRecorder {
    /// Create a recorder bounded at `capacity` events.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            events: Vec::new(),
            capacity,
            dropped: 0,
            paused: 0,
        }
    }

    /// Store `ev`, or count a drop if the buffer is full.
    pub fn record(&mut self, ev: ObsEvent) {
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// Events recorded so far (at most the capacity).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consume the recorder into its final buffer.
    pub fn into_buffer(self) -> TraceBuffer {
        TraceBuffer {
            events: self.events,
            dropped: self.dropped,
        }
    }
}

/// The harvested result of a traced run: retained events in recording
/// order plus the exact count of events that did not fit.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    /// Retained events, oldest first.
    pub events: Vec<ObsEvent>,
    /// Events dropped at the capacity bound.
    pub dropped: u64,
}

impl TraceBuffer {
    /// Serialize as JSONL: one compact JSON object per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_json().to_string());
            out.push('\n');
        }
        out
    }
}

thread_local! {
    static RECORDER: RefCell<Option<FlightRecorder>> = const { RefCell::new(None) };
}

/// Begin tracing on this thread with the given buffer capacity,
/// discarding any previous recorder.
///
/// Also hard-resets the pause depth: worker threads are reused across
/// runs, and a panicking run can leak a [`TracePause`] whose drop
/// never ran.
pub fn trace_start(capacity: usize) {
    RECORDER.with(|r| {
        *r.borrow_mut() = Some(FlightRecorder::new(capacity));
    });
}

/// Stop tracing on this thread and return the harvested buffer.
/// Returns `None` if tracing was never started.
pub fn trace_take() -> Option<TraceBuffer> {
    RECORDER.with(|r| r.borrow_mut().take().map(FlightRecorder::into_buffer))
}

/// `true` when this thread currently has an unpaused recorder — i.e.
/// a [`record`] call right now would be stored (or counted as a drop).
pub fn trace_active() -> bool {
    RECORDER.with(|r| {
        r.borrow()
            .as_ref()
            .map(|rec| rec.paused == 0)
            .unwrap_or(false)
    })
}

/// Record an event into this thread's recorder; no-op when tracing is
/// off or paused.
pub fn record(ev: ObsEvent) {
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            if rec.paused == 0 {
                rec.record(ev);
            }
        }
    });
}

/// Like [`record`], but the event is only built when it would actually
/// be stored — use at hot-path sites where constructing the event
/// (e.g. formatting an error string) has a cost.
pub fn record_with(make: impl FnOnce() -> ObsEvent) {
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            if rec.paused == 0 {
                rec.record(make());
            }
        }
    });
}

/// RAII guard suppressing recording on this thread while alive.
///
/// Used around experiment setup and warmup days so traces contain only
/// the measured period. Pauses nest; the recorder resumes when the
/// last guard drops. Harmless when tracing is off.
#[derive(Debug)]
pub struct TracePause(());

impl TracePause {
    fn adjust(delta: i32) {
        RECORDER.with(|r| {
            if let Some(rec) = r.borrow_mut().as_mut() {
                rec.paused = rec.paused.saturating_add_signed(delta);
            }
        });
    }
}

impl Drop for TracePause {
    fn drop(&mut self) {
        TracePause::adjust(-1);
    }
}

/// Suppress recording on this thread until the returned guard drops.
pub fn trace_pause() -> TracePause {
    TracePause::adjust(1);
    TracePause(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{MoveKind, ObsEvent};

    fn ev(block: u64) -> ObsEvent {
        ObsEvent::Move {
            kind: MoveKind::BCopy,
            at_us: block,
            block,
            slot: 0,
            ops: 1,
            busy_us: 10,
            ok: true,
        }
    }

    #[test]
    fn overflow_drops_are_counted_exactly() {
        let mut rec = FlightRecorder::new(3);
        for i in 0..10 {
            rec.record(ev(i));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 7);
        let buf = rec.into_buffer();
        // Keep-oldest: the retained prefix is blocks 0..3.
        let blocks: Vec<u64> = buf
            .events
            .iter()
            .map(|e| match e {
                ObsEvent::Move { block, .. } => *block,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(blocks, vec![0, 1, 2]);
        assert_eq!(buf.dropped, 7);
    }

    #[test]
    fn thread_local_lifecycle() {
        assert!(!trace_active());
        record(ev(1)); // no-op, tracing off
        trace_start(8);
        assert!(trace_active());
        record(ev(2));
        record_with(|| ev(3));
        let buf = trace_take().expect("recorder present");
        assert_eq!(buf.events.len(), 2);
        assert_eq!(buf.dropped, 0);
        assert!(!trace_active());
        assert!(trace_take().is_none());
    }

    #[test]
    fn pause_guard_nests_and_resumes() {
        trace_start(8);
        {
            let _outer = trace_pause();
            assert!(!trace_active());
            record(ev(1)); // suppressed
            {
                let _inner = trace_pause();
                record(ev(2)); // suppressed
            }
            assert!(!trace_active());
            record(ev(3)); // still suppressed: outer guard alive
        }
        assert!(trace_active());
        record(ev(4));
        let buf = trace_take().unwrap();
        assert_eq!(buf.events.len(), 1);
        assert_eq!(buf.dropped, 0, "suppressed events are not drops");
    }

    #[test]
    fn trace_start_resets_leaked_pause() {
        trace_start(8);
        let leaked = trace_pause();
        std::mem::forget(leaked); // simulate a panicked run leaking its guard
        trace_start(8);
        assert!(trace_active(), "fresh trace must not inherit pause depth");
        record(ev(1));
        assert_eq!(trace_take().unwrap().events.len(), 1);
    }

    #[test]
    fn jsonl_is_one_line_per_event() {
        trace_start(8);
        record(ev(1));
        record(ev(2));
        let text = trace_take().unwrap().to_jsonl();
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
        for line in text.lines() {
            abr_sim::json::JsonValue::parse(line).expect("each line parses");
        }
    }
}
