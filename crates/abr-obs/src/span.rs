//! Span and event types for the I/O-path trace.
//!
//! A [`RequestSpan`] is the full lifecycle of one block request as the
//! driver saw it: arrival (sim-time), queueing, dispatch, the physical
//! service segments (seek / rotation / transfer+overhead), completion,
//! and any retry or fault edges taken along the way. An [`ObsEvent`]
//! is either such a span or one of the arranger/daemon activity
//! records (block moves, rearrangement start/stop).
//!
//! All timestamps are **simulated** microseconds. Nothing in this
//! module may ever record wall-clock time: traces are byte-compared
//! across `--jobs N` in CI.

use abr_sim::jsn;
use abr_sim::json::JsonValue;

/// One request's journey through the driver, in sim-time microseconds.
///
/// Segment semantics match the driver's accounting: `transfer_us`
/// includes controller overhead (the `DirStats` transfer bucket is
/// `breakdown.transfer + breakdown.overhead`), and the segments cover
/// the *successful* service attempt, so for a fault-free request
/// `seek + rotation + transfer == completed - dispatched`; time lost to
/// retries and backoff is the difference when `retries > 0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestSpan {
    /// Driver-assigned request id (monotone per run).
    pub id: u64,
    /// `true` for reads, `false` for writes.
    pub read: bool,
    /// Logical block number addressed by the request.
    pub block: u64,
    /// Request size in sectors.
    pub n_sectors: u32,
    /// Sim-time the request arrived at the driver (`submit`).
    pub arrived_us: u64,
    /// Sim-time the scheduler dispatched it to the disk.
    pub dispatched_us: u64,
    /// Sim-time the completion was delivered.
    pub completed_us: u64,
    /// Total seek time across all service attempts.
    pub seek_us: u64,
    /// Total rotational latency across all service attempts.
    pub rotation_us: u64,
    /// Total transfer + controller overhead across all service attempts.
    pub transfer_us: u64,
    /// Cylinders traversed by the scheduling seek (arm movement).
    pub seek_cylinders: u32,
    /// Queue depth observed at dispatch (requests still waiting).
    pub queue_depth: u32,
    /// Whether the request was served from the reserved (shuffled) area.
    pub in_reserved: bool,
    /// Media retries performed before success or failure.
    pub retries: u32,
    /// Terminal error string for failed requests (PR-1 fault path).
    pub error: Option<String>,
    /// Index of the disk that served the request within its array
    /// (always 0 on a single-disk run; see `abr-array`).
    pub disk: u32,
}

impl RequestSpan {
    /// Service time (dispatch → completion) in microseconds.
    pub fn service_us(&self) -> u64 {
        self.completed_us.saturating_sub(self.dispatched_us)
    }

    /// Queue waiting time (arrival → dispatch) in microseconds.
    pub fn waiting_us(&self) -> u64 {
        self.dispatched_us.saturating_sub(self.arrived_us)
    }

    /// Response time (arrival → completion) in microseconds.
    pub fn response_us(&self) -> u64 {
        self.completed_us.saturating_sub(self.arrived_us)
    }
}

/// What kind of block movement an arranger [`ObsEvent::Move`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveKind {
    /// `DKIOCBCOPY`: copy a block into a reserved-area slot.
    BCopy,
    /// `DKIOCBEVICT`: evict a cooled block from the reserved area.
    BEvict,
    /// `DKIOCCLEAN`: flush the reserved area back to home locations.
    Clean,
    /// Shuffle: reorder blocks within the reserved area in place.
    Shuffle,
}

impl MoveKind {
    fn tag(self) -> &'static str {
        match self {
            MoveKind::BCopy => "bcopy",
            MoveKind::BEvict => "bevict",
            MoveKind::Clean => "clean",
            MoveKind::Shuffle => "shuffle",
        }
    }

    fn from_tag(tag: &str) -> Option<MoveKind> {
        Some(match tag {
            "bcopy" => MoveKind::BCopy,
            "bevict" => MoveKind::BEvict,
            "clean" => MoveKind::Clean,
            "shuffle" => MoveKind::Shuffle,
            _ => return None,
        })
    }
}

/// Whether a rearrangement event marks the start or end of an episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RearrangePhase {
    /// The daemon began an overnight/incremental rearrangement.
    Start,
    /// The rearrangement finished (report fields attached).
    Stop,
}

/// One record in the flight-recorder trace.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsEvent {
    /// A completed (or failed-terminal) foreground request.
    Request(RequestSpan),
    /// A single block movement performed by the arranger through the
    /// driver ioctl interface.
    Move {
        /// Which ioctl produced the movement.
        kind: MoveKind,
        /// Sim-time the movement was issued.
        at_us: u64,
        /// Logical block moved (0 for whole-area `Clean`).
        block: u64,
        /// Destination reserved-area slot (or source slot for evict).
        slot: u64,
        /// Physical I/O operations charged to the movement.
        ops: u32,
        /// Sim-time the disk was busy servicing the movement.
        busy_us: u64,
        /// `false` when the movement failed (fault injection).
        ok: bool,
    },
    /// A rearrangement episode boundary.
    Rearrange {
        /// Start or stop.
        phase: RearrangePhase,
        /// Sim-time of the boundary.
        at_us: u64,
        /// Blocks successfully placed (stop only; 0 at start).
        placed: u32,
        /// Blocks that failed to move (stop only; 0 at start).
        failed: u32,
        /// Physical I/O operations spent (stop only; 0 at start).
        io_ops: u32,
        /// Total disk busy time of the episode (stop only; 0 at start).
        busy_us: u64,
    },
}

impl ObsEvent {
    /// Serialize as one deterministic JSON object (one JSONL line).
    ///
    /// The `ev` discriminator comes first so line-oriented tools can
    /// filter without parsing: `"req"`, `"move"`, `"rearrange"`.
    pub fn to_json(&self) -> JsonValue {
        match self {
            ObsEvent::Request(s) => {
                let mut v = jsn!({
                    "ev": "req",
                    "id": s.id,
                    "dir": if s.read { "r" } else { "w" },
                    "block": s.block,
                    "sectors": s.n_sectors,
                    "arrived_us": s.arrived_us,
                    "dispatched_us": s.dispatched_us,
                    "completed_us": s.completed_us,
                    "seek_us": s.seek_us,
                    "rotation_us": s.rotation_us,
                    "transfer_us": s.transfer_us,
                    "seek_cyl": s.seek_cylinders,
                    "qdepth": s.queue_depth,
                    "reserved": s.in_reserved,
                });
                if s.disk > 0 {
                    v.insert("disk", s.disk);
                }
                if s.retries > 0 {
                    v.insert("retries", s.retries);
                }
                if let Some(err) = &s.error {
                    v.insert("error", err.as_str());
                }
                v
            }
            ObsEvent::Move {
                kind,
                at_us,
                block,
                slot,
                ops,
                busy_us,
                ok,
            } => {
                let mut v = jsn!({
                    "ev": "move",
                    "kind": kind.tag(),
                    "at_us": *at_us,
                    "block": *block,
                    "slot": *slot,
                    "ops": *ops,
                    "busy_us": *busy_us,
                });
                if !ok {
                    v.insert("ok", false);
                }
                v
            }
            ObsEvent::Rearrange {
                phase,
                at_us,
                placed,
                failed,
                io_ops,
                busy_us,
            } => match phase {
                RearrangePhase::Start => jsn!({
                    "ev": "rearrange",
                    "phase": "start",
                    "at_us": *at_us,
                }),
                RearrangePhase::Stop => jsn!({
                    "ev": "rearrange",
                    "phase": "stop",
                    "at_us": *at_us,
                    "placed": *placed,
                    "failed": *failed,
                    "io_ops": *io_ops,
                    "busy_us": *busy_us,
                }),
            },
        }
    }

    /// Parse an event back from its [`ObsEvent::to_json`] form.
    ///
    /// Used by `abrctl trace` and the determinism tests; returns `None`
    /// on unknown discriminators so readers skip foreign lines instead
    /// of failing.
    pub fn from_json(v: &JsonValue) -> Option<ObsEvent> {
        match v["ev"].as_str()? {
            "req" => Some(ObsEvent::Request(RequestSpan {
                id: v["id"].as_u64()?,
                read: v["dir"].as_str()? == "r",
                block: v["block"].as_u64()?,
                n_sectors: v["sectors"].as_u64()? as u32,
                arrived_us: v["arrived_us"].as_u64()?,
                dispatched_us: v["dispatched_us"].as_u64()?,
                completed_us: v["completed_us"].as_u64()?,
                seek_us: v["seek_us"].as_u64()?,
                rotation_us: v["rotation_us"].as_u64()?,
                transfer_us: v["transfer_us"].as_u64()?,
                seek_cylinders: v["seek_cyl"].as_u64()? as u32,
                queue_depth: v["qdepth"].as_u64()? as u32,
                in_reserved: v["reserved"].as_bool()?,
                retries: v["retries"].as_u64().unwrap_or(0) as u32,
                error: v["error"].as_str().map(str::to_string),
                disk: v["disk"].as_u64().unwrap_or(0) as u32,
            })),
            "move" => Some(ObsEvent::Move {
                kind: MoveKind::from_tag(v["kind"].as_str()?)?,
                at_us: v["at_us"].as_u64()?,
                block: v["block"].as_u64()?,
                slot: v["slot"].as_u64()?,
                ops: v["ops"].as_u64()? as u32,
                busy_us: v["busy_us"].as_u64()?,
                ok: v["ok"].as_bool().unwrap_or(true),
            }),
            "rearrange" => {
                let phase = match v["phase"].as_str()? {
                    "start" => RearrangePhase::Start,
                    "stop" => RearrangePhase::Stop,
                    _ => return None,
                };
                Some(ObsEvent::Rearrange {
                    phase,
                    at_us: v["at_us"].as_u64()?,
                    placed: v["placed"].as_u64().unwrap_or(0) as u32,
                    failed: v["failed"].as_u64().unwrap_or(0) as u32,
                    io_ops: v["io_ops"].as_u64().unwrap_or(0) as u32,
                    busy_us: v["busy_us"].as_u64().unwrap_or(0),
                })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_span() -> RequestSpan {
        RequestSpan {
            id: 7,
            read: true,
            block: 4242,
            n_sectors: 16,
            arrived_us: 1_000,
            dispatched_us: 1_500,
            completed_us: 24_750,
            seek_us: 9_000,
            rotation_us: 8_250,
            transfer_us: 6_000,
            seek_cylinders: 310,
            queue_depth: 3,
            in_reserved: false,
            retries: 2,
            error: Some("media error".to_string()),
            disk: 0,
        }
    }

    #[test]
    fn span_derived_times() {
        let s = sample_span();
        assert_eq!(s.waiting_us(), 500);
        assert_eq!(s.service_us(), 23_250);
        assert_eq!(s.response_us(), 23_750);
        assert_eq!(s.seek_us + s.rotation_us + s.transfer_us, s.service_us());
    }

    #[test]
    fn request_roundtrip() {
        let ev = ObsEvent::Request(sample_span());
        let back = ObsEvent::from_json(&ev.to_json()).expect("parses");
        assert_eq!(back, ev);
    }

    #[test]
    fn disk_index_roundtrips_and_is_omitted_for_disk_zero() {
        let mut s = sample_span();
        s.disk = 3;
        let ev = ObsEvent::Request(s.clone());
        assert!(ev.to_json().to_string().contains("\"disk\":3"));
        assert_eq!(ObsEvent::from_json(&ev.to_json()).expect("parses"), ev);
        // Disk 0 (single-disk runs) serializes exactly as before the
        // array layer existed, keeping old traces byte-comparable.
        s.disk = 0;
        let ev = ObsEvent::Request(s);
        assert!(!ev.to_json().to_string().contains("disk"));
        assert_eq!(ObsEvent::from_json(&ev.to_json()).expect("parses"), ev);
    }

    #[test]
    fn move_and_rearrange_roundtrip() {
        for ev in [
            ObsEvent::Move {
                kind: MoveKind::BCopy,
                at_us: 99,
                block: 12,
                slot: 3,
                ops: 2,
                busy_us: 31_000,
                ok: true,
            },
            ObsEvent::Move {
                kind: MoveKind::BEvict,
                at_us: 100,
                block: 13,
                slot: 4,
                ops: 2,
                busy_us: 29_000,
                ok: false,
            },
            ObsEvent::Rearrange {
                phase: RearrangePhase::Start,
                at_us: 10,
                placed: 0,
                failed: 0,
                io_ops: 0,
                busy_us: 0,
            },
            ObsEvent::Rearrange {
                phase: RearrangePhase::Stop,
                at_us: 1_000_000,
                placed: 120,
                failed: 3,
                io_ops: 246,
                busy_us: 5_400_000,
            },
        ] {
            let back = ObsEvent::from_json(&ev.to_json()).expect("parses");
            assert_eq!(back, ev);
        }
    }

    #[test]
    fn optional_fields_omitted_when_default() {
        let mut s = sample_span();
        s.retries = 0;
        s.error = None;
        let text = ObsEvent::Request(s).to_json().to_string();
        assert!(!text.contains("retries"));
        assert!(!text.contains("error"));
        let ok_move = ObsEvent::Move {
            kind: MoveKind::Clean,
            at_us: 1,
            block: 0,
            slot: 0,
            ops: 5,
            busy_us: 7,
            ok: true,
        };
        assert!(!ok_move.to_json().to_string().contains("ok"));
    }

    #[test]
    fn unknown_discriminator_is_skipped() {
        let v = JsonValue::parse(r#"{"ev":"future-thing","x":1}"#).unwrap();
        assert!(ObsEvent::from_json(&v).is_none());
    }
}
