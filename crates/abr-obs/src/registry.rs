//! Unified metrics registry: counters, gauges, fixed-bucket histograms.
//!
//! Every subsystem that used to keep an ad-hoc `u64` tally (the request
//! monitor, the perf monitor, the bench engine's `RunMeter`) registers
//! a named metric here instead and holds a static handle
//! ([`CounterId`] / [`GaugeId`] / [`HistogramId`]) — an index, so the
//! hot-path update is one bounds-checked array write with no hashing.
//!
//! The registry is thread-local for the same reason the flight recorder
//! is: each benchmark run owns one worker thread, so per-run metrics
//! need no locks and parallel runs cannot interleave. [`Registry::reset`]
//! zeroes values but **preserves definitions**, so handles resolved once
//! (e.g. at driver construction) stay valid across day boundaries and
//! engine resets.
//!
//! Snapshots serialize through [`abr_sim::json`] with names sorted, so
//! two runs that touched the same metrics in different orders still
//! emit identical bytes.

use std::cell::RefCell;

use crate::hires::LogHistogram;
use abr_sim::jsn;
use abr_sim::json::JsonValue;

/// Handle to a registered counter (monotone `u64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge (settable `i64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered fixed-bucket histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// Handle to a registered high-resolution [`LogHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HiresId(usize);

/// A histogram with caller-fixed bucket upper bounds plus an overflow
/// bucket, tracking exact `count` and `sum` alongside.
///
/// Bounds are inclusive upper edges in the metric's native unit
/// (typically microseconds). Exact totals mean snapshots can recompute
/// a mean without quantization error — the reconciliation test against
/// `DirMetrics` relies on this.
#[derive(Debug, Clone)]
pub struct FixedHistogram {
    bounds: Vec<u64>,
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl FixedHistogram {
    /// A fresh histogram with the given inclusive upper bounds — for
    /// hot-path callers that accumulate observations locally and merge
    /// them into the registry in one batch (see
    /// [`Registry::merge_histogram`]).
    pub fn with_bounds(bounds: &[u64]) -> FixedHistogram {
        FixedHistogram::new(bounds.to_vec())
    }

    fn new(bounds: Vec<u64>) -> FixedHistogram {
        let n = bounds.len() + 1; // + overflow
        FixedHistogram {
            bounds,
            buckets: vec![0; n],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Observations that exceeded the last bound.
    pub fn overflow(&self) -> u64 {
        *self.buckets.last().expect("overflow bucket always present")
    }

    /// Largest observation seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Zero all buckets and totals, keeping the bounds.
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
        self.max = 0;
    }

    /// Quantile by bucket upper edge, same semantics as
    /// `abr_sim::hist::Histogram::quantile` and
    /// [`LogHistogram::quantile`]: target rank `ceil(q * count)`,
    /// cumulative scan, inclusive upper bound of the holding bucket
    /// (capped at the exact `max`); overflow ranks report `max`.
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut acc = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return match self.bounds.get(i) {
                    Some(&bound) => bound.min(self.max),
                    None => self.max, // overflow bucket
                };
            }
        }
        self.max
    }

    /// The observations recorded here but not in `baseline` — the
    /// per-day delta used by the day series. `baseline` must be an
    /// earlier state of this histogram (same bounds, bucket-wise `<=`);
    /// counts subtract saturating so a violated precondition degrades
    /// to an undercount instead of a panic.
    ///
    /// `max` is not recoverable from a subtraction: the delta reports
    /// the upper bound of its highest non-empty bucket, or the lifetime
    /// `max` if the delta includes overflow observations.
    pub fn diff(&self, baseline: &FixedHistogram) -> FixedHistogram {
        let mut d = FixedHistogram::new(self.bounds.clone());
        let mut top: Option<usize> = None;
        for (i, (cur, base)) in self.buckets.iter().zip(&baseline.buckets).enumerate() {
            let delta = cur.saturating_sub(*base);
            d.buckets[i] = delta;
            if delta > 0 {
                top = Some(i);
            }
        }
        d.count = self.count.saturating_sub(baseline.count);
        d.sum = self.sum.saturating_sub(baseline.sum);
        d.max = match top {
            Some(i) => match self.bounds.get(i) {
                Some(&bound) => bound.min(self.max),
                None => self.max, // overflow bucket grew this window
            },
            None => 0,
        };
        d
    }

    /// The standard quantile set reported in snapshots and day series.
    pub fn quantiles_json(&self) -> JsonValue {
        jsn!({
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "p999": self.quantile(0.999),
        })
    }

    fn to_json(&self) -> JsonValue {
        jsn!({
            "bounds": self.bounds.clone(),
            "buckets": self.buckets.clone(),
            "count": self.count,
            "sum": self.sum,
            "max": self.max,
            "quantiles": self.quantiles_json(),
        })
    }
}

/// A metrics registry: named counters, gauges, and histograms.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, i64)>,
    histograms: Vec<(String, FixedHistogram)>,
    hires: Vec<(String, LogHistogram)>,
    /// Counter values at the previous snapshot — sanitize builds verify
    /// counters are monotone between snapshots (a counter running
    /// backwards means someone wrote through a stale handle).
    #[cfg(feature = "sanitize")]
    monotone_baseline: RefCell<Vec<(String, u64)>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| n == name) {
            return CounterId(i);
        }
        self.counters.push((name.to_string(), 0));
        CounterId(self.counters.len() - 1)
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(n, _)| n == name) {
            return GaugeId(i);
        }
        self.gauges.push((name.to_string(), 0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Get or create the histogram named `name`. Bucket bounds are
    /// fixed at first registration; later callers get the same
    /// histogram regardless of the bounds they pass.
    pub fn histogram(&mut self, name: &str, bounds: &[u64]) -> HistogramId {
        if let Some(i) = self.histograms.iter().position(|(n, _)| n == name) {
            return HistogramId(i);
        }
        self.histograms
            .push((name.to_string(), FixedHistogram::new(bounds.to_vec())));
        HistogramId(self.histograms.len() - 1)
    }

    /// Get or create the high-resolution histogram named `name`. The
    /// bucket layout is a global constant (see [`LogHistogram`]), so
    /// there is nothing to fix at registration time.
    pub fn hires(&mut self, name: &str) -> HiresId {
        if let Some(i) = self.hires.iter().position(|(n, _)| n == name) {
            return HiresId(i);
        }
        self.hires.push((name.to_string(), LogHistogram::new()));
        HiresId(self.hires.len() - 1)
    }

    /// Add `delta` to a counter.
    pub fn inc(&mut self, id: CounterId, delta: u64) {
        self.counters[id.0].1 += delta;
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1
    }

    /// Set a gauge.
    pub fn set_gauge(&mut self, id: GaugeId, value: i64) {
        self.gauges[id.0].1 = value;
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, id: GaugeId) -> i64 {
        self.gauges[id.0].1
    }

    /// Record one observation into a histogram.
    pub fn observe(&mut self, id: HistogramId, value: u64) {
        self.histograms[id.0].1.observe(value);
    }

    /// Merge a locally-accumulated histogram into a registered one in a
    /// single pass — the batched alternative to per-observation
    /// [`Registry::observe`] on hot paths. Bucket layouts must match.
    ///
    /// # Panics
    /// Panics if `other` was built with different bounds.
    pub fn merge_histogram(&mut self, id: HistogramId, other: &FixedHistogram) {
        let h = &mut self.histograms[id.0].1;
        assert_eq!(h.bounds, other.bounds, "histogram bucket layouts differ");
        for (b, o) in h.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        h.count += other.count;
        h.sum += other.sum;
        h.max = h.max.max(other.max);
    }

    /// Read access to a histogram.
    pub fn histogram_value(&self, id: HistogramId) -> &FixedHistogram {
        &self.histograms[id.0].1
    }

    /// Record one observation into a high-resolution histogram.
    pub fn observe_hires(&mut self, id: HiresId, value: u64) {
        self.hires[id.0].1.observe(value);
    }

    /// Merge a locally-accumulated [`LogHistogram`] into a registered
    /// one — the batched alternative to per-observation
    /// [`Registry::observe_hires`] on hot paths.
    pub fn merge_hires(&mut self, id: HiresId, other: &LogHistogram) {
        self.hires[id.0].1.merge(other);
    }

    /// Read access to a high-resolution histogram.
    pub fn hires_value(&self, id: HiresId) -> &LogHistogram {
        &self.hires[id.0].1
    }

    /// Iterate counters as `(name, value)` in registration order.
    pub fn iter_counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counters.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Iterate gauges as `(name, value)` in registration order.
    pub fn iter_gauges(&self) -> impl Iterator<Item = (&str, i64)> + '_ {
        self.gauges.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Iterate fixed-bucket histograms in registration order.
    pub fn iter_histograms(&self) -> impl Iterator<Item = (&str, &FixedHistogram)> + '_ {
        self.histograms.iter().map(|(n, h)| (n.as_str(), h))
    }

    /// Iterate high-resolution histograms in registration order.
    pub fn iter_hires(&self) -> impl Iterator<Item = (&str, &LogHistogram)> + '_ {
        self.hires.iter().map(|(n, h)| (n.as_str(), h))
    }

    /// Zero all values, **keeping definitions** so existing handles
    /// remain valid (day boundaries, engine resets).
    pub fn reset(&mut self) {
        // Counters legitimately return to zero here; drop the baseline
        // so the next snapshot starts a fresh monotone epoch.
        #[cfg(feature = "sanitize")]
        self.monotone_baseline.borrow_mut().clear();
        self.counters.iter_mut().for_each(|(_, v)| *v = 0);
        self.gauges.iter_mut().for_each(|(_, v)| *v = 0);
        self.histograms.iter_mut().for_each(|(_, h)| h.reset());
        self.hires.iter_mut().for_each(|(_, h)| h.reset());
    }

    /// Serialize all metrics, names sorted within each section, as a
    /// deterministic JSON object:
    /// `{"counters": {...}, "gauges": {...}, "hires": {...},
    /// "histograms": {...}}`.
    pub fn snapshot(&self) -> JsonValue {
        #[cfg(feature = "sanitize")]
        {
            let mut base = self.monotone_baseline.borrow_mut();
            for (name, v) in &self.counters {
                if let Some((_, prev)) = base.iter().find(|(n, _)| n == name) {
                    if let Err(e) = abr_lint::sanitize::check_monotone(name, *prev, *v) {
                        panic!("registry sanitizer: {e}");
                    }
                }
            }
            *base = self.counters.clone();
        }
        let mut counters: Vec<&(String, u64)> = self.counters.iter().collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let mut c = JsonValue::object();
        for (name, v) in counters {
            c.insert(name.as_str(), *v);
        }

        let mut gauges: Vec<&(String, i64)> = self.gauges.iter().collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let mut g = JsonValue::object();
        for (name, v) in gauges {
            g.insert(name.as_str(), *v);
        }

        let mut hists: Vec<&(String, FixedHistogram)> = self.histograms.iter().collect();
        hists.sort_by(|a, b| a.0.cmp(&b.0));
        let mut h = JsonValue::object();
        for (name, hist) in hists {
            h.insert(name.as_str(), hist.to_json());
        }

        let mut hires: Vec<&(String, LogHistogram)> = self.hires.iter().collect();
        hires.sort_by(|a, b| a.0.cmp(&b.0));
        let mut hr = JsonValue::object();
        for (name, hist) in hires {
            hr.insert(name.as_str(), hist.to_json());
        }

        jsn!({ "counters": c, "gauges": g, "hires": hr, "histograms": h })
    }
}

thread_local! {
    static REGISTRY: RefCell<Registry> = RefCell::new(Registry::new());
}

/// Run `f` with this thread's registry. The registry always exists;
/// metric updates outside any run simply accumulate until the next
/// [`registry_reset`].
pub fn with_registry<T>(f: impl FnOnce(&mut Registry) -> T) -> T {
    REGISTRY.with(|r| f(&mut r.borrow_mut()))
}

/// Zero this thread's registry values (definitions survive).
pub fn registry_reset() {
    with_registry(Registry::reset);
}

/// Discard this thread's registry entirely, definitions included,
/// invalidating every previously resolved handle. Use at *run*
/// boundaries (the bench engine reuses worker threads across runs, and
/// a leftover zero-valued definition would make one run's snapshot
/// depend on which runs its thread executed before); within a run, use
/// [`registry_reset`] so handles stay valid.
pub fn registry_clear() {
    with_registry(|r| *r = Registry::new());
}

/// Snapshot this thread's registry as deterministic JSON.
pub fn registry_snapshot() -> JsonValue {
    with_registry(|r| r.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_get_or_create() {
        let mut reg = Registry::new();
        let a = reg.counter("io.reads");
        let b = reg.counter("io.reads");
        assert_eq!(a, b);
        let c = reg.counter("io.writes");
        assert_ne!(a, c);
        reg.inc(a, 2);
        reg.inc(b, 3);
        assert_eq!(reg.counter_value(a), 5);
    }

    #[test]
    fn reset_preserves_definitions() {
        let mut reg = Registry::new();
        let c = reg.counter("x");
        let g = reg.gauge("y");
        let h = reg.histogram("z", &[10, 100]);
        reg.inc(c, 7);
        reg.set_gauge(g, -4);
        reg.observe(h, 55);
        reg.reset();
        assert_eq!(reg.counter_value(c), 0);
        assert_eq!(reg.gauge_value(g), 0);
        assert_eq!(reg.histogram_value(h).count(), 0);
        // Handles resolved before the reset still address the same metric.
        reg.inc(c, 1);
        let again = reg.counter("x");
        assert_eq!(reg.counter_value(again), 1);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = FixedHistogram::new(vec![10, 100, 1000]);
        for v in [5, 10, 11, 100, 999, 1000, 1001, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 5 + 10 + 11 + 100 + 999 + 1000 + 1001 + 5000);
        assert_eq!(h.overflow(), 2);
        let j = h.to_json();
        assert_eq!(j["buckets"][0], 2); // 5, 10
        assert_eq!(j["buckets"][1], 2); // 11, 100
        assert_eq!(j["buckets"][2], 2); // 999, 1000
        assert_eq!(j["buckets"][3], 2); // 1001, 5000
    }

    #[test]
    fn snapshot_is_sorted_and_registration_order_free() {
        let mut a = Registry::new();
        let (a_zz, a_aa) = (a.counter("zz"), a.counter("aa"));
        a.inc(a_zz, 1);
        a.inc(a_aa, 2);
        let mut b = Registry::new();
        let (b_aa, b_zz) = (b.counter("aa"), b.counter("zz"));
        b.inc(b_aa, 2);
        b.inc(b_zz, 1);
        assert_eq!(a.snapshot().to_string(), b.snapshot().to_string());
        let text = a.snapshot().to_string();
        assert!(text.find("\"aa\"").unwrap() < text.find("\"zz\"").unwrap());
    }

    #[test]
    fn thread_local_reset_roundtrip() {
        registry_reset();
        let id = with_registry(|r| {
            let id = r.counter("tl.test");
            r.inc(id, 9);
            id
        });
        let snap = registry_snapshot();
        assert_eq!(snap["counters"]["tl.test"], 9);
        registry_reset();
        assert_eq!(with_registry(|r| r.counter_value(id)), 0);
    }
}
