//! Scoped wall-clock profiling timers.
//!
//! A [`ScopedWallTimer`] measures real elapsed time for one named
//! pipeline phase (analyzer, placement, shuffle, event loop) and, on
//! drop, adds it to this thread's [`registry`](crate::registry) under
//! `wall.<name>.ns` with a matching `wall.<name>.calls` counter — so
//! sim-time and real-time cost of each phase sit side by side in one
//! snapshot.
//!
//! Wall-clock values are inherently nondeterministic. They are *only*
//! allowed to flow into `BENCH_experiments.json` (which is never
//! byte-compared); traced artifacts and `results/*.json` must not
//! embed registry sections containing `wall.` metrics. Keeping the
//! nondeterminism confined to clearly-prefixed metric names is what
//! makes that rule auditable.

use std::time::Instant;

use crate::registry::with_registry;

/// RAII wall-clock timer for a named phase; records on drop.
#[derive(Debug)]
pub struct ScopedWallTimer {
    name: &'static str,
    started: Instant,
}

impl ScopedWallTimer {
    /// Start timing the phase `name` (e.g. `"analyzer.observe"`).
    pub fn new(name: &'static str) -> ScopedWallTimer {
        #[allow(clippy::disallowed_methods)] // this is THE sanctioned wall-clock site
        ScopedWallTimer {
            name,
            started: Instant::now(),
        }
    }
}

impl Drop for ScopedWallTimer {
    fn drop(&mut self) {
        let elapsed_ns = self.started.elapsed().as_nanos() as u64;
        with_registry(|reg| {
            let ns = reg.counter(&format!("wall.{}.ns", self.name));
            let calls = reg.counter(&format!("wall.{}.calls", self.name));
            reg.inc(ns, elapsed_ns);
            reg.inc(calls, 1);
        });
    }
}

/// Start a scoped timer for `name`; keep the guard alive for the span
/// of the phase being measured.
pub fn time_scope(name: &'static str) -> ScopedWallTimer {
    ScopedWallTimer::new(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{registry_reset, registry_snapshot};

    #[test]
    fn timer_records_ns_and_calls() {
        registry_reset();
        {
            let _t = time_scope("test.phase");
        }
        {
            let _t = time_scope("test.phase");
        }
        let snap = registry_snapshot();
        assert_eq!(snap["counters"]["wall.test.phase.calls"], 2);
        assert!(snap["counters"]["wall.test.phase.ns"].as_u64().is_some());
    }
}
