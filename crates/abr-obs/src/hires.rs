//! High-resolution log-bucketed latency histogram ([`LogHistogram`]).
//!
//! The paper's claims are distributional — the value of rearrangement
//! lives in the tail of the seek/service-time distribution, not the
//! mean — so the coarse nine-bucket fixed histograms the registry
//! started with cannot answer "what happened to p999". `LogHistogram`
//! is the high-resolution replacement used on the driver and array
//! latency paths: an HDR-style log2 layout with 32 linear sub-buckets
//! per octave, giving a bounded ~3.1% relative error per bucket over
//! the full `[0, 2^32)` µs range while staying a plain dense array —
//! deterministic, mergeable (for the parallel engine's batched
//! flushes), and cheap to snapshot.
//!
//! ## Bucket scheme (`log2m32`)
//!
//! * Values `0..32` are exact: bucket index = value.
//! * A value `v >= 32` with bit length `e+1` (i.e. `2^e <= v < 2^(e+1)`)
//!   lands in one of 32 sub-buckets of width `2^(e-5)`:
//!   `index = (e - 4) * 32 + ((v >> (e - 5)) & 31)`.
//! * The largest representable value is `2^32 - 1` µs (~71.6 minutes —
//!   far beyond any simulated request latency); larger observations go
//!   to an explicit overflow bucket.
//!
//! Exact `count`, `sum`, and `max` ride alongside, so means never
//! quantize and the overflow quantile is exact. Snapshots are sparse
//! (`[index, count]` pairs) because a latency distribution touches a
//! few dozen of the 896 buckets.

use abr_sim::jsn;
use abr_sim::json::JsonValue;

/// Linear sub-buckets per octave = `2^SUB_BITS`.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave (32).
const SUBS: u64 = 1 << SUB_BITS;
/// First exponent that uses the log layout (values below `2^(SUB_BITS)`
/// are exact).
const FIRST_EXP: u32 = SUB_BITS;
/// Exclusive upper limit of the bucketed range: `2^32` µs.
const LIMIT_EXP: u32 = 32;
/// Total regular buckets: 32 exact + 27 octaves × 32 sub-buckets = 896.
const NUM_BUCKETS: usize = (SUBS as usize) * (LIMIT_EXP - FIRST_EXP + 1) as usize;

/// Bucket index for a value inside the representable range.
fn index_of(v: u64) -> usize {
    if v < SUBS {
        return v as usize;
    }
    let e = 63 - v.leading_zeros();
    ((e - FIRST_EXP + 1) as usize) * SUBS as usize + ((v >> (e - SUB_BITS)) & (SUBS - 1)) as usize
}

/// Inclusive upper edge of bucket `i` — the value reported for any
/// quantile that lands in the bucket (mirrors the upper-edge convention
/// of `abr_sim::hist::Histogram::quantile`).
fn upper_edge(i: usize) -> u64 {
    let i = i as u64;
    if i < SUBS {
        return i;
    }
    let e = (i >> SUB_BITS) as u32 + FIRST_EXP - 1;
    let m = i & (SUBS - 1);
    let lower = (SUBS + m) << (e - SUB_BITS);
    lower + (1u64 << (e - SUB_BITS)) - 1
}

/// A deterministic high-resolution histogram (see module docs for the
/// bucket scheme). All operations are integer-only and order-free:
/// merging per-worker histograms in any order yields identical bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
    overflow: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// A fresh, empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
            overflow: 0,
        }
    }

    /// Record one observation (typically microseconds).
    pub fn observe(&mut self, value: u64) {
        if value >> LIMIT_EXP == 0 {
            self.buckets[index_of(value)] += 1;
        } else {
            self.overflow += 1;
        }
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Total observations (including overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Observations at or above `2^32`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Whether nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Zero everything (the bucket layout is fixed, nothing to keep).
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
        self.max = 0;
        self.overflow = 0;
    }

    /// Fold another histogram into this one. Bucket layouts are global
    /// constants, so any two `LogHistogram`s merge; merging is
    /// associative and commutative bucket-wise.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.overflow += other.overflow;
    }

    /// The observations recorded here but not in `baseline` — the
    /// per-day delta used by the day series. `baseline` must be an
    /// earlier state of this histogram (bucket-wise `<=`); counts
    /// subtract saturating so a violated precondition degrades to an
    /// undercount instead of a panic.
    ///
    /// `max` is not recoverable from a subtraction; the delta reports
    /// the upper edge of its highest non-empty bucket (exact to the
    /// bucket's ~3.1% width), or the lifetime max if the delta includes
    /// overflow observations.
    pub fn diff(&self, baseline: &LogHistogram) -> LogHistogram {
        let mut d = LogHistogram::new();
        let mut top: Option<usize> = None;
        for (i, (cur, base)) in self.buckets.iter().zip(&baseline.buckets).enumerate() {
            let delta = cur.saturating_sub(*base);
            d.buckets[i] = delta;
            if delta > 0 {
                top = Some(i);
            }
        }
        d.count = self.count.saturating_sub(baseline.count);
        d.sum = self.sum.saturating_sub(baseline.sum);
        d.overflow = self.overflow.saturating_sub(baseline.overflow);
        d.max = if d.overflow > 0 {
            self.max
        } else {
            top.map(upper_edge).unwrap_or(0)
        };
        d
    }

    /// Quantile by bucket upper edge, matching the semantics of
    /// `abr_sim::hist::Histogram::quantile`: the target rank is
    /// `ceil(q * count)`, the cumulative scan returns the inclusive
    /// upper edge of the bucket holding that rank (capped at the exact
    /// `max`, so q=1.0 is exact), and ranks in the overflow bucket
    /// report the exact `max`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut acc = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return upper_edge(i).min(self.max);
            }
        }
        self.max
    }

    /// The standard quantile set reported in snapshots and day series.
    pub fn quantiles_json(&self) -> JsonValue {
        jsn!({
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "p999": self.quantile(0.999),
        })
    }

    /// Sparse deterministic snapshot:
    /// `{"scheme","count","sum","max","overflow","buckets":[[i,n],...],"quantiles":{...}}`.
    pub fn to_json(&self) -> JsonValue {
        let mut sparse = Vec::new();
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                sparse.push(JsonValue::from(vec![i as u64, c]));
            }
        }
        jsn!({
            "scheme": "log2m32",
            "count": self.count,
            "sum": self.sum,
            "max": self.max,
            "overflow": self.overflow,
            "buckets": JsonValue::from(sparse),
            "quantiles": self.quantiles_json(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..32 {
            h.observe(v);
        }
        for v in 0..32usize {
            assert_eq!(h.buckets[v], 1, "value {v} must land in its own bucket");
            assert_eq!(upper_edge(v), v as u64);
        }
    }

    #[test]
    fn index_and_edge_are_consistent() {
        // Every bucket's upper edge must map back into that bucket, and
        // edge+1 into the next one.
        for i in 0..NUM_BUCKETS {
            let hi = upper_edge(i);
            assert_eq!(index_of(hi), i, "upper edge of bucket {i}");
            if hi + 1 < (1u64 << LIMIT_EXP) {
                assert_eq!(index_of(hi + 1), i + 1, "value after bucket {i}");
            }
        }
        assert_eq!(upper_edge(NUM_BUCKETS - 1), (1u64 << LIMIT_EXP) - 1);
    }

    #[test]
    fn relative_error_is_bounded() {
        // For any value, the bucket upper edge overestimates by at most
        // one sub-bucket width, i.e. < 2^-SUB_BITS relative.
        for &v in &[33u64, 100, 999, 4096, 65_537, 1_000_000, u32::MAX as u64] {
            let edge = upper_edge(index_of(v));
            assert!(edge >= v);
            let err = (edge - v) as f64 / v as f64;
            assert!(err < 1.0 / SUBS as f64, "value {v}: edge {edge}, err {err}");
        }
    }

    #[test]
    fn overflow_and_max() {
        let mut h = LogHistogram::new();
        h.observe(10);
        h.observe(1u64 << 33);
        assert_eq!(h.count(), 2);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.max(), 1u64 << 33);
        assert_eq!(h.sum(), 10 + (1u64 << 33));
        // p99 rank falls in the overflow bucket -> exact max.
        assert_eq!(h.quantile(0.99), 1u64 << 33);
        assert_eq!(h.quantile(0.25), 10);
    }

    #[test]
    fn quantile_semantics_match_hist_rs() {
        // ceil-rank + upper-edge, as in abr_sim::hist::Histogram.
        let mut h = LogHistogram::new();
        for v in [1u64, 2, 3, 4] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.5), 2); // rank ceil(0.5*4)=2 -> value 2
        assert_eq!(h.quantile(0.75), 3);
        assert_eq!(h.quantile(1.0), 4);
        assert_eq!(LogHistogram::new().quantile(0.5), 0);
    }

    #[test]
    fn diff_subtracts_a_baseline() {
        let mut h = LogHistogram::new();
        h.observe(100);
        let baseline = h.clone();
        h.observe(500);
        h.observe(7);
        let d = h.diff(&baseline);
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum(), 507);
        assert_eq!(d.quantile(1.0), d.max());
        // Delta max is the highest delta bucket's edge: >= 500, < 500*1.04.
        assert!(d.max() >= 500 && d.max() < 520);
    }

    #[test]
    fn merge_with_both_sides_overflowed() {
        // Overflow observations must combine like any bucket: counts
        // add, the merged max is the larger lifetime max, and overflow
        // ranks still report the exact max.
        let big_a = 1u64 << 33;
        let big_b = (1u64 << 34) + 17;
        let mut a = LogHistogram::new();
        a.observe(10);
        a.observe(big_a);
        let mut b = LogHistogram::new();
        b.observe(big_b);
        b.observe(big_b);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.overflow(), 3);
        assert_eq!(a.max(), big_b);
        assert_eq!(a.sum(), 10 + big_a + 2 * big_b);
        assert_eq!(a.quantile(1.0), big_b);
        // Merging an empty histogram in either direction is identity.
        let before = a.clone();
        a.merge(&LogHistogram::new());
        assert_eq!(a, before);
        let mut empty = LogHistogram::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn diff_against_empty_baseline_is_identity_modulo_max() {
        // The day series' first boundary diffs against a fresh
        // histogram: every count must survive, and the only permitted
        // difference is `max` quantizing up to its bucket edge.
        let mut h = LogHistogram::new();
        for v in [3u64, 700, 123_456] {
            h.observe(v);
        }
        let d = h.diff(&LogHistogram::new());
        assert_eq!(d.count(), h.count());
        assert_eq!(d.sum(), h.sum());
        assert_eq!(d.overflow(), 0);
        assert_eq!(d.quantile(0.5), h.quantile(0.5));
        assert!(d.max() >= h.max() && d.max() <= h.max() + (h.max() >> SUB_BITS) + 1);
        // Two degenerate corners: empty-vs-empty is empty with max 0,
        // and diffing a histogram against itself is empty.
        let zero = LogHistogram::new().diff(&LogHistogram::new());
        assert!(zero.is_empty());
        assert_eq!(zero.max(), 0);
        let selfdiff = h.diff(&h);
        assert!(selfdiff.is_empty());
        assert_eq!(selfdiff.max(), 0);
        assert_eq!(selfdiff.sum(), 0);
    }

    #[test]
    fn diff_with_overflow_delta_reports_lifetime_max() {
        // When the delta includes overflow observations, no bucket edge
        // can describe them — the diff must fall back to the lifetime
        // max rather than the top regular bucket's edge.
        let mut h = LogHistogram::new();
        h.observe(50);
        let baseline = h.clone();
        let huge = (1u64 << 35) + 5;
        h.observe(huge);
        let d = h.diff(&baseline);
        assert_eq!(d.count(), 1);
        assert_eq!(d.overflow(), 1);
        assert_eq!(d.max(), huge, "overflow delta must report the exact max");
        assert_eq!(d.quantile(1.0), huge);
        // Conversely, when overflow cancels out (both sides saw it),
        // the delta's max comes from its highest regular bucket.
        let mut base2 = LogHistogram::new();
        base2.observe(huge);
        let mut cur2 = base2.clone();
        cur2.observe(200);
        let d2 = cur2.diff(&base2);
        assert_eq!(d2.overflow(), 0);
        assert!(d2.max() >= 200 && d2.max() < 210);
    }

    #[test]
    fn snapshot_is_sparse() {
        let mut h = LogHistogram::new();
        h.observe(5);
        h.observe(5);
        h.observe(1_000_000);
        let j = h.to_json();
        assert_eq!(j["scheme"], "log2m32");
        assert_eq!(j["count"], 3);
        assert_eq!(j["buckets"][0][0], 5);
        assert_eq!(j["buckets"][0][1], 2);
        assert_eq!(j["quantiles"]["p50"], 5);
    }

    proptest! {
        #[test]
        fn merge_is_associative_and_commutative(
            a in proptest::collection::vec(proptest::any::<u64>(), 0..64),
            b in proptest::collection::vec(proptest::any::<u64>(), 0..64),
            c in proptest::collection::vec(proptest::any::<u64>(), 0..64),
        ) {
            // Keep sums far from u64 overflow.
            let obs = |vals: &[u64]| {
                let mut h = LogHistogram::new();
                for &v in vals {
                    h.observe(v % (1u64 << 40));
                }
                h
            };
            let (ha, hb, hc) = (obs(&a), obs(&b), obs(&c));
            // (a+b)+c == a+(b+c)
            let mut ab = ha.clone();
            ab.merge(&hb);
            let mut ab_c = ab.clone();
            ab_c.merge(&hc);
            let mut bc = hb.clone();
            bc.merge(&hc);
            let mut a_bc = ha.clone();
            a_bc.merge(&bc);
            prop_assert_eq!(&ab_c, &a_bc);
            // a+b == b+a
            let mut ba = hb.clone();
            ba.merge(&ha);
            prop_assert_eq!(&ab, &ba);
            // Merge of everything equals observing everything.
            let mut all: Vec<u64> = Vec::new();
            all.extend(&a);
            all.extend(&b);
            all.extend(&c);
            prop_assert_eq!(&ab_c, &obs(&all));
        }

        #[test]
        fn quantile_brackets_sorted_reference(
            vals in proptest::collection::vec(0u64..100_000_000, 1..200),
            qs in proptest::collection::vec(0.0f64..1.0, 1..8),
        ) {
            let mut h = LogHistogram::new();
            for &v in &vals {
                h.observe(v);
            }
            let mut sorted = vals.clone();
            sorted.sort_unstable();
            for &q in &qs {
                // Reference: the exact value at ceil-rank in sorted order.
                let target = ((q * sorted.len() as f64).ceil() as usize).max(1);
                let exact = sorted[target - 1];
                let got = h.quantile(q);
                // Upper-edge convention: never below the exact value,
                // and within one sub-bucket width above it.
                prop_assert!(got >= exact, "q={q}: got {got} < exact {exact}");
                let bound = exact + (exact >> SUB_BITS) + 1;
                prop_assert!(got <= bound, "q={q}: got {got} > bound {bound} (exact {exact})");
            }
        }
    }
}
