//! Per-day metric time series.
//!
//! End-of-run registry snapshots collapse a multi-week simulation into
//! one number per metric, hiding exactly what the paper is about:
//! day-to-day adaptation. This module keeps an ordered series of
//! **per-day deltas** — at each simulated day boundary the engine calls
//! [`day_series_record`], which diffs the live registry against the
//! previous day's baseline and appends one JSON point.
//!
//! A day point looks like:
//!
//! ```json
//! {
//!   "day": 3,
//!   "counters": { "driver.dispatch.reserved": 812, ... },
//!   "gauges": { "driver.queue_age_max_us": 181243, ... },
//!   "hires": { "driver.service_us": { "count": ..., "sum": ...,
//!               "max": ..., "quantiles": { "p50": ..., ... } }, ... },
//!   "histograms": { ... same shape ... },
//!   "slo": [ { "slo": "p99(driver.service_us) < 150ms",
//!              "value": 52223, "ok": true }, ... ]
//! }
//! ```
//!
//! Counters are **deltas** (only non-zero ones appear), gauges are the
//! values at the boundary, histograms report their per-day delta's
//! count/sum/max and quantile set. Two name families are excluded:
//! `wall.*` (real time — nondeterministic by construction) and `slo.*`
//! (bookkeeping incremented *by* the recorder). The series is
//! thread-local like the registry itself, so `--jobs N` workers cannot
//! interleave; the engine resets it per run and harvests it into
//! `RunOutcome` / `BENCH_experiments.json`.

use std::cell::RefCell;
use std::collections::BTreeMap;

use crate::hires::LogHistogram;
use crate::registry::{with_registry, FixedHistogram};
use crate::slo;
use abr_sim::jsn;
use abr_sim::json::JsonValue;

/// Metric name families excluded from day points (see module docs).
fn excluded(name: &str) -> bool {
    name.starts_with("wall.") || name.starts_with("slo.")
}

/// The accumulating series plus the previous boundary's baselines.
#[derive(Default)]
struct DaySeries {
    points: Vec<JsonValue>,
    base_counters: BTreeMap<String, u64>,
    base_hists: BTreeMap<String, FixedHistogram>,
    base_hires: BTreeMap<String, LogHistogram>,
}

thread_local! {
    static SERIES: RefCell<DaySeries> = RefCell::new(DaySeries::default());
}

/// Discard all recorded points and baselines — run boundaries, paired
/// with `registry_clear`.
pub fn day_series_reset() {
    SERIES.with(|s| *s.borrow_mut() = DaySeries::default());
}

/// Number of day points recorded since the last reset/take.
pub fn day_series_len() -> usize {
    SERIES.with(|s| s.borrow().points.len())
}

/// Record one day point: diff the live registry against the previous
/// boundary, evaluate any installed SLOs on the day's deltas, append
/// the point, and advance the baselines. Called once per simulated day
/// by the experiment harnesses (after the day-end stats flush, so the
/// driver's batched observations are visible).
pub fn day_series_record() {
    // Phase 1: pull everything needed out of the registry (clones), so
    // the registry borrow is released before SLO bookkeeping writes
    // back into it.
    struct DayData {
        counter_deltas: Vec<(String, u64)>,
        gauges: Vec<(String, i64)>,
        hist_deltas: Vec<(String, FixedHistogram)>,
        hires_deltas: Vec<(String, LogHistogram)>,
        counters_now: BTreeMap<String, u64>,
        hists_now: BTreeMap<String, FixedHistogram>,
        hires_now: BTreeMap<String, LogHistogram>,
    }
    let data = SERIES.with(|s| {
        let series = s.borrow();
        with_registry(|r| {
            let mut counter_deltas = Vec::new();
            let mut counters_now = BTreeMap::new();
            for (name, v) in r.iter_counters() {
                if excluded(name) {
                    continue;
                }
                counters_now.insert(name.to_string(), v);
                let base = series.base_counters.get(name).copied().unwrap_or(0);
                let delta = v.saturating_sub(base);
                if delta > 0 {
                    counter_deltas.push((name.to_string(), delta));
                }
            }
            let gauges = r
                .iter_gauges()
                .filter(|(name, _)| !excluded(name))
                .map(|(n, v)| (n.to_string(), v))
                .collect();
            let mut hist_deltas = Vec::new();
            let mut hists_now = BTreeMap::new();
            for (name, h) in r.iter_histograms() {
                if excluded(name) {
                    continue;
                }
                let delta = match series.base_hists.get(name) {
                    Some(base) => h.diff(base),
                    None => h.clone(),
                };
                hists_now.insert(name.to_string(), h.clone());
                if delta.count() > 0 {
                    hist_deltas.push((name.to_string(), delta));
                }
            }
            let mut hires_deltas = Vec::new();
            let mut hires_now = BTreeMap::new();
            for (name, h) in r.iter_hires() {
                if excluded(name) {
                    continue;
                }
                let delta = match series.base_hires.get(name) {
                    Some(base) => h.diff(base),
                    None => h.clone(),
                };
                hires_now.insert(name.to_string(), h.clone());
                if delta.count() > 0 {
                    hires_deltas.push((name.to_string(), delta));
                }
            }
            DayData {
                counter_deltas,
                gauges,
                hist_deltas,
                hires_deltas,
                counters_now,
                hists_now,
                hires_now,
            }
        })
    });

    // Phase 2: evaluate SLOs against the day's deltas (may write the
    // slo.violations counter — excluded from points, so no feedback).
    let lookup = |metric: &str, q: f64| -> Option<u64> {
        if let Some((_, h)) = data.hires_deltas.iter().find(|(n, _)| n == metric) {
            return Some(h.quantile(q));
        }
        data.hist_deltas
            .iter()
            .find(|(n, _)| n == metric)
            .map(|(_, h)| h.quantile(q))
    };
    let verdicts = slo::evaluate_day(&lookup);

    // Phase 3: assemble the point (names already sorted — they come
    // from sorted baselines or are sorted here) and advance baselines.
    SERIES.with(|s| {
        let mut series = s.borrow_mut();
        let sorted_obj = |mut pairs: Vec<(String, JsonValue)>| {
            pairs.sort_by(|a, b| a.0.cmp(&b.0));
            let mut o = JsonValue::object();
            for (name, v) in pairs {
                o.insert(name, v);
            }
            o
        };
        let summarize_fixed = |h: &FixedHistogram| {
            jsn!({
                "count": h.count(),
                "sum": h.sum(),
                "max": h.max(),
                "quantiles": h.quantiles_json(),
            })
        };
        let summarize_hires = |h: &LogHistogram| {
            jsn!({
                "count": h.count(),
                "sum": h.sum(),
                "max": h.max(),
                "quantiles": h.quantiles_json(),
            })
        };
        let mut point = jsn!({
            "day": series.points.len() as u64,
            "counters": sorted_obj(
                data.counter_deltas
                    .iter()
                    .map(|(n, v)| (n.clone(), JsonValue::from(*v)))
                    .collect(),
            ),
            "gauges": sorted_obj(
                data.gauges
                    .iter()
                    .map(|(n, v)| (n.clone(), JsonValue::from(*v)))
                    .collect(),
            ),
            "hires": sorted_obj(
                data.hires_deltas
                    .iter()
                    .map(|(n, h)| (n.clone(), summarize_hires(h)))
                    .collect(),
            ),
            "histograms": sorted_obj(
                data.hist_deltas
                    .iter()
                    .map(|(n, h)| (n.clone(), summarize_fixed(h)))
                    .collect(),
            ),
        });
        if let Some(v) = verdicts {
            point.insert("slo", v);
        }
        series.points.push(point);
        series.base_counters = data.counters_now;
        series.base_hists = data.hists_now;
        series.base_hires = data.hires_now;
    });
}

/// Take the recorded series as a JSON array, leaving the recorder
/// empty (points *and* baselines) for the next run.
pub fn day_series_take() -> JsonValue {
    SERIES.with(|s| {
        let series = std::mem::take(&mut *s.borrow_mut());
        JsonValue::from(series.points)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::registry_clear;

    #[test]
    fn records_deltas_not_totals() {
        registry_clear();
        day_series_reset();
        crate::slo::slo_clear();
        with_registry(|r| {
            let c = r.counter("t.reqs");
            let h = r.hires("t.lat_us");
            r.inc(c, 5);
            r.observe_hires(h, 100);
            r.observe_hires(h, 200);
        });
        day_series_record();
        with_registry(|r| {
            let c = r.counter("t.reqs");
            let h = r.hires("t.lat_us");
            r.inc(c, 3);
            r.observe_hires(h, 400);
        });
        day_series_record();
        let series = day_series_take();
        assert_eq!(series[0]["day"], 0);
        assert_eq!(series[0]["counters"]["t.reqs"], 5);
        assert_eq!(series[0]["hires"]["t.lat_us"]["count"], 2);
        assert_eq!(series[1]["day"], 1);
        assert_eq!(series[1]["counters"]["t.reqs"], 3);
        assert_eq!(series[1]["hires"]["t.lat_us"]["count"], 1);
        assert_eq!(series[1]["hires"]["t.lat_us"]["sum"], 400);
        // Taking drained the series.
        assert_eq!(day_series_len(), 0);
    }

    #[test]
    fn wall_and_slo_names_are_excluded() {
        registry_clear();
        day_series_reset();
        crate::slo::slo_clear();
        with_registry(|r| {
            let w = r.counter("wall.phase.ns");
            let s = r.counter("slo.violations");
            let ok = r.counter("real.metric");
            r.inc(w, 123);
            r.inc(s, 1);
            r.inc(ok, 7);
        });
        day_series_record();
        let series = day_series_take();
        let counters = &series[0]["counters"];
        assert_eq!(counters["real.metric"], 7);
        assert!(counters.get("wall.phase.ns").is_none());
        assert!(counters.get("slo.violations").is_none());
    }

    #[test]
    fn quiet_day_is_sparse() {
        registry_clear();
        day_series_reset();
        crate::slo::slo_clear();
        with_registry(|r| {
            let c = r.counter("t.reqs");
            r.inc(c, 1);
        });
        day_series_record();
        day_series_record(); // nothing happened between the boundaries
        let series = day_series_take();
        assert!(series[1]["counters"].get("t.reqs").is_none());
    }
}
