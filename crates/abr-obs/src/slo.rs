//! Declarative service-level objectives over registry metrics.
//!
//! An SLO is a one-line tail-latency objective evaluated once per
//! simulated day against that day's metric deltas (see
//! [`crate::series`]):
//!
//! ```text
//! p99(driver.service_us) < 150ms
//! ```
//!
//! Grammar: `<quantile> '(' <metric> ')' '<' <number><unit>` with
//! `quantile ∈ {p50, p90, p99, p999}`, `metric` a registry histogram
//! name (high-resolution or fixed-bucket), and `unit ∈ {us, ms, s}`.
//! Whitespace around tokens is ignored. Metrics are always in
//! microseconds, so thresholds normalize to µs at parse time.
//!
//! The tracker is thread-local like the registry: the bench engine
//! installs the objective set per run ([`slo_install`]) and the day
//! recorder calls [`evaluate_day`] at each boundary. Every evaluation
//! appends per-objective verdicts to the day point; failures also bump
//! the `slo.violations` registry counter so end-of-run snapshots carry
//! a cumulative violation count.

use std::cell::RefCell;

use crate::registry::with_registry;
use abr_sim::jsn;
use abr_sim::json::JsonValue;

/// The quantiles an SLO may target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloQuantile {
    /// Median.
    P50,
    /// 90th percentile.
    P90,
    /// 99th percentile.
    P99,
    /// 99.9th percentile.
    P999,
}

impl SloQuantile {
    /// The quantile as a fraction in `[0, 1]`.
    pub fn as_f64(self) -> f64 {
        match self {
            SloQuantile::P50 => 0.50,
            SloQuantile::P90 => 0.90,
            SloQuantile::P99 => 0.99,
            SloQuantile::P999 => 0.999,
        }
    }

    fn parse(s: &str) -> Option<SloQuantile> {
        match s {
            "p50" => Some(SloQuantile::P50),
            "p90" => Some(SloQuantile::P90),
            "p99" => Some(SloQuantile::P99),
            "p999" => Some(SloQuantile::P999),
            _ => None,
        }
    }
}

/// One parsed objective: `quantile(metric) < threshold_us`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Slo {
    /// The objective as written (trimmed) — the stable key used in
    /// verdicts and reports.
    pub text: String,
    /// Registry histogram the objective targets.
    pub metric: String,
    /// Which tail quantile to evaluate.
    pub quantile: SloQuantile,
    /// Upper bound in microseconds (exclusive: `value < threshold`).
    pub threshold_us: u64,
}

impl Slo {
    /// Parse an objective from the grammar in the module docs.
    pub fn parse(input: &str) -> Result<Slo, String> {
        let text = input.trim().to_string();
        let err = |what: &str| format!("bad SLO `{text}`: {what}");
        let open = text.find('(').ok_or_else(|| err("missing `(`"))?;
        let close = text.find(')').ok_or_else(|| err("missing `)`"))?;
        if close < open {
            return Err(err("`)` before `(`"));
        }
        let quantile = SloQuantile::parse(text[..open].trim())
            .ok_or_else(|| err("quantile must be p50, p90, p99, or p999"))?;
        let metric = text[open + 1..close].trim().to_string();
        if metric.is_empty() {
            return Err(err("empty metric name"));
        }
        let rest = text[close + 1..].trim_start();
        let rest = rest
            .strip_prefix('<')
            .ok_or_else(|| err("expected `<` after `)`"))?
            .trim();
        let digits_end = rest
            .find(|c: char| !c.is_ascii_digit())
            .ok_or_else(|| err("threshold missing a unit (us, ms, or s)"))?;
        if digits_end == 0 {
            return Err(err("threshold missing a number"));
        }
        let number: u64 = rest[..digits_end]
            .parse()
            .map_err(|_| err("threshold number does not fit in u64"))?;
        let scale = match rest[digits_end..].trim() {
            "us" => 1,
            "ms" => 1_000,
            "s" => 1_000_000,
            other => return Err(err(&format!("unknown unit `{other}`"))),
        };
        let threshold_us = number
            .checked_mul(scale)
            .ok_or_else(|| err("threshold overflows u64 microseconds"))?;
        Ok(Slo {
            text,
            metric,
            quantile,
            threshold_us,
        })
    }
}

thread_local! {
    static TRACKER: RefCell<Vec<Slo>> = const { RefCell::new(Vec::new()) };
}

/// Install the objective set for this thread's current run, replacing
/// any previous set.
pub fn slo_install(slos: Vec<Slo>) {
    TRACKER.with(|t| *t.borrow_mut() = slos);
}

/// Remove all installed objectives (run boundaries).
pub fn slo_clear() {
    slo_install(Vec::new());
}

/// Whether any objectives are installed on this thread.
pub fn slo_active() -> bool {
    TRACKER.with(|t| !t.borrow().is_empty())
}

/// Evaluate every installed objective against one day's metric deltas.
/// `lookup(metric, q)` returns the day's quantile value for a metric,
/// or `None` if the metric saw no observations that day (the objective
/// then passes vacuously with a `null` value). Returns `None` when no
/// objectives are installed; otherwise the per-objective verdict array
/// for the day point. Failures increment the `slo.violations` counter.
pub fn evaluate_day(lookup: &dyn Fn(&str, f64) -> Option<u64>) -> Option<JsonValue> {
    TRACKER.with(|t| {
        let slos = t.borrow();
        if slos.is_empty() {
            return None;
        }
        let mut verdicts = JsonValue::array();
        let mut violations = 0u64;
        for slo in slos.iter() {
            let value = lookup(&slo.metric, slo.quantile.as_f64());
            let ok = match value {
                Some(v) => v < slo.threshold_us,
                None => true,
            };
            if !ok {
                violations += 1;
            }
            verdicts.push(jsn!({
                "slo": slo.text.clone(),
                "value": value,
                "ok": ok,
            }));
        }
        if violations > 0 {
            with_registry(|r| {
                let c = r.counter("slo.violations");
                r.inc(c, violations);
            });
        }
        Some(verdicts)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_canonical_form() {
        let slo = Slo::parse("p99(driver.service_us) < 150ms").unwrap();
        assert_eq!(slo.quantile, SloQuantile::P99);
        assert_eq!(slo.metric, "driver.service_us");
        assert_eq!(slo.threshold_us, 150_000);
        assert_eq!(slo.text, "p99(driver.service_us) < 150ms");
    }

    #[test]
    fn parses_all_units_and_quantiles() {
        assert_eq!(Slo::parse("p50(m) < 5us").unwrap().threshold_us, 5);
        assert_eq!(Slo::parse("p90(m) < 2ms").unwrap().threshold_us, 2_000);
        assert_eq!(Slo::parse("p999(m) < 1s").unwrap().threshold_us, 1_000_000);
        assert_eq!(Slo::parse("  p999( a.b ) <  3 ms ").unwrap().metric, "a.b");
    }

    #[test]
    fn rejects_malformed_objectives() {
        for bad in [
            "p98(m) < 1ms",
            "p99 m < 1ms",
            "p99() < 1ms",
            "p99(m) > 1ms",
            "p99(m) < ms",
            "p99(m) < 10",
            "p99(m) < 10h",
        ] {
            assert!(Slo::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn evaluates_pass_fail_and_vacuous() {
        crate::registry::registry_clear();
        slo_install(vec![
            Slo::parse("p99(fast_us) < 100ms").unwrap(),
            Slo::parse("p99(slow_us) < 1ms").unwrap(),
            Slo::parse("p99(absent_us) < 1ms").unwrap(),
        ]);
        let lookup = |metric: &str, _q: f64| -> Option<u64> {
            match metric {
                "fast_us" => Some(5_000),
                "slow_us" => Some(60_000),
                _ => None,
            }
        };
        let verdicts = evaluate_day(&lookup).unwrap();
        assert_eq!(verdicts[0]["ok"], true);
        assert_eq!(verdicts[0]["value"], 5_000);
        assert_eq!(verdicts[1]["ok"], false);
        assert_eq!(verdicts[2]["ok"], true);
        assert!(verdicts[2]["value"].is_null());
        let snap = crate::registry::registry_snapshot();
        assert_eq!(snap["counters"]["slo.violations"], 1);
        slo_clear();
        assert!(evaluate_day(&lookup).is_none());
    }
}
