//! On-partition layout: superblock, cylinder groups, i-node regions.
//!
//! The partition is an array of file-system blocks. Block 0 holds the
//! superblock. The rest is divided into cylinder groups; each group
//! starts with an i-node region followed by data blocks. This mirrors the
//! Berkeley FFS layout closely enough that the paper's placement
//! behaviour (hot data spread across groups, metadata interleaved with
//! data) emerges naturally.

use serde::{Deserialize, Serialize};

/// Bytes per on-disk i-node (the classic UFS size).
pub const INODE_SIZE: u32 = 128;

/// Static layout parameters of a file system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FsLayout {
    /// File-system block size in bytes (8192 in the paper).
    pub block_size: u32,
    /// Fragment size in bytes (1024 in the paper).
    pub fragment_size: u32,
    /// Total file-system blocks in the partition.
    pub n_blocks: u64,
    /// Blocks per cylinder group.
    pub blocks_per_group: u64,
    /// I-node blocks at the start of each group.
    pub inode_blocks_per_group: u64,
    /// Rotational interleave gap in blocks (0 = contiguous).
    pub interleave: u64,
}

impl FsLayout {
    /// Compute a layout for a partition of `n_sectors` sectors.
    ///
    /// `cylinders_per_group` and the disk's sectors-per-cylinder determine
    /// the group size, rounded to whole blocks.
    ///
    /// # Panics
    /// Panics on degenerate parameters (partition smaller than two
    /// groups' worth of blocks, fragment not dividing block, ...).
    pub fn new(
        n_sectors: u64,
        sectors_per_cylinder: u64,
        block_size: u32,
        fragment_size: u32,
        cylinders_per_group: u32,
        interleave: u64,
    ) -> Self {
        assert!(block_size > 0 && fragment_size > 0);
        assert_eq!(block_size % fragment_size, 0, "fragment must divide block");
        let spb = u64::from(block_size) / abr_disk::SECTOR_SIZE as u64;
        assert!(spb > 0, "block smaller than a sector");
        let n_blocks = n_sectors / spb;
        let blocks_per_group =
            (u64::from(cylinders_per_group) * sectors_per_cylinder / spb).max(16);
        assert!(
            n_blocks >= 2 * blocks_per_group,
            "partition too small for two cylinder groups"
        );
        // One i-node block per 32 data blocks, at least one.
        let inode_blocks_per_group = (blocks_per_group / 32).max(1);
        FsLayout {
            block_size,
            fragment_size,
            n_blocks,
            blocks_per_group,
            inode_blocks_per_group,
            interleave,
        }
    }

    /// Sectors per file-system block.
    pub fn sectors_per_block(&self) -> u32 {
        self.block_size / abr_disk::SECTOR_SIZE_U32
    }

    /// Sectors per fragment.
    pub fn sectors_per_fragment(&self) -> u32 {
        self.fragment_size / abr_disk::SECTOR_SIZE_U32
    }

    /// Fragments per block.
    pub fn fragments_per_block(&self) -> u32 {
        self.block_size / self.fragment_size
    }

    /// Number of cylinder groups (the trailing partial group, if any, is
    /// ignored, like `newfs` wasting tail cylinders).
    pub fn n_groups(&self) -> u64 {
        // Block 0 is the superblock; groups start at block 1.
        (self.n_blocks - 1) / self.blocks_per_group
    }

    /// First block of group `g` (its i-node region).
    pub fn group_start(&self, g: u64) -> u64 {
        debug_assert!(g < self.n_groups());
        1 + g * self.blocks_per_group
    }

    /// First *data* block of group `g`.
    pub fn group_data_start(&self, g: u64) -> u64 {
        self.group_start(g) + self.inode_blocks_per_group
    }

    /// Exclusive end block of group `g`.
    pub fn group_end(&self, g: u64) -> u64 {
        self.group_start(g) + self.blocks_per_group
    }

    /// Data blocks per group.
    pub fn data_blocks_per_group(&self) -> u64 {
        self.blocks_per_group - self.inode_blocks_per_group
    }

    /// I-nodes per group.
    pub fn inodes_per_group(&self) -> u64 {
        self.inode_blocks_per_group * u64::from(self.block_size / INODE_SIZE)
    }

    /// Total i-nodes in the file system.
    pub fn total_inodes(&self) -> u64 {
        self.inodes_per_group() * self.n_groups()
    }

    /// The group an i-node lives in.
    pub fn group_of_inode(&self, ino: u64) -> u64 {
        ino / self.inodes_per_group()
    }

    /// The file-system block holding i-node `ino`.
    pub fn inode_block(&self, ino: u64) -> u64 {
        let g = self.group_of_inode(ino);
        let within = ino % self.inodes_per_group();
        self.group_start(g) + within / u64::from(self.block_size / INODE_SIZE)
    }

    /// The group a data block belongs to, or `None` for the superblock.
    pub fn group_of_block(&self, block: u64) -> Option<u64> {
        if block == 0 {
            return None;
        }
        let g = (block - 1) / self.blocks_per_group;
        (g < self.n_groups()).then_some(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Layout like the paper's Toshiba system partition: ~60 MB.
    fn paper_like() -> FsLayout {
        FsLayout::new(120_000, 340, 8192, 1024, 16, 1)
    }

    #[test]
    fn paper_parameters() {
        let l = paper_like();
        assert_eq!(l.sectors_per_block(), 16);
        assert_eq!(l.sectors_per_fragment(), 2);
        assert_eq!(l.fragments_per_block(), 8);
        assert_eq!(l.n_blocks, 7500);
        // 16 cylinders * 340 sectors / 16 spb = 340 blocks per group.
        assert_eq!(l.blocks_per_group, 340);
        assert!(l.n_groups() >= 20);
    }

    #[test]
    fn groups_tile_the_partition() {
        let l = paper_like();
        let mut prev_end = 1;
        for g in 0..l.n_groups() {
            assert_eq!(l.group_start(g), prev_end);
            assert!(l.group_data_start(g) > l.group_start(g));
            prev_end = l.group_end(g);
        }
        assert!(prev_end <= l.n_blocks);
    }

    #[test]
    fn inode_blocks_inside_group_metadata_region() {
        let l = paper_like();
        let ipg = l.inodes_per_group();
        for ino in [0, 1, ipg - 1, ipg, 2 * ipg + 5] {
            let b = l.inode_block(ino);
            let g = l.group_of_inode(ino);
            assert!(b >= l.group_start(g));
            assert!(b < l.group_data_start(g));
        }
    }

    #[test]
    fn inodes_per_block_is_64_for_8k() {
        let l = paper_like();
        // 8192 / 128 = 64 inodes per block.
        assert_eq!(l.inode_block(0), l.inode_block(63));
        assert_ne!(l.inode_block(63), l.inode_block(64));
    }

    #[test]
    fn group_of_block_roundtrip() {
        let l = paper_like();
        assert_eq!(l.group_of_block(0), None);
        for g in 0..l.n_groups() {
            assert_eq!(l.group_of_block(l.group_start(g)), Some(g));
            assert_eq!(l.group_of_block(l.group_end(g) - 1), Some(g));
        }
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_partition_rejected() {
        FsLayout::new(100, 340, 8192, 1024, 16, 1);
    }

    #[test]
    #[should_panic(expected = "fragment must divide")]
    fn bad_fragment_rejected() {
        FsLayout::new(120_000, 340, 8192, 1000, 16, 1);
    }
}
