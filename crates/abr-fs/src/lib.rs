//! # abr-fs — FFS-lite file system
//!
//! A compact model of the SunOS 4.1.1 UFS file system (§3.1 of *Adaptive
//! Block Rearrangement*), faithful in the properties the paper's results
//! depend on:
//!
//! * **Cylinder-group layout** ([`layout`]): the partition is divided into
//!   cylinder groups; directories are spread across groups and a file's
//!   blocks are allocated in its directory's group, so hot files end up
//!   scattered over the disk surface — the source of the long seeks that
//!   block rearrangement removes.
//! * **Rotational interleaving** ([`alloc`]): successive blocks of a file
//!   are placed `interleave` blocks apart ("the SunOS UNIX file system
//!   ... tries to place successive blocks of a file interleaved by gaps",
//!   §4.2) — the structure the *interleaved* placement policy preserves.
//! * **Buffer cache with delayed writes** ([`cache`]): all file I/O goes
//!   through the cache; updates remain in memory until the periodic
//!   update daemon flushes them (§3.1), which produces the bursty write
//!   arrival pattern of §5.2.
//! * **I-node timestamp updates** ([`fs`]): reads dirty the i-node block,
//!   so even a read-only-mounted file system generates a trickle of
//!   writes, exactly as §3.1 describes.
//!
//! File *data* is synthesized deterministically from `(inode, block)`
//! ([`payload`]), so end-to-end integrity can be verified without holding
//! file contents in memory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod cache;
pub mod fs;
pub mod layout;
pub mod payload;

pub use cache::BufferCache;
pub use fs::{FileHandle, FileSystem, FsConfig, FsError, MountMode};
pub use layout::FsLayout;
