//! The file system proper: files, directories, and the translation of
//! file-level operations into block-level driver requests.
//!
//! Operations do not perform I/O themselves; they return the
//! [`IoRequest`]s the server would issue at that moment (cache misses and
//! dirty-eviction writebacks). The caller — the workload harness —
//! submits them to the driver. The periodic update daemon is modelled by
//! [`FileSystem::sync`], which the harness calls on the update period
//! (classically every 30 s), producing the paper's bursty write pattern.

use crate::alloc::Allocator;
use crate::cache::{BufferCache, Writeback};
use crate::layout::FsLayout;
use crate::payload::PayloadTag;
use abr_driver::request::IoRequest;
use abr_sim::hash::FastMap;
use std::collections::BTreeMap;
use std::fmt;

/// Number of direct block pointers in an i-node (classic UFS: 12).
pub const DIRECT_POINTERS: usize = 12;

/// Mount mode (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum MountMode {
    /// Users may not create, delete or modify files; the OS still updates
    /// i-node bookkeeping (access times), so writes trickle out anyway.
    ReadOnly,
    /// Full access.
    ReadWrite,
}

/// File-system configuration.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct FsConfig {
    /// Partition index on the driver.
    pub partition: usize,
    /// Block size in bytes (paper: 8192).
    pub block_size: u32,
    /// Fragment size in bytes (paper: 1024).
    pub fragment_size: u32,
    /// Cylinders per cylinder group (classic FFS: 16).
    pub cylinders_per_group: u32,
    /// Rotational interleave gap in blocks.
    pub interleave: u64,
    /// Buffer cache capacity in blocks.
    pub cache_blocks: usize,
    /// Mount mode.
    pub mode: MountMode,
    /// Write *data* blocks through to disk at operation time instead of
    /// delaying them for the update daemon. NFS2 data writes are
    /// synchronous at the server, so a file server's user-data writes
    /// arrive paced with the RPC stream; only metadata bookkeeping
    /// (i-node timestamps, directory blocks) rides the periodic sync.
    pub write_through: bool,
}

impl Default for FsConfig {
    fn default() -> Self {
        FsConfig {
            partition: 0,
            block_size: 8192,
            fragment_size: 1024,
            cylinders_per_group: 16,
            interleave: 1,
            cache_blocks: 2048,
            mode: MountMode::ReadWrite,
            write_through: false,
        }
    }
}

/// File-system errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsError {
    /// Write-type operation on a read-only mount.
    ReadOnly,
    /// Out of data blocks.
    NoSpace,
    /// Out of i-nodes.
    NoInodes,
    /// Unknown file handle.
    NoSuchFile,
    /// Unknown directory.
    NoSuchDir,
    /// Read or write beyond end of file.
    BeyondEof,
    /// File too large for direct + single-indirect addressing.
    TooLarge,
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FsError::ReadOnly => "read-only file system",
            FsError::NoSpace => "no space left on device",
            FsError::NoInodes => "no free i-nodes",
            FsError::NoSuchFile => "no such file",
            FsError::NoSuchDir => "no such directory",
            FsError::BeyondEof => "beyond end of file",
            FsError::TooLarge => "file too large",
        };
        f.write_str(s)
    }
}

impl std::error::Error for FsError {}

/// Handle to an open file (its i-node number).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct FileHandle(pub u64);

/// Handle to a directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct DirHandle(pub u64);

#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct Inode {
    size: u64,
    /// Absolute FS block numbers of the file's data blocks, in file order.
    blocks: Vec<u64>,
    /// Indirect-pointer block, allocated once the file outgrows the
    /// direct pointers.
    indirect: Option<u64>,
    /// Per-file-block write generation (for payload synthesis).
    generations: Vec<u32>,
    /// Group the i-node lives in (allocation affinity).
    group: u64,
}

#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct Dir {
    /// The directory's single directory-contents block.
    block: u64,
    /// Cylinder group the directory claims.
    group: u64,
    /// Update generation of the directory block.
    generation: u32,
}

/// The i-node table, dense over the allocator's bounded i-node space.
///
/// I-node lookups sit on the per-operation hot path (every read, write
/// and access-time touch), and i-node numbers are small dense integers
/// handed out by the per-group allocator — a direct-indexed slot vector
/// answers in one probe where the ordered map walked `log n` nodes.
/// Serialization goes through an ordered map (see
/// [`FileSystem::save_state`]) so saved state is unchanged.
#[derive(Debug, Default)]
struct InodeTable {
    slots: Vec<Option<Inode>>,
    live: usize,
}

impl InodeTable {
    fn get(&self, ino: u64) -> Option<&Inode> {
        self.slots.get(ino as usize)?.as_ref()
    }

    fn get_mut(&mut self, ino: u64) -> Option<&mut Inode> {
        self.slots.get_mut(ino as usize)?.as_mut()
    }

    fn insert(&mut self, ino: u64, inode: Inode) {
        let i = ino as usize;
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        if self.slots[i].replace(inode).is_none() {
            self.live += 1;
        }
    }

    fn remove(&mut self, ino: u64) -> Option<Inode> {
        let gone = self.slots.get_mut(ino as usize)?.take();
        if gone.is_some() {
            self.live -= 1;
        }
        gone
    }

    fn len(&self) -> usize {
        self.live
    }

    /// Live entries in i-node order (the order the old ordered map
    /// serialized in).
    fn ordered(&self) -> BTreeMap<u64, &Inode> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|inode| (i as u64, inode)))
            .collect()
    }

    fn from_ordered(map: BTreeMap<u64, Inode>) -> Self {
        let mut t = InodeTable::default();
        for (ino, inode) in map {
            t.insert(ino, inode);
        }
        t
    }
}

impl std::ops::Index<u64> for InodeTable {
    type Output = Inode;
    fn index(&self, ino: u64) -> &Inode {
        self.get(ino).expect("live i-node")
    }
}

/// The file system.
pub struct FileSystem {
    cfg: FsConfig,
    layout: FsLayout,
    alloc: Allocator,
    cache: BufferCache,
    inodes: InodeTable,
    dirs: BTreeMap<u64, Dir>,
    next_dir_id: u64,
    /// Update generation per i-node region block. Touched on every
    /// operation (access-time updates), so keyed with the fast fixed
    /// hasher; serialized through an ordered map (see
    /// [`FileSystem::save_state`]).
    inode_block_gen: FastMap<u64, u32>,
    /// Reusable (block, generation) scratch for `read`/`write`, so the
    /// per-operation hot path does not allocate to walk an extent list.
    op_scratch: Vec<(u64, u32)>,
}

impl fmt::Debug for FileSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FileSystem")
            .field("files", &self.inodes.len())
            .field("dirs", &self.dirs.len())
            .field("free_blocks", &self.alloc.total_free())
            .finish_non_exhaustive()
    }
}

impl FileSystem {
    /// Create ("newfs") a file system on a partition of `n_sectors`
    /// sectors, on a disk with the given sectors-per-cylinder.
    pub fn newfs(cfg: FsConfig, n_sectors: u64, sectors_per_cylinder: u64) -> Self {
        let layout = FsLayout::new(
            n_sectors,
            sectors_per_cylinder,
            cfg.block_size,
            cfg.fragment_size,
            cfg.cylinders_per_group,
            cfg.interleave,
        );
        FileSystem {
            alloc: Allocator::new(layout),
            cache: BufferCache::new(cfg.cache_blocks),
            inodes: InodeTable::default(),
            dirs: BTreeMap::new(),
            next_dir_id: 0,
            inode_block_gen: FastMap::default(),
            op_scratch: Vec::new(),
            layout,
            cfg,
        }
    }

    /// The static layout.
    pub fn layout(&self) -> &FsLayout {
        &self.layout
    }

    /// The configuration.
    pub fn config(&self) -> &FsConfig {
        &self.cfg
    }

    /// Buffer cache statistics `(hits, misses)`.
    pub fn cache_hit_miss(&self) -> (u64, u64) {
        self.cache.hit_miss()
    }

    /// Free data blocks remaining.
    pub fn free_blocks(&self) -> u64 {
        self.alloc.total_free()
    }

    /// Total data blocks in the file system.
    pub fn total_data_blocks(&self) -> u64 {
        self.layout.n_groups() * self.layout.data_blocks_per_group()
    }

    /// Change the mount mode (e.g. build read-write, then serve
    /// read-only, as the paper's *system* file system was used).
    pub fn remount(&mut self, mode: MountMode) {
        self.cfg.mode = mode;
    }

    // ----- helpers ---------------------------------------------------

    fn spb(&self) -> u32 {
        self.layout.sectors_per_block()
    }

    fn read_req(&self, block: u64, n_sectors: u32) -> IoRequest {
        IoRequest::read(self.cfg.partition, block * u64::from(self.spb()), n_sectors)
    }

    fn write_req(&self, w: &Writeback) -> IoRequest {
        // Seeded: the request carries the 8-byte generator seed; the
        // driver synthesizes the identical payload stream at media-write
        // time (see `PayloadTag::seed`).
        IoRequest::write_seeded(
            self.cfg.partition,
            w.block * u64::from(self.spb()),
            w.n_sectors,
            w.tag.seed(),
        )
    }

    /// Reference a block for reading: emits a read on a miss and a
    /// writeback if a dirty block was evicted.
    fn cache_read(&mut self, block: u64, n_sectors: u32, out: &mut Vec<IoRequest>) {
        let (hit, evicted) = self.cache.reference(block);
        if let Some(w) = evicted {
            out.push(self.write_req(&w));
        }
        if !hit {
            out.push(self.read_req(block, n_sectors));
        }
    }

    /// Dirty a block in the cache; emits a writeback if a dirty block was
    /// evicted to make room.
    fn cache_dirty(
        &mut self,
        block: u64,
        tag: PayloadTag,
        n_sectors: u32,
        out: &mut Vec<IoRequest>,
    ) {
        if let Some(w) = self.cache.mark_dirty(block, tag, n_sectors) {
            out.push(self.write_req(&w));
        }
    }

    /// Write a *data* block: through the cache when delayed writes are
    /// configured, straight to disk (leaving the block clean-resident)
    /// when `write_through` is set.
    fn data_write(
        &mut self,
        block: u64,
        tag: PayloadTag,
        n_sectors: u32,
        out: &mut Vec<IoRequest>,
    ) {
        if self.cfg.write_through {
            let (_, evicted) = self.cache.reference(block);
            if let Some(w) = evicted {
                out.push(self.write_req(&w));
            }
            out.push(self.write_req(&Writeback {
                block,
                tag,
                n_sectors,
            }));
        } else {
            self.cache_dirty(block, tag, n_sectors, out);
        }
    }

    /// Touch an i-node's block as dirty (timestamp update). Allowed on
    /// read-only mounts — "the operating system itself may generate write
    /// requests to the logical device that holds a read-only file system"
    /// (§3.1).
    fn touch_inode(&mut self, ino: u64, out: &mut Vec<IoRequest>) {
        let block = self.layout.inode_block(ino);
        let generation = {
            let g = self.inode_block_gen.entry(block).or_insert(0);
            *g += 1;
            *g
        };
        self.cache_dirty(
            block,
            PayloadTag::InodeBlock { block, generation },
            self.spb(),
            out,
        );
    }

    /// Read an i-node's block (metadata fetch before using a cold file).
    fn fetch_inode(&mut self, ino: u64, out: &mut Vec<IoRequest>) {
        let block = self.layout.inode_block(ino);
        self.cache_read(block, self.spb(), out);
    }

    /// Sectors occupied by file block `idx` of a file of `size` bytes:
    /// full blocks transfer whole, the tail transfers only its fragments.
    fn block_sectors(&self, size: u64, idx: usize, n_blocks: usize) -> u32 {
        let bs = u64::from(self.cfg.block_size);
        if idx + 1 < n_blocks || size.is_multiple_of(bs) {
            self.spb()
        } else {
            let tail = size % bs;
            let frag = u64::from(self.cfg.fragment_size);
            (tail.div_ceil(frag) * frag / abr_disk::SECTOR_SIZE as u64) as u32
        }
    }

    // ----- directory operations --------------------------------------

    /// Create a directory. FFS policy: new directories go to the group
    /// with the most free space, spreading unrelated files apart.
    pub fn mkdir(&mut self) -> Result<(DirHandle, Vec<IoRequest>), FsError> {
        if self.cfg.mode == MountMode::ReadOnly {
            return Err(FsError::ReadOnly);
        }
        let group = self.alloc.alloc_dir_group();
        let block = self
            .alloc
            .alloc_block(group, None)
            .ok_or(FsError::NoSpace)?;
        let id = self.next_dir_id;
        self.next_dir_id += 1;
        self.dirs.insert(
            id,
            Dir {
                block,
                group,
                generation: 0,
            },
        );
        let mut out = Vec::new();
        self.cache_dirty(
            block,
            PayloadTag::DirBlock {
                dir: id,
                generation: 0,
            },
            self.spb(),
            &mut out,
        );
        Ok((DirHandle(id), out))
    }

    /// Number of directories.
    pub fn n_dirs(&self) -> usize {
        self.dirs.len()
    }

    fn dirty_dir(&mut self, dir: u64, out: &mut Vec<IoRequest>) -> Result<(), FsError> {
        let d = self.dirs.get_mut(&dir).ok_or(FsError::NoSuchDir)?;
        d.generation += 1;
        let (block, generation) = (d.block, d.generation);
        self.cache_dirty(
            block,
            PayloadTag::DirBlock { dir, generation },
            self.spb(),
            out,
        );
        Ok(())
    }

    // ----- file operations --------------------------------------------

    /// Create a file of `size` bytes in `dir`. Allocates the i-node in
    /// the directory's group and data blocks with rotational
    /// interleaving; all writes are delayed in the cache.
    pub fn create(
        &mut self,
        dir: DirHandle,
        size: u64,
    ) -> Result<(FileHandle, Vec<IoRequest>), FsError> {
        if self.cfg.mode == MountMode::ReadOnly {
            return Err(FsError::ReadOnly);
        }
        let group = self.dirs.get(&dir.0).ok_or(FsError::NoSuchDir)?.group;
        let ino = self.alloc.alloc_inode(group).ok_or(FsError::NoInodes)?;
        let bs = u64::from(self.cfg.block_size);
        let n_blocks = size.div_ceil(bs) as usize;
        if n_blocks > DIRECT_POINTERS + (self.cfg.block_size as usize / 8) {
            return Err(FsError::TooLarge);
        }
        let mut out = Vec::new();
        let mut blocks = Vec::with_capacity(n_blocks);
        let mut prev = None;
        // Roll back everything allocated so far if space runs out
        // mid-file; a failed create must not leak blocks.
        let alloc_or_rollback = |alloc: &mut crate::alloc::Allocator,
                                 blocks: &mut Vec<u64>,
                                 prev: Option<u64>|
         -> Result<u64, FsError> {
            match alloc.alloc_block(group, prev) {
                Some(b) => Ok(b),
                None => {
                    for &b in blocks.iter() {
                        alloc.free_block(b);
                    }
                    blocks.clear();
                    Err(FsError::NoSpace)
                }
            }
        };
        for _ in 0..n_blocks {
            let b = alloc_or_rollback(&mut self.alloc, &mut blocks, prev)?;
            blocks.push(b);
            prev = Some(b);
        }
        // Indirect block if the file outgrows the direct pointers.
        let indirect = if n_blocks > DIRECT_POINTERS {
            let b = alloc_or_rollback(&mut self.alloc, &mut blocks, prev)?;
            self.cache_dirty(b, PayloadTag::Indirect { ino }, self.spb(), &mut out);
            Some(b)
        } else {
            None
        };
        // Data block writes.
        for (idx, &b) in blocks.iter().enumerate() {
            let n_sectors = self.block_sectors(size, idx, n_blocks);
            self.data_write(
                b,
                PayloadTag::FileData {
                    ino,
                    index: idx as u64,
                    generation: 0,
                },
                n_sectors,
                &mut out,
            );
        }
        let generations = vec![0; n_blocks];
        self.inodes.insert(
            ino,
            Inode {
                size,
                blocks,
                indirect,
                generations,
                group,
            },
        );
        self.touch_inode(ino, &mut out);
        self.dirty_dir(dir.0, &mut out)?;
        Ok((FileHandle(ino), out))
    }

    /// Read `n_blocks` file blocks starting at block `start` of the file.
    /// Returns the disk requests this triggers (metadata misses, data
    /// misses, dirty evictions). Updates the access time (a delayed
    /// i-node write) even on read-only mounts.
    pub fn read(
        &mut self,
        file: FileHandle,
        start: usize,
        n_blocks: usize,
    ) -> Result<Vec<IoRequest>, FsError> {
        let mut scratch = std::mem::take(&mut self.op_scratch);
        scratch.clear();
        let (size, indirect, total) = {
            let inode = match self.inodes.get(file.0) {
                Some(i) => i,
                None => {
                    self.op_scratch = scratch;
                    return Err(FsError::NoSuchFile);
                }
            };
            if start + n_blocks > inode.blocks.len() {
                self.op_scratch = scratch;
                return Err(FsError::BeyondEof);
            }
            scratch.extend(
                inode.blocks[start..start + n_blocks]
                    .iter()
                    .map(|&b| (b, 0)),
            );
            (inode.size, inode.indirect, inode.blocks.len())
        };
        let mut out = Vec::new();
        self.fetch_inode(file.0, &mut out);
        // Touching blocks beyond the direct pointers needs the indirect
        // block resident.
        if start + n_blocks > DIRECT_POINTERS {
            if let Some(ib) = indirect {
                self.cache_read(ib, self.spb(), &mut out);
            }
        }
        for (i, &(b, _)) in scratch.iter().enumerate() {
            let idx = start + i;
            let n_sectors = self.block_sectors(size, idx, total);
            self.cache_read(b, n_sectors, &mut out);
        }
        self.touch_inode(file.0, &mut out);
        self.op_scratch = scratch;
        Ok(out)
    }

    /// Read the whole file.
    pub fn read_file(&mut self, file: FileHandle) -> Result<Vec<IoRequest>, FsError> {
        let n = self.n_file_blocks(file)?;
        if n == 0 {
            let mut out = Vec::new();
            self.fetch_inode(file.0, &mut out);
            self.touch_inode(file.0, &mut out);
            return Ok(out);
        }
        self.read(file, 0, n)
    }

    /// Overwrite `n_blocks` file blocks starting at `start` (delayed
    /// writes; the data generation is bumped so payloads change).
    pub fn write(
        &mut self,
        file: FileHandle,
        start: usize,
        n_blocks: usize,
    ) -> Result<Vec<IoRequest>, FsError> {
        if self.cfg.mode == MountMode::ReadOnly {
            return Err(FsError::ReadOnly);
        }
        let mut scratch = std::mem::take(&mut self.op_scratch);
        scratch.clear();
        let (size, total) = {
            let inode = match self.inodes.get_mut(file.0) {
                Some(i) => i,
                None => {
                    self.op_scratch = scratch;
                    return Err(FsError::NoSuchFile);
                }
            };
            if start + n_blocks > inode.blocks.len() {
                self.op_scratch = scratch;
                return Err(FsError::BeyondEof);
            }
            for idx in start..start + n_blocks {
                inode.generations[idx] += 1;
                scratch.push((inode.blocks[idx], inode.generations[idx]));
            }
            (inode.size, inode.blocks.len())
        };
        let mut out = Vec::new();
        self.fetch_inode(file.0, &mut out);
        for (i, &(b, generation)) in scratch.iter().enumerate() {
            let idx = start + i;
            let n_sectors = self.block_sectors(size, idx, total);
            self.data_write(
                b,
                PayloadTag::FileData {
                    ino: file.0,
                    index: idx as u64,
                    generation,
                },
                n_sectors,
                &mut out,
            );
        }
        self.touch_inode(file.0, &mut out);
        self.op_scratch = scratch;
        Ok(out)
    }

    /// Append `bytes` to a file, allocating new blocks as needed.
    pub fn append(&mut self, file: FileHandle, bytes: u64) -> Result<Vec<IoRequest>, FsError> {
        if self.cfg.mode == MountMode::ReadOnly {
            return Err(FsError::ReadOnly);
        }
        let bs = u64::from(self.cfg.block_size);
        let (old_size, group, mut prev, old_n) = {
            let inode = self.inodes.get(file.0).ok_or(FsError::NoSuchFile)?;
            (
                inode.size,
                inode.group,
                inode.blocks.last().copied(),
                inode.blocks.len(),
            )
        };
        let new_size = old_size + bytes;
        let new_n = new_size.div_ceil(bs) as usize;
        if new_n > DIRECT_POINTERS + (self.cfg.block_size as usize / 8) {
            return Err(FsError::TooLarge);
        }
        let mut out = Vec::new();
        let mut new_blocks = Vec::new();
        // Allocate everything (including any new indirect block) before
        // mutating the i-node, rolling back on exhaustion so a failed
        // append leaks nothing and leaves the file unchanged.
        let rollback = |alloc: &mut crate::alloc::Allocator, blocks: &[u64]| {
            for &b in blocks {
                alloc.free_block(b);
            }
        };
        for _ in old_n..new_n {
            match self.alloc.alloc_block(group, prev) {
                Some(b) => {
                    new_blocks.push(b);
                    prev = Some(b);
                }
                None => {
                    rollback(&mut self.alloc, &new_blocks);
                    return Err(FsError::NoSpace);
                }
            }
        }
        let needs_indirect = new_n > DIRECT_POINTERS;
        let new_indirect = if needs_indirect && self.inodes[file.0].indirect.is_none() {
            match self.alloc.alloc_block(group, prev) {
                Some(b) => Some(b),
                None => {
                    rollback(&mut self.alloc, &new_blocks);
                    return Err(FsError::NoSpace);
                }
            }
        } else {
            None
        };
        {
            let inode = self.inodes.get_mut(file.0).expect("checked");
            inode.blocks.extend(&new_blocks);
            inode.generations.extend(new_blocks.iter().map(|_| 0));
            inode.size = new_size;
            if let Some(b) = new_indirect {
                inode.indirect = Some(b);
            }
        }
        if needs_indirect {
            let ib = self.inodes[file.0].indirect.expect("just set"); // abr-lint: allow(P001, set by needs_indirect branch above)
            self.cache_dirty(
                ib,
                PayloadTag::Indirect { ino: file.0 },
                self.spb(),
                &mut out,
            );
        }
        // Rewrite the old tail block (it grew), then write the new blocks.
        let total = new_n;
        let size = new_size;
        let start = old_n.saturating_sub(1);
        let blocks = self.inodes[file.0].blocks[start..].to_vec();
        for (i, b) in blocks.into_iter().enumerate() {
            let idx = start + i;
            let generation = self.inodes[file.0].generations[idx];
            let n_sectors = self.block_sectors(size, idx, total);
            self.data_write(
                b,
                PayloadTag::FileData {
                    ino: file.0,
                    index: idx as u64,
                    generation,
                },
                n_sectors,
                &mut out,
            );
        }
        self.touch_inode(file.0, &mut out);
        Ok(out)
    }

    /// Delete a file, freeing its blocks.
    pub fn delete(&mut self, dir: DirHandle, file: FileHandle) -> Result<Vec<IoRequest>, FsError> {
        if self.cfg.mode == MountMode::ReadOnly {
            return Err(FsError::ReadOnly);
        }
        // Validate everything before any destructive step, so an error
        // leaves the file system unchanged.
        if !self.dirs.contains_key(&dir.0) {
            return Err(FsError::NoSuchDir);
        }
        let inode = self.inodes.remove(file.0).ok_or(FsError::NoSuchFile)?;
        let mut out = Vec::new();
        for b in &inode.blocks {
            self.cache.invalidate(*b);
            self.alloc.free_block(*b);
        }
        if let Some(ib) = inode.indirect {
            self.cache.invalidate(ib);
            self.alloc.free_block(ib);
        }
        self.touch_inode(file.0, &mut out);
        self.dirty_dir(dir.0, &mut out)?;
        Ok(out)
    }

    // ----- introspection ----------------------------------------------

    /// Number of data blocks in a file.
    pub fn n_file_blocks(&self, file: FileHandle) -> Result<usize, FsError> {
        Ok(self
            .inodes
            .get(file.0)
            .ok_or(FsError::NoSuchFile)?
            .blocks
            .len())
    }

    /// File size in bytes.
    pub fn file_size(&self, file: FileHandle) -> Result<u64, FsError> {
        Ok(self.inodes.get(file.0).ok_or(FsError::NoSuchFile)?.size)
    }

    /// Absolute FS block numbers of a file, in file order.
    pub fn file_blocks(&self, file: FileHandle) -> Result<&[u64], FsError> {
        Ok(&self.inodes.get(file.0).ok_or(FsError::NoSuchFile)?.blocks)
    }

    /// Expected payload of file block `idx`, for end-to-end verification.
    pub fn expected_payload(&self, file: FileHandle, idx: usize) -> Result<bytes::Bytes, FsError> {
        let inode = self.inodes.get(file.0).ok_or(FsError::NoSuchFile)?;
        if idx >= inode.blocks.len() {
            return Err(FsError::BeyondEof);
        }
        let n_sectors = self.block_sectors(inode.size, idx, inode.blocks.len());
        Ok(PayloadTag::FileData {
            ino: file.0,
            index: idx as u64,
            generation: inode.generations[idx],
        }
        .bytes(n_sectors as usize * abr_disk::SECTOR_SIZE))
    }

    // ----- the update daemon -------------------------------------------

    /// Snapshot all persistent file-system state (metadata, allocation,
    /// generations — everything except the volatile buffer cache) for
    /// storage alongside a disk image, so control tools can resume a
    /// file system across process lifetimes.
    ///
    /// # Panics
    /// Panics if dirty buffers remain — `sync` (and flush the returned
    /// requests to the disk) before snapshotting, exactly like a clean
    /// unmount.
    pub fn save_state(&self) -> serde_json::Value {
        assert_eq!(
            self.cache.dirty_count(),
            0,
            "sync before saving file-system state (clean unmount)"
        );
        serde_json::json!({
            "cfg": self.cfg,
            "layout": self.layout,
            "alloc": self.alloc,
            "inodes": self.inodes.ordered(),
            "dirs": self.dirs,
            "next_dir_id": self.next_dir_id,
            "inode_block_gen": self.inode_block_gen.iter().map(|(&k, &v)| (k, v)).collect::<BTreeMap<u64, u32>>(),
        })
    }

    /// Restore a file system from [`FileSystem::save_state`] output. The
    /// buffer cache starts cold.
    pub fn load_state(state: &serde_json::Value) -> Result<Self, serde_json::Error> {
        let cfg: FsConfig = serde_json::from_value(state["cfg"].clone())?;
        Ok(FileSystem {
            cfg,
            layout: serde_json::from_value(state["layout"].clone())?,
            alloc: serde_json::from_value(state["alloc"].clone())?,
            inodes: InodeTable::from_ordered(serde_json::from_value(state["inodes"].clone())?),
            dirs: serde_json::from_value(state["dirs"].clone())?,
            next_dir_id: serde_json::from_value(state["next_dir_id"].clone())?,
            inode_block_gen: serde_json::from_value::<BTreeMap<u64, u32>>(
                state["inode_block_gen"].clone(),
            )?
            .into_iter()
            .collect(),
            op_scratch: Vec::new(),
            cache: BufferCache::new(cfg.cache_blocks),
        })
    }

    /// Flush all dirty buffers — the periodic `update` policy of §3.1.
    /// Returns the burst of write requests.
    pub fn sync(&mut self) -> Vec<IoRequest> {
        self.cache
            .flush_all()
            .iter()
            .map(|w| self.write_req(w))
            .collect()
    }

    /// Dirty blocks currently awaiting the next sync.
    pub fn dirty_blocks(&self) -> usize {
        self.cache.dirty_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_disk::disk::IoDir;

    fn small_fs(mode: MountMode) -> FileSystem {
        let cfg = FsConfig {
            cache_blocks: 64,
            mode,
            ..FsConfig::default()
        };
        // ~60 MB partition on Toshiba-like geometry.
        FileSystem::newfs(cfg, 120_000, 340)
    }

    fn rw() -> FileSystem {
        small_fs(MountMode::ReadWrite)
    }

    #[test]
    fn create_defers_writes_to_sync() {
        let mut fs = rw();
        let (dir, reqs) = fs.mkdir().unwrap();
        assert!(reqs.is_empty(), "mkdir writes are delayed");
        let (_f, reqs) = fs.create(dir, 64 * 1024).unwrap();
        assert!(reqs.is_empty(), "file writes are delayed");
        assert!(fs.dirty_blocks() > 0);
        let burst = fs.sync();
        // 8 data blocks + inode block + dir block.
        assert_eq!(burst.len(), 10);
        assert!(burst.iter().all(|r| !r.dir.is_read()));
        assert_eq!(fs.dirty_blocks(), 0);
    }

    #[test]
    fn read_misses_then_hits() {
        let mut fs = rw();
        let (dir, _) = fs.mkdir().unwrap();
        let (f, _) = fs.create(dir, 32 * 1024).unwrap();
        fs.sync();
        // Blocks are still cache-resident after creation, so first read is
        // all hits except nothing: actually creation left them resident.
        let reqs = fs.read_file(f).unwrap();
        assert!(reqs.iter().all(|r| !r.dir.is_read()) || reqs.is_empty());

        // Evict everything by touching many other blocks.
        let (dir2, _) = fs.mkdir().unwrap();
        for _ in 0..30 {
            fs.create(dir2, 32 * 1024).unwrap();
        }
        fs.sync();
        let reqs = fs.read_file(f).unwrap();
        let reads = reqs.iter().filter(|r| r.dir.is_read()).count();
        assert!(reads >= 4, "expected cold-cache reads, got {reads}");
    }

    #[test]
    fn tail_fragment_transfers_partial_block() {
        let mut fs = rw();
        let (dir, _) = fs.mkdir().unwrap();
        // 8K + 3000 bytes: tail rounds up to 3 fragments = 3 KB = 6 sectors.
        let (_f, _) = fs.create(dir, 8192 + 3000).unwrap();
        let burst = fs.sync();
        let data_writes: Vec<u32> = burst
            .iter()
            .filter(|r| !r.dir.is_read())
            .map(|r| r.n_sectors)
            .collect();
        assert!(
            data_writes.contains(&6),
            "tail fragment write: {data_writes:?}"
        );
    }

    #[test]
    fn readonly_mount_rejects_mutation_but_updates_atime() {
        let mut fs = rw();
        let (dir, _) = fs.mkdir().unwrap();
        let (f, _) = fs.create(dir, 8192).unwrap();
        fs.sync();
        fs.remount(MountMode::ReadOnly);
        assert_eq!(fs.create(dir, 100).unwrap_err(), FsError::ReadOnly);
        assert_eq!(fs.write(f, 0, 1).unwrap_err(), FsError::ReadOnly);
        assert_eq!(fs.mkdir().unwrap_err(), FsError::ReadOnly);
        // Reads still dirty the i-node block (atime).
        fs.read_file(f).unwrap();
        assert!(fs.dirty_blocks() > 0, "atime update should be pending");
        let burst = fs.sync();
        assert!(!burst.is_empty());
    }

    #[test]
    fn interleaved_file_blocks() {
        let mut fs = rw();
        let (dir, _) = fs.mkdir().unwrap();
        let (f, _) = fs.create(dir, 4 * 8192).unwrap();
        let blocks = fs.file_blocks(f).unwrap();
        for w in blocks.windows(2) {
            assert_eq!(w[1] - w[0], 2, "interleave gap of 1 block");
        }
    }

    #[test]
    fn large_file_gets_indirect_block() {
        let mut fs = rw();
        let (dir, _) = fs.mkdir().unwrap();
        let (f, _) = fs.create(dir, 20 * 8192).unwrap();
        assert_eq!(fs.n_file_blocks(f).unwrap(), 20);
        let burst = fs.sync();
        // 20 data + 1 indirect + inode + dir = 23.
        assert_eq!(burst.len(), 23);
    }

    #[test]
    fn append_grows_file() {
        let mut fs = rw();
        let (dir, _) = fs.mkdir().unwrap();
        let (f, _) = fs.create(dir, 8192).unwrap();
        fs.sync();
        fs.append(f, 2 * 8192).unwrap();
        assert_eq!(fs.n_file_blocks(f).unwrap(), 3);
        assert_eq!(fs.file_size(f).unwrap(), 3 * 8192);
        let burst = fs.sync();
        assert!(burst.len() >= 3);
    }

    #[test]
    fn delete_frees_space() {
        let mut fs = rw();
        let (dir, _) = fs.mkdir().unwrap();
        let (f, _) = fs.create(dir, 10 * 8192).unwrap();
        fs.sync();
        let free_before = fs.alloc.total_free();
        fs.delete(dir, f).unwrap();
        assert_eq!(fs.alloc.total_free(), free_before + 10);
        assert_eq!(fs.read_file(f).unwrap_err(), FsError::NoSuchFile);
    }

    #[test]
    fn overwrite_bumps_generation() {
        let mut fs = rw();
        let (dir, _) = fs.mkdir().unwrap();
        let (f, _) = fs.create(dir, 8192).unwrap();
        let before = fs.expected_payload(f, 0).unwrap();
        fs.write(f, 0, 1).unwrap();
        let after = fs.expected_payload(f, 0).unwrap();
        assert_ne!(before, after);
    }

    #[test]
    fn files_in_different_dirs_spread_over_groups() {
        let mut fs = rw();
        let (d1, _) = fs.mkdir().unwrap();
        let (d2, _) = fs.mkdir().unwrap();
        let (f1, _) = fs.create(d1, 8192).unwrap();
        let (f2, _) = fs.create(d2, 8192).unwrap();
        let g1 = fs.layout().group_of_block(fs.file_blocks(f1).unwrap()[0]);
        let g2 = fs.layout().group_of_block(fs.file_blocks(f2).unwrap()[0]);
        assert_ne!(g1, g2, "directories should spread across groups");
    }

    #[test]
    fn eof_checks() {
        let mut fs = rw();
        let (dir, _) = fs.mkdir().unwrap();
        let (f, _) = fs.create(dir, 2 * 8192).unwrap();
        assert_eq!(fs.read(f, 1, 2).unwrap_err(), FsError::BeyondEof);
        assert_eq!(fs.write(f, 2, 1).unwrap_err(), FsError::BeyondEof);
        assert!(fs.read(f, 1, 1).is_ok());
    }

    #[test]
    fn request_directions_are_correct() {
        let mut fs = rw();
        let (dir, _) = fs.mkdir().unwrap();
        let (f, _) = fs.create(dir, 8192).unwrap();
        let burst = fs.sync();
        assert!(burst.iter().all(|r| matches!(r.dir, IoDir::Write)));
        // Evict by filling cache, then read.
        let (d2, _) = fs.mkdir().unwrap();
        for _ in 0..40 {
            fs.create(d2, 16 * 1024).unwrap();
        }
        fs.sync();
        let reqs = fs.read_file(f).unwrap();
        assert!(reqs.iter().any(|r| matches!(r.dir, IoDir::Read)));
    }

    #[test]
    fn write_through_emits_data_writes_immediately() {
        let cfg = FsConfig {
            cache_blocks: 64,
            write_through: true,
            ..FsConfig::default()
        };
        let mut fs = FileSystem::newfs(cfg, 120_000, 340);
        let (dir, _) = fs.mkdir().unwrap();
        let (f, reqs) = fs.create(dir, 3 * 8192).unwrap();
        // Data blocks go straight out; metadata stays delayed.
        let writes = reqs.iter().filter(|r| !r.dir.is_read()).count();
        assert_eq!(writes, 3, "three data blocks written through");
        assert!(fs.dirty_blocks() > 0, "inode/dir updates still pending");
        // Overwrites also write through.
        let reqs = fs.write(f, 0, 2).unwrap();
        assert_eq!(reqs.iter().filter(|r| !r.dir.is_read()).count(), 2);
        // Sync flushes only metadata.
        let burst = fs.sync();
        assert!(
            burst.len() <= 3,
            "sync burst {} should be metadata only",
            burst.len()
        );
    }

    #[test]
    fn cold_indirect_block_is_fetched_before_far_reads() {
        let mut fs = small_fs(MountMode::ReadWrite);
        let (dir, _) = fs.mkdir().unwrap();
        let (f, _) = fs.create(dir, 20 * 8192).unwrap(); // needs indirect
        fs.sync();
        // Evict everything.
        let (d2, _) = fs.mkdir().unwrap();
        for _ in 0..40 {
            fs.create(d2, 16 * 1024).unwrap();
        }
        fs.sync();
        // Reading block 15 (beyond the 12 direct pointers) must fetch
        // the indirect block too: at least inode + indirect + data reads.
        let reqs = fs.read(f, 15, 1).unwrap();
        let reads = reqs.iter().filter(|r| r.dir.is_read()).count();
        assert!(
            reads >= 3,
            "expected inode+indirect+data reads, got {reads}"
        );
    }

    #[test]
    fn exact_multiple_of_block_size_has_no_fragment() {
        let mut fs = small_fs(MountMode::ReadWrite);
        let (dir, _) = fs.mkdir().unwrap();
        fs.create(dir, 2 * 8192).unwrap();
        let burst = fs.sync();
        // All data writes are full blocks (16 sectors).
        let sizes: Vec<u32> = burst.iter().map(|r| r.n_sectors).collect();
        assert!(sizes.iter().all(|&n| n == 16), "{sizes:?}");
    }

    #[test]
    fn one_byte_file_occupies_one_fragment() {
        let mut fs = small_fs(MountMode::ReadWrite);
        let (dir, _) = fs.mkdir().unwrap();
        let (f, _) = fs.create(dir, 1).unwrap();
        assert_eq!(fs.n_file_blocks(f).unwrap(), 1);
        let burst = fs.sync();
        // The data write is a single fragment (2 sectors at 1 KB frags).
        assert!(
            burst.iter().any(|r| r.n_sectors == 2),
            "{:?}",
            burst.iter().map(|r| r.n_sectors).collect::<Vec<_>>()
        );
    }

    #[test]
    fn files_in_same_dir_share_inode_blocks() {
        let mut fs = small_fs(MountMode::ReadWrite);
        let (dir, _) = fs.mkdir().unwrap();
        let mut inode_writes = std::collections::HashSet::new();
        for _ in 0..8 {
            fs.create(dir, 1024).unwrap();
        }
        for r in fs.sync() {
            inode_writes.insert(r.sector_in_partition);
        }
        // 8 files + dir block + inode region: far fewer distinct blocks
        // than files, because consecutive inodes share an 8 KB block.
        assert!(
            inode_writes.len() <= 11,
            "{} distinct blocks written",
            inode_writes.len()
        );
    }

    #[test]
    fn free_space_accounting() {
        let mut fs = small_fs(MountMode::ReadWrite);
        let before = fs.free_blocks();
        let (dir, _) = fs.mkdir().unwrap();
        let (f, _) = fs.create(dir, 10 * 8192).unwrap();
        assert_eq!(fs.free_blocks(), before - 11); // 10 data + 1 dir block
        fs.delete(dir, f).unwrap();
        assert_eq!(fs.free_blocks(), before - 1);
        assert!(fs.total_data_blocks() >= before);
    }

    #[test]
    fn state_roundtrip_resumes_cleanly() {
        let mut fs = rw();
        let (dir, _) = fs.mkdir().unwrap();
        let (f, _) = fs.create(dir, 3 * 8192).unwrap();
        fs.write(f, 1, 1).unwrap();
        fs.sync();
        let free = fs.free_blocks();
        let expected = fs.expected_payload(f, 1).unwrap();

        let state = fs.save_state();
        let mut back = FileSystem::load_state(&state).unwrap();
        assert_eq!(back.free_blocks(), free);
        assert_eq!(back.n_file_blocks(f).unwrap(), 3);
        assert_eq!(back.expected_payload(f, 1).unwrap(), expected);
        // The restored fs keeps allocating without clobbering old files.
        let (g, _) = back.create(dir, 8192).unwrap();
        assert!(!back
            .file_blocks(g)
            .unwrap()
            .iter()
            .any(|b| fs.file_blocks(f).unwrap().contains(b)));
    }

    #[test]
    #[should_panic(expected = "sync before saving")]
    fn save_state_rejects_dirty_cache() {
        let mut fs = rw();
        let (dir, _) = fs.mkdir().unwrap();
        fs.create(dir, 8192).unwrap();
        fs.save_state();
    }

    #[test]
    fn zero_byte_file() {
        let mut fs = rw();
        let (dir, _) = fs.mkdir().unwrap();
        let (f, _) = fs.create(dir, 0).unwrap();
        assert_eq!(fs.n_file_blocks(f).unwrap(), 0);
        // Reading it touches only metadata.
        let reqs = fs.read_file(f).unwrap();
        assert!(reqs.len() <= 2);
    }
}
