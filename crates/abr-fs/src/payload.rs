//! Deterministic synthetic block payloads.
//!
//! The reproduction does not keep file contents in memory; instead, the
//! bytes written for any block are a pure function of what the block is
//! (file data at an offset, an i-node block at a generation, ...). A read
//! can then verify end-to-end integrity — through the buffer cache, the
//! driver's remapping, rearrangement cycles, and crash recovery — by
//! recomputing the expected payload.

use bytes::Bytes;

/// What a block holds, for payload synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PayloadTag {
    /// Data block `index` of file `ino`, written `generation` times.
    FileData {
        /// Owning i-node.
        ino: u64,
        /// Block index within the file.
        index: u64,
        /// Write generation (bumped on each overwrite).
        generation: u32,
    },
    /// An i-node region block, at an update generation.
    InodeBlock {
        /// Absolute file-system block number.
        block: u64,
        /// Update generation.
        generation: u32,
    },
    /// A directory block, at an update generation.
    DirBlock {
        /// Directory id.
        dir: u64,
        /// Update generation.
        generation: u32,
    },
    /// The superblock.
    Superblock,
    /// An indirect-pointer block of a file.
    Indirect {
        /// Owning i-node.
        ino: u64,
    },
}

impl PayloadTag {
    /// The generator seed for this tag: [`PayloadTag::bytes`] is exactly
    /// the [`abr_driver::IoRequest::write_seeded`] stream for this seed,
    /// so writes can carry the 8-byte seed instead of a materialized
    /// payload and stay byte-for-byte verifiable.
    pub fn seed(&self) -> u64 {
        match *self {
            PayloadTag::FileData {
                ino,
                index,
                generation,
            } => mix3(0x46, ino, index ^ (u64::from(generation) << 40)),
            PayloadTag::InodeBlock { block, generation } => {
                mix3(0x49, block, u64::from(generation))
            }
            PayloadTag::DirBlock { dir, generation } => mix3(0x44, dir, u64::from(generation)),
            PayloadTag::Superblock => mix3(0x53, 0, 0),
            PayloadTag::Indirect { ino } => mix3(0x58, ino, 0),
        }
    }

    /// Synthesize `len` bytes for this tag (`len` must be a multiple of 8
    /// for the generator's stride; block and fragment sizes always are).
    pub fn bytes(&self, len: usize) -> Bytes {
        let mut out = vec![0u8; len];
        abr_disk::store::fill_seeded(self.seed(), 0, &mut out);
        Bytes::from(out)
    }
}

use abr_sim::rng::splitmix64;

fn mix3(kind: u64, a: u64, b: u64) -> u64 {
    splitmix64(kind ^ splitmix64(a) ^ splitmix64(b).rotate_left(32))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_tag_same_bytes() {
        let t = PayloadTag::FileData {
            ino: 7,
            index: 3,
            generation: 1,
        };
        assert_eq!(t.bytes(8192), t.bytes(8192));
    }

    #[test]
    fn different_tags_differ() {
        let a = PayloadTag::FileData {
            ino: 7,
            index: 3,
            generation: 1,
        }
        .bytes(512);
        let b = PayloadTag::FileData {
            ino: 7,
            index: 4,
            generation: 1,
        }
        .bytes(512);
        let c = PayloadTag::FileData {
            ino: 7,
            index: 3,
            generation: 2,
        }
        .bytes(512);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn kinds_do_not_collide() {
        let d = PayloadTag::DirBlock {
            dir: 5,
            generation: 0,
        }
        .bytes(512);
        let i = PayloadTag::InodeBlock {
            block: 5,
            generation: 0,
        }
        .bytes(512);
        assert_ne!(d, i);
    }

    #[test]
    fn length_respected() {
        assert_eq!(PayloadTag::Superblock.bytes(1024).len(), 1024);
    }
}
