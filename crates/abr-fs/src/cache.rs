//! The buffer cache (§3.1).
//!
//! "All file I/O goes through the buffer cache. ... A read request is
//! forwarded to the disk only in case the block is not found in the
//! cache. ... the system does not immediately write modified blocks back
//! to the disk. Instead, the updated blocks simply remain in the buffer
//! cache. Periodically, all dirty blocks are copied back to the disk."
//!
//! The cache tracks block *presence* and *dirtiness*; actual bytes are
//! synthesized at flush time from the [`crate::payload::PayloadTag`]
//! recorded with each dirty entry. Eviction is LRU; evicting a dirty
//! block emits an immediate writeback.

use crate::payload::PayloadTag;
use std::collections::{BTreeMap, HashMap}; // abr-lint: allow(D001, cache map is keyed lookup; eviction order comes from the lru BTreeMap)

/// A block due to be written to disk: which block, what it holds, and how
/// many sectors of it are valid (fragment-tail writes are sub-block).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Writeback {
    /// File-system block number.
    pub block: u64,
    /// Payload synthesis tag.
    pub tag: PayloadTag,
    /// Sectors to transfer.
    pub n_sectors: u32,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    tick: u64,
    dirty: Option<(PayloadTag, u32)>,
}

/// An LRU buffer cache over file-system blocks.
#[derive(Debug)]
pub struct BufferCache {
    capacity: usize,
    map: HashMap<u64, Entry>, // abr-lint: allow(D001, keyed lookup only; victims picked via lru BTreeMap)
    lru: BTreeMap<u64, u64>,  // tick -> block
    next_tick: u64,
    hits: u64,
    misses: u64,
    /// Blocks in the order they first became dirty since the last flush
    /// (the "buffer table walk" order of the update daemon). May contain
    /// blocks that were since cleaned (evicted/invalidated); flush skips
    /// them.
    dirty_seq: Vec<u64>,
}

impl BufferCache {
    /// A cache holding at most `capacity` blocks.
    ///
    /// # Panics
    /// Panics if capacity is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-capacity cache");
        BufferCache {
            capacity,
            map: HashMap::new(), // abr-lint: allow(D001, keyed lookup only; victims picked via lru BTreeMap)
            lru: BTreeMap::new(),
            next_tick: 0,
            hits: 0,
            misses: 0,
            dirty_seq: Vec::new(),
        }
    }

    /// Blocks currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lifetime (hit, miss) counts.
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Whether a block is resident (does not affect LRU order).
    pub fn contains(&self, block: u64) -> bool {
        self.map.contains_key(&block)
    }

    fn bump(&mut self, block: u64) {
        let tick = self.next_tick;
        self.next_tick += 1;
        if let Some(e) = self.map.get_mut(&block) {
            self.lru.remove(&e.tick);
            e.tick = tick;
            self.lru.insert(tick, block);
        }
    }

    /// Reference a block for reading. Returns `(hit, evicted_writeback)`:
    /// on a miss the block becomes resident (clean) and the LRU block may
    /// be evicted — if it was dirty, its writeback is returned and must be
    /// issued immediately.
    pub fn reference(&mut self, block: u64) -> (bool, Option<Writeback>) {
        if self.map.contains_key(&block) {
            self.hits += 1;
            self.bump(block);
            (true, None)
        } else {
            self.misses += 1;
            let evicted = self.insert(block, None);
            (false, evicted)
        }
    }

    /// Mark a block dirty (insert if absent), recording what to write at
    /// flush time. Returns an eviction writeback if inserting displaced a
    /// dirty block.
    pub fn mark_dirty(&mut self, block: u64, tag: PayloadTag, n_sectors: u32) -> Option<Writeback> {
        if self.map.contains_key(&block) {
            self.bump(block);
            let e = self.map.get_mut(&block).expect("present");
            if e.dirty.is_none() {
                self.dirty_seq.push(block);
            }
            e.dirty = Some((tag, n_sectors));
            None
        } else {
            let evicted = self.insert(block, Some((tag, n_sectors)));
            self.dirty_seq.push(block);
            evicted
        }
    }

    fn insert(&mut self, block: u64, dirty: Option<(PayloadTag, u32)>) -> Option<Writeback> {
        let mut evicted = None;
        if self.map.len() >= self.capacity {
            // Evict the least-recently-used block.
            let (&tick, &victim) = self.lru.iter().next().expect("cache non-empty");
            self.lru.remove(&tick);
            let e = self.map.remove(&victim).expect("present");
            if let Some((tag, n_sectors)) = e.dirty {
                evicted = Some(Writeback {
                    block: victim,
                    tag,
                    n_sectors,
                });
            }
        }
        let tick = self.next_tick;
        self.next_tick += 1;
        self.map.insert(block, Entry { tick, dirty });
        self.lru.insert(tick, block);
        evicted
    }

    /// Drop a block from the cache without writeback (file deletion).
    pub fn invalidate(&mut self, block: u64) {
        if let Some(e) = self.map.remove(&block) {
            self.lru.remove(&e.tick);
        }
    }

    /// The periodic update daemon: collect all dirty blocks, in the order
    /// they first became dirty, and mark them clean. The real `update`
    /// daemon walks the kernel buffer table, whose order has nothing to
    /// do with disk position — so a flush burst hops all over the disk,
    /// which is exactly why the paper's write arrivals have long
    /// arrival-order seek distances.
    pub fn flush_all(&mut self) -> Vec<Writeback> {
        let order = std::mem::take(&mut self.dirty_seq);
        order
            .into_iter()
            .filter_map(|block| {
                let e = self.map.get_mut(&block)?;
                e.dirty.take().map(|(tag, n_sectors)| Writeback {
                    block,
                    tag,
                    n_sectors,
                })
            })
            .collect()
    }

    /// Number of dirty blocks awaiting flush.
    pub fn dirty_count(&self) -> usize {
        self.map.values().filter(|e| e.dirty.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(i: u64) -> PayloadTag {
        PayloadTag::FileData {
            ino: 1,
            index: i,
            generation: 0,
        }
    }

    #[test]
    fn read_miss_then_hit() {
        let mut c = BufferCache::new(4);
        let (hit, ev) = c.reference(10);
        assert!(!hit);
        assert!(ev.is_none());
        let (hit, _) = c.reference(10);
        assert!(hit);
        assert_eq!(c.hit_miss(), (1, 1));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = BufferCache::new(2);
        c.reference(1);
        c.reference(2);
        c.reference(1); // 2 is now LRU
        c.reference(3); // evicts 2
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
    }

    #[test]
    fn dirty_eviction_emits_writeback() {
        let mut c = BufferCache::new(2);
        c.mark_dirty(1, tag(1), 16);
        c.reference(2);
        let (_, ev) = c.reference(3); // evicts dirty block 1
        let w = ev.expect("writeback");
        assert_eq!(w.block, 1);
        assert_eq!(w.n_sectors, 16);
    }

    #[test]
    fn clean_eviction_is_silent() {
        let mut c = BufferCache::new(1);
        c.reference(1);
        let (_, ev) = c.reference(2);
        assert!(ev.is_none());
    }

    #[test]
    fn flush_all_returns_dirtying_order_and_cleans() {
        let mut c = BufferCache::new(8);
        c.mark_dirty(5, tag(5), 16);
        c.mark_dirty(2, tag(2), 16);
        c.mark_dirty(9, tag(9), 2);
        assert_eq!(c.dirty_count(), 3);
        let flushed = c.flush_all();
        assert_eq!(
            flushed.iter().map(|w| w.block).collect::<Vec<_>>(),
            vec![5, 2, 9]
        );
        assert_eq!(c.dirty_count(), 0);
        // Blocks stay resident after flush.
        assert!(c.contains(5));
        assert!(c.flush_all().is_empty());
    }

    #[test]
    fn mark_dirty_overwrites_tag() {
        let mut c = BufferCache::new(4);
        c.mark_dirty(1, tag(1), 16);
        c.mark_dirty(1, tag(2), 16);
        let flushed = c.flush_all();
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].tag, tag(2));
    }

    #[test]
    fn invalidate_drops_without_writeback() {
        let mut c = BufferCache::new(4);
        c.mark_dirty(1, tag(1), 16);
        c.invalidate(1);
        assert!(!c.contains(1));
        assert!(c.flush_all().is_empty());
    }

    #[test]
    fn dirty_read_hit_stays_dirty() {
        let mut c = BufferCache::new(4);
        c.mark_dirty(1, tag(1), 16);
        let (hit, _) = c.reference(1);
        assert!(hit);
        assert_eq!(c.dirty_count(), 1);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = BufferCache::new(3);
        for b in 0..100 {
            c.reference(b);
            assert!(c.len() <= 3);
        }
    }
}
