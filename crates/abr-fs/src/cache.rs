//! The buffer cache (§3.1).
//!
//! "All file I/O goes through the buffer cache. ... A read request is
//! forwarded to the disk only in case the block is not found in the
//! cache. ... the system does not immediately write modified blocks back
//! to the disk. Instead, the updated blocks simply remain in the buffer
//! cache. Periodically, all dirty blocks are copied back to the disk."
//!
//! The cache tracks block *presence* and *dirtiness*; actual bytes are
//! synthesized at flush time from the [`crate::payload::PayloadTag`]
//! recorded with each dirty entry. Eviction is LRU; evicting a dirty
//! block emits an immediate writeback.
//!
//! Internally the recency order is an intrusive doubly-linked list over a
//! slab of entries, with a block → slot map on the side: referencing a
//! resident block unlinks and relinks one node (O(1)) instead of
//! reshuffling an ordered structure, and slots are recycled through a
//! free list so a warmed-up cache performs no allocation at all.

use crate::payload::PayloadTag;
use abr_sim::hash::FastMap; // abr-lint: allow(D001, cache map is keyed lookup; eviction order comes from the intrusive lru list)

/// A block due to be written to disk: which block, what it holds, and how
/// many sectors of it are valid (fragment-tail writes are sub-block).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Writeback {
    /// File-system block number.
    pub block: u64,
    /// Payload synthesis tag.
    pub tag: PayloadTag,
    /// Sectors to transfer.
    pub n_sectors: u32,
}

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    block: u64,
    /// Toward the LRU end.
    prev: u32,
    /// Toward the MRU end.
    next: u32,
    dirty: Option<(PayloadTag, u32)>,
}

/// An LRU buffer cache over file-system blocks.
#[derive(Debug)]
pub struct BufferCache {
    capacity: usize,
    map: FastMap<u64, u32>, // abr-lint: allow(D001, keyed lookup only; victims picked via the lru list)
    nodes: Vec<Node>,
    free: Vec<u32>,
    /// Least-recently-used node (eviction victim), `NIL` when empty.
    head: u32,
    /// Most-recently-used node, `NIL` when empty.
    tail: u32,
    hits: u64,
    misses: u64,
    /// Blocks in the order they first became dirty since the last flush
    /// (the "buffer table walk" order of the update daemon). May contain
    /// blocks that were since cleaned (evicted/invalidated); flush skips
    /// them.
    dirty_seq: Vec<u64>,
}

impl BufferCache {
    /// A cache holding at most `capacity` blocks.
    ///
    /// # Panics
    /// Panics if capacity is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-capacity cache");
        BufferCache {
            capacity,
            map: FastMap::default(), // abr-lint: allow(D001, keyed lookup only; victims picked via the lru list)
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
            dirty_seq: Vec::new(),
        }
    }

    /// Blocks currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lifetime (hit, miss) counts.
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Whether a block is resident (does not affect LRU order).
    pub fn contains(&self, block: u64) -> bool {
        self.map.contains_key(&block)
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let n = &self.nodes[idx as usize];
            (n.prev, n.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next as usize].prev = prev;
        }
    }

    fn link_mru(&mut self, idx: u32) {
        self.nodes[idx as usize].prev = self.tail;
        self.nodes[idx as usize].next = NIL;
        if self.tail == NIL {
            self.head = idx;
        } else {
            self.nodes[self.tail as usize].next = idx;
        }
        self.tail = idx;
    }

    /// Reference a block for reading. Returns `(hit, evicted_writeback)`:
    /// on a miss the block becomes resident (clean) and the LRU block may
    /// be evicted — if it was dirty, its writeback is returned and must be
    /// issued immediately.
    pub fn reference(&mut self, block: u64) -> (bool, Option<Writeback>) {
        if let Some(&idx) = self.map.get(&block) {
            self.hits += 1;
            self.unlink(idx);
            self.link_mru(idx);
            (true, None)
        } else {
            self.misses += 1;
            let evicted = self.insert(block, None);
            (false, evicted)
        }
    }

    /// Mark a block dirty (insert if absent), recording what to write at
    /// flush time. Returns an eviction writeback if inserting displaced a
    /// dirty block.
    pub fn mark_dirty(&mut self, block: u64, tag: PayloadTag, n_sectors: u32) -> Option<Writeback> {
        if let Some(&idx) = self.map.get(&block) {
            self.unlink(idx);
            self.link_mru(idx);
            let n = &mut self.nodes[idx as usize];
            if n.dirty.is_none() {
                self.dirty_seq.push(block);
            }
            n.dirty = Some((tag, n_sectors));
            None
        } else {
            let evicted = self.insert(block, Some((tag, n_sectors)));
            self.dirty_seq.push(block);
            evicted
        }
    }

    fn insert(&mut self, block: u64, dirty: Option<(PayloadTag, u32)>) -> Option<Writeback> {
        let mut evicted = None;
        if self.map.len() >= self.capacity {
            // Evict the least-recently-used block.
            let victim = self.head;
            self.unlink(victim);
            let n = self.nodes[victim as usize];
            self.map.remove(&n.block);
            self.free.push(victim);
            if let Some((tag, n_sectors)) = n.dirty {
                evicted = Some(Writeback {
                    block: n.block,
                    tag,
                    n_sectors,
                });
            }
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = Node {
                    block,
                    prev: NIL,
                    next: NIL,
                    dirty,
                };
                i
            }
            None => {
                let i = u32::try_from(self.nodes.len()).expect("cache slots fit in u32");
                self.nodes.push(Node {
                    block,
                    prev: NIL,
                    next: NIL,
                    dirty,
                });
                i
            }
        };
        self.link_mru(idx);
        self.map.insert(block, idx);
        evicted
    }

    /// Drop a block from the cache without writeback (file deletion).
    pub fn invalidate(&mut self, block: u64) {
        if let Some(idx) = self.map.remove(&block) {
            self.unlink(idx);
            self.free.push(idx);
        }
    }

    /// The periodic update daemon: collect all dirty blocks, in the order
    /// they first became dirty, and mark them clean. The real `update`
    /// daemon walks the kernel buffer table, whose order has nothing to
    /// do with disk position — so a flush burst hops all over the disk,
    /// which is exactly why the paper's write arrivals have long
    /// arrival-order seek distances.
    pub fn flush_all(&mut self) -> Vec<Writeback> {
        let order = std::mem::take(&mut self.dirty_seq);
        order
            .into_iter()
            .filter_map(|block| {
                let &idx = self.map.get(&block)?;
                let n = &mut self.nodes[idx as usize];
                n.dirty.take().map(|(tag, n_sectors)| Writeback {
                    block,
                    tag,
                    n_sectors,
                })
            })
            .collect()
    }

    /// Number of dirty blocks awaiting flush.
    pub fn dirty_count(&self) -> usize {
        self.map
            .values()
            .filter(|&&idx| self.nodes[idx as usize].dirty.is_some())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(i: u64) -> PayloadTag {
        PayloadTag::FileData {
            ino: 1,
            index: i,
            generation: 0,
        }
    }

    #[test]
    fn read_miss_then_hit() {
        let mut c = BufferCache::new(4);
        let (hit, ev) = c.reference(10);
        assert!(!hit);
        assert!(ev.is_none());
        let (hit, _) = c.reference(10);
        assert!(hit);
        assert_eq!(c.hit_miss(), (1, 1));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = BufferCache::new(2);
        c.reference(1);
        c.reference(2);
        c.reference(1); // 2 is now LRU
        c.reference(3); // evicts 2
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
    }

    #[test]
    fn dirty_eviction_emits_writeback() {
        let mut c = BufferCache::new(2);
        c.mark_dirty(1, tag(1), 16);
        c.reference(2);
        let (_, ev) = c.reference(3); // evicts dirty block 1
        let w = ev.expect("writeback");
        assert_eq!(w.block, 1);
        assert_eq!(w.n_sectors, 16);
    }

    #[test]
    fn clean_eviction_is_silent() {
        let mut c = BufferCache::new(1);
        c.reference(1);
        let (_, ev) = c.reference(2);
        assert!(ev.is_none());
    }

    #[test]
    fn flush_all_returns_dirtying_order_and_cleans() {
        let mut c = BufferCache::new(8);
        c.mark_dirty(5, tag(5), 16);
        c.mark_dirty(2, tag(2), 16);
        c.mark_dirty(9, tag(9), 2);
        assert_eq!(c.dirty_count(), 3);
        let flushed = c.flush_all();
        assert_eq!(
            flushed.iter().map(|w| w.block).collect::<Vec<_>>(),
            vec![5, 2, 9]
        );
        assert_eq!(c.dirty_count(), 0);
        // Blocks stay resident after flush.
        assert!(c.contains(5));
        assert!(c.flush_all().is_empty());
    }

    #[test]
    fn mark_dirty_overwrites_tag() {
        let mut c = BufferCache::new(4);
        c.mark_dirty(1, tag(1), 16);
        c.mark_dirty(1, tag(2), 16);
        let flushed = c.flush_all();
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].tag, tag(2));
    }

    #[test]
    fn invalidate_drops_without_writeback() {
        let mut c = BufferCache::new(4);
        c.mark_dirty(1, tag(1), 16);
        c.invalidate(1);
        assert!(!c.contains(1));
        assert!(c.flush_all().is_empty());
    }

    #[test]
    fn dirty_read_hit_stays_dirty() {
        let mut c = BufferCache::new(4);
        c.mark_dirty(1, tag(1), 16);
        let (hit, _) = c.reference(1);
        assert!(hit);
        assert_eq!(c.dirty_count(), 1);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = BufferCache::new(3);
        for b in 0..100 {
            c.reference(b);
            assert!(c.len() <= 3);
        }
    }

    #[test]
    fn slots_recycle_without_growth() {
        let mut c = BufferCache::new(4);
        for b in 0..1000 {
            c.reference(b);
        }
        // The slab never grows past capacity: victims' slots are reused.
        assert_eq!(c.nodes.len(), 4);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn invalidated_slot_is_reused() {
        let mut c = BufferCache::new(8);
        c.reference(1);
        c.reference(2);
        c.invalidate(1);
        c.reference(3); // takes 1's slot
        assert_eq!(c.nodes.len(), 2);
        assert!(c.contains(2));
        assert!(c.contains(3));
    }

    #[test]
    fn mixed_workout_matches_naive_model() {
        // Cross-check list-based LRU against a simple vector model.
        let mut c = BufferCache::new(4);
        let mut model: Vec<u64> = Vec::new(); // front = LRU
        let mut x = 0x12345u64;
        for _ in 0..2000 {
            x = abr_sim::rng::splitmix64(x);
            let block = x % 12;
            if x.is_multiple_of(7) && !model.is_empty() {
                let victim = model[(x % model.len() as u64) as usize];
                c.invalidate(victim);
                model.retain(|&b| b != victim);
                continue;
            }
            let (hit, _) = c.reference(block);
            let modeled_hit = model.contains(&block);
            assert_eq!(hit, modeled_hit, "block {block}");
            model.retain(|&b| b != block);
            model.push(block);
            if model.len() > 4 {
                model.remove(0);
            }
            assert_eq!(c.len(), model.len());
        }
    }
}
