//! Block and i-node allocation with FFS-style placement.
//!
//! Placement policy (after McKusick et al. 1984, as modelled for this
//! reproduction):
//!
//! * a new directory goes to the group with the most free blocks (spreads
//!   directories — and thus unrelated files — across the disk);
//! * a file's i-node goes in its directory's group;
//! * a file's first data block goes in its i-node's group; each successive
//!   block is placed `interleave + 1` blocks past the previous one when
//!   free ("interleaved by gaps"), falling back to the nearest free block
//!   in the group, then to subsequent groups.

use crate::layout::FsLayout;

/// Free-space tracking and placement for one file system.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Allocator {
    layout: FsLayout,
    /// Per-group free data-block bitmaps (true = free).
    free: Vec<Vec<bool>>,
    /// Per-group free block counts.
    free_count: Vec<u64>,
    /// Per-group i-node allocation state (next free index; i-nodes are
    /// never reused in this model, which is fine for day-length runs).
    next_inode: Vec<u64>,
    /// Directories placed in each group (for the FFS directory-placement
    /// policy).
    dirs_per_group: Vec<u32>,
}

impl Allocator {
    /// A fresh allocator with all data blocks free.
    pub fn new(layout: FsLayout) -> Self {
        let n_groups = layout.n_groups() as usize;
        let dbpg = layout.data_blocks_per_group() as usize;
        Allocator {
            layout,
            free: vec![vec![true; dbpg]; n_groups],
            free_count: vec![dbpg as u64; n_groups],
            next_inode: vec![0; n_groups],
            dirs_per_group: vec![0; n_groups],
        }
    }

    /// Total free data blocks.
    pub fn total_free(&self) -> u64 {
        self.free_count.iter().sum()
    }

    /// Free blocks in one group.
    pub fn group_free(&self, g: u64) -> u64 {
        self.free_count[g as usize]
    }

    /// The group with the most free blocks (for new directories).
    pub fn emptiest_group(&self) -> u64 {
        self.free_count
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(g, _)| g as u64)
            .expect("at least one group")
    }

    /// Choose a cylinder group for a *new directory*, per the FFS policy
    /// (McKusick 84): among groups with at least average free space, the
    /// one holding the fewest directories (lowest group number on ties).
    /// This spreads unrelated directories — and thus their files — across
    /// the whole disk surface, which is why hot blocks end up far apart.
    pub fn alloc_dir_group(&mut self) -> u64 {
        let avg = self.total_free() / self.free_count.len() as u64;
        let g = self
            .free_count
            .iter()
            .enumerate()
            .filter(|(_, &c)| c >= avg && c > 0)
            .min_by_key(|(g, _)| (self.dirs_per_group[*g], *g))
            .map(|(g, _)| g)
            .unwrap_or_else(|| {
                // Degenerate (nearly full): fall back to the emptiest.
                self.emptiest_group() as usize
            });
        self.dirs_per_group[g] += 1;
        g as u64
    }

    /// Allocate an i-node in (or near) group `g`. Returns the i-node
    /// number, or `None` if every group's i-node region is exhausted.
    pub fn alloc_inode(&mut self, g: u64) -> Option<u64> {
        let n = self.layout.n_groups();
        let ipg = self.layout.inodes_per_group();
        (0..n).map(|d| (g + d) % n).find_map(|cand| {
            let next = &mut self.next_inode[cand as usize];
            (*next < ipg).then(|| {
                let ino = cand * ipg + *next;
                *next += 1;
                ino
            })
        })
    }

    /// Absolute block number of data-block index `i` in group `g`.
    fn abs_block(&self, g: u64, i: usize) -> u64 {
        self.layout.group_data_start(g) + i as u64
    }

    /// Data-block index of an absolute block within its group, if it is a
    /// data block.
    fn data_index(&self, block: u64) -> Option<(u64, usize)> {
        let g = self.layout.group_of_block(block)?;
        let ds = self.layout.group_data_start(g);
        (block >= ds).then(|| (g, (block - ds) as usize))
    }

    /// Allocate a block for a file. `prev` is the file's previously
    /// allocated block (for rotational interleaving); `group_hint` is the
    /// i-node's group, used when `prev` is `None`.
    ///
    /// Returns `None` when the file system is full.
    pub fn alloc_block(&mut self, group_hint: u64, prev: Option<u64>) -> Option<u64> {
        // Rotationally optimal: interleave+1 past the previous block.
        if let Some(p) = prev {
            let want = p + self.layout.interleave + 1;
            if let Some((g, i)) = self.data_index(want) {
                if self.free[g as usize][i] {
                    return Some(self.take(g, i));
                }
            }
            // Fall back to the nearest free block after `prev` in its
            // group.
            if let Some((g, pi)) = self.data_index(p) {
                let bitmap = &self.free[g as usize];
                if let Some(i) = (pi + 1..bitmap.len()).find(|&i| bitmap[i]) {
                    return Some(self.take(g, i));
                }
            }
        }
        // First block (or group exhausted): first free block in the hint
        // group, then subsequent groups.
        let n = self.layout.n_groups();
        (0..n).map(|d| (group_hint + d) % n).find_map(|g| {
            let bitmap = &self.free[g as usize];
            bitmap.iter().position(|&f| f).map(|i| self.take(g, i))
        })
    }

    fn take(&mut self, g: u64, i: usize) -> u64 {
        debug_assert!(self.free[g as usize][i]);
        self.free[g as usize][i] = false;
        self.free_count[g as usize] -= 1;
        self.abs_block(g, i)
    }

    /// Free a previously allocated block.
    ///
    /// # Panics
    /// Panics if the block is not an allocated data block (double free or
    /// metadata block).
    pub fn free_block(&mut self, block: u64) {
        let (g, i) = self.data_index(block).expect("freeing a non-data block");
        assert!(!self.free[g as usize][i], "double free of block {block}");
        self.free[g as usize][i] = true;
        self.free_count[g as usize] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> FsLayout {
        FsLayout::new(120_000, 340, 8192, 1024, 16, 1)
    }

    #[test]
    fn fresh_allocator_all_free() {
        let a = Allocator::new(layout());
        let l = layout();
        assert_eq!(a.total_free(), l.n_groups() * l.data_blocks_per_group());
    }

    #[test]
    fn interleaved_allocation_leaves_gaps() {
        let mut a = Allocator::new(layout());
        let b0 = a.alloc_block(0, None).unwrap();
        let b1 = a.alloc_block(0, Some(b0)).unwrap();
        let b2 = a.alloc_block(0, Some(b1)).unwrap();
        // interleave = 1: successive blocks 2 apart.
        assert_eq!(b1, b0 + 2);
        assert_eq!(b2, b1 + 2);
    }

    #[test]
    fn fallback_fills_gaps_when_target_taken() {
        let mut a = Allocator::new(layout());
        let b0 = a.alloc_block(0, None).unwrap();
        let b1 = a.alloc_block(0, Some(b0)).unwrap();
        // A second file starting in the same group takes the gap block.
        let c0 = a.alloc_block(0, None).unwrap();
        assert_eq!(c0, b0 + 1);
        // Its next "interleaved" target (c0+2 = b1+1) is free.
        let c1 = a.alloc_block(0, Some(c0)).unwrap();
        assert_eq!(c1, b1 + 1);
    }

    #[test]
    fn allocation_respects_group_hint() {
        let mut a = Allocator::new(layout());
        let l = layout();
        let b = a.alloc_block(3, None).unwrap();
        assert_eq!(l.group_of_block(b), Some(3));
        assert!(b >= l.group_data_start(3));
    }

    #[test]
    fn spills_to_next_group_when_full() {
        let l = layout();
        let mut a = Allocator::new(l);
        let dbpg = l.data_blocks_per_group();
        for _ in 0..dbpg {
            a.alloc_block(0, None).unwrap();
        }
        assert_eq!(a.group_free(0), 0);
        let b = a.alloc_block(0, None).unwrap();
        assert_eq!(l.group_of_block(b), Some(1));
    }

    #[test]
    fn free_and_realloc() {
        let mut a = Allocator::new(layout());
        let b = a.alloc_block(0, None).unwrap();
        let before = a.total_free();
        a.free_block(b);
        assert_eq!(a.total_free(), before + 1);
        assert_eq!(a.alloc_block(0, None).unwrap(), b);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = Allocator::new(layout());
        let b = a.alloc_block(0, None).unwrap();
        a.free_block(b);
        a.free_block(b);
    }

    #[test]
    fn inode_allocation_by_group() {
        let l = layout();
        let mut a = Allocator::new(l);
        let i0 = a.alloc_inode(2).unwrap();
        assert_eq!(l.group_of_inode(i0), 2);
        let i1 = a.alloc_inode(2).unwrap();
        assert_eq!(i1, i0 + 1);
    }

    #[test]
    fn inode_spills_when_group_full() {
        let l = layout();
        let mut a = Allocator::new(l);
        for _ in 0..l.inodes_per_group() {
            a.alloc_inode(0).unwrap();
        }
        let spilled = a.alloc_inode(0).unwrap();
        assert_eq!(l.group_of_inode(spilled), 1);
    }

    #[test]
    fn emptiest_group_prefers_free_space() {
        let l = layout();
        let mut a = Allocator::new(l);
        // Drain most of group 0.
        for _ in 0..l.data_blocks_per_group() - 1 {
            a.alloc_block(0, None).unwrap();
        }
        assert_ne!(a.emptiest_group(), 0);
    }

    #[test]
    fn exhaustion_returns_none() {
        let l = FsLayout::new(1600, 64, 4096, 1024, 4, 0);
        let mut a = Allocator::new(l);
        while a.alloc_block(0, None).is_some() {}
        assert_eq!(a.total_free(), 0);
        assert!(a.alloc_block(0, None).is_none());
    }
}
