//! Serving-front-end experiments (extension; `experiments serve`).
//!
//! The rest of the suite replays closed traces. This family puts the
//! `abr-serve` front end — open-loop clients, token-bucket admission,
//! DRR dispatch — over three volume shapes and sweeps the client count
//! and arrival rate:
//!
//! * HDD-only: one whole-disk member, no rearrangement;
//! * reserved-region: one adaptive member running the paper's
//!   between-epoch rearrangement protocol;
//! * array: four striped members (256 and 4096 clients).
//!
//! Two cells exercise the failure modes the front end exists for: an
//! overload cell (offered load ≈ 4× the spindle's service rate) that
//! must shed with a bounded queue and no starved client, and a degraded
//! mirror cell (whole-disk death + hot-spare replacement) that must
//! keep serving with zero lost blocks. Both assert in-process, so the
//! sweep itself is a regression gate. The `serve-smoke` id is a single
//! small adaptive overload cell for the CI byte-identity job.

use crate::engine::UnknownId;
use crate::report::Report;
use abr_array::{Redundancy, StripePolicy};
use abr_disk::fault::FaultPlan;
use abr_disk::models;
use abr_serve::{ServeConfig, ServeExperiment, ServeSummary};
use abr_sim::{jsn, JsonValue, SimDuration, SimTime};

/// Serving experiment ids, in listing order.
pub fn serve_ids() -> &'static [&'static str] {
    &["serve", "serve-smoke"]
}

/// Which in-process gate a cell carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CellKind {
    /// Plain sweep point: accounting must balance, nothing may strand.
    Normal,
    /// Overload: must shed with a bounded queue and stay fair.
    Overload,
    /// Degraded redundant volume: must keep serving, zero lost blocks.
    Degraded,
}

/// One serving cell: a named configuration plus its gate.
struct Cell {
    name: &'static str,
    kind: CellKind,
    config: ServeConfig,
}

/// The sweep: volume shape × client count, then the two gate cells.
fn sweep_cells() -> Vec<Cell> {
    let mut cells = Vec::new();
    let base = |n_clients: usize, rate: f64| {
        let mut c = ServeConfig::new(models::toshiba_mk156f());
        c.n_clients = n_clients;
        c.aggregate_rate_per_sec = rate;
        c.seed = 0x5E17E ^ ((n_clients as u64) << 16);
        c
    };
    // HDD-only: one whole-disk member, moderate load (~half capacity).
    for n_clients in [16usize, 256] {
        cells.push(Cell {
            name: if n_clients == 16 {
                "hdd-16c"
            } else {
                "hdd-256c"
            },
            kind: CellKind::Normal,
            config: base(n_clients, 15.0),
        });
    }
    // Reserved-region: the paper's adaptive protocol between epochs.
    for n_clients in [16usize, 256] {
        let mut c = base(n_clients, 15.0);
        c.reserved_cylinders = 48;
        c.place_blocks = 512;
        c.epochs = 2;
        cells.push(Cell {
            name: if n_clients == 16 {
                "adaptive-16c"
            } else {
                "adaptive-256c"
            },
            kind: CellKind::Normal,
            config: c,
        });
    }
    // Array: four striped members at the same per-spindle rate; the
    // 4096-client cell stresses the client-population structures.
    {
        let mut c = base(256, 60.0);
        c.n_disks = 4;
        cells.push(Cell {
            name: "array4-256c",
            kind: CellKind::Normal,
            config: c,
        });
        let mut c = base(4096, 60.0);
        c.n_disks = 4;
        c.epoch = SimDuration::from_mins(5);
        cells.push(Cell {
            name: "array4-4096c",
            kind: CellKind::Normal,
            config: c,
        });
    }
    // Overload: ~4× the spindle's service rate, buckets generous enough
    // that the queue bound (not the buckets) does the shedding.
    {
        let mut c = base(32, 120.0);
        c.bucket_rate_per_sec = 16.0;
        c.bucket_burst = 32;
        c.accept_queue_cap = 256;
        c.epoch = SimDuration::from_mins(5);
        cells.push(Cell {
            name: "hdd-overload",
            kind: CellKind::Overload,
            config: c,
        });
    }
    // Degraded mirror: the copy member dies mid-epoch, its hot spare
    // arrives five minutes later, and serving must not miss a beat.
    {
        let mut c = base(32, 25.0);
        c.n_disks = 2;
        c.redundancy = Redundancy::Mirror;
        c.stripe = StripePolicy::Striped { chunk_blocks: 8 };
        c.fault_plans = vec![
            None,
            Some(FaultPlan::disk_death(
                SimTime::ZERO + SimDuration::from_mins(2),
                SimDuration::from_mins(5),
            )),
        ];
        c.epoch = SimDuration::from_mins(15);
        cells.push(Cell {
            name: "mirror-degraded",
            kind: CellKind::Degraded,
            config: c,
        });
    }
    cells
}

/// The CI smoke cell: a tiny adaptive member pushed into overload, two
/// epochs so rearrangement runs, small enough for every CI pass.
fn smoke_cell() -> Cell {
    let mut c = ServeConfig::new(models::tiny_test_disk());
    c.n_clients = 8;
    c.aggregate_rate_per_sec = 120.0;
    c.bucket_rate_per_sec = 20.0;
    c.bucket_burst = 16;
    c.accept_queue_cap = 64;
    c.working_set_blocks = 64;
    c.reserved_cylinders = 10;
    c.place_blocks = 32;
    c.monitor_period = SimDuration::from_secs(10);
    c.epoch = SimDuration::from_secs(30);
    c.epochs = 2;
    c.max_inflight = 4;
    c.seed = 0x5E17E;
    Cell {
        name: "smoke-overload",
        kind: CellKind::Overload,
        config: c,
    }
}

/// Run one cell and append its row. Each cell starts from a clean
/// registry/day-series boundary so its quantiles and day points are its
/// own; the run-level snapshot the engine harvests afterwards therefore
/// reflects the *last* cell — the per-cell rows below carry the data.
fn run_cell(cell: &Cell, r: &mut Report) -> JsonValue {
    eprintln!("  running serve cell {}...", cell.name);
    abr_obs::registry_clear();
    abr_obs::day_series_reset();
    let mut e = ServeExperiment::new(cell.config.clone());
    let s = e.run();
    let health = e.health();
    let lost = health.total_lost();
    let snap = abr_obs::registry_snapshot();
    let q = |metric: &str, p: &str| snap["hires"][metric]["quantiles"][p].as_u64().unwrap_or(0);
    let fairness = s.fairness_ratio();
    r.line(format!(
        "{:15} | arr {:6} acc {:6} shed {:5} thr {:5} | done {:6} err {:3} | qmax {:3} \
         | req p50 {:6} p999 {:7} us | fair {:4.2}",
        cell.name,
        s.arrivals,
        s.accepted,
        s.shed,
        s.throttled,
        s.completed,
        s.errors,
        s.queue_depth_max,
        q("serve.request_us", "p50"),
        q("serve.request_us", "p999"),
        fairness,
    ));
    check_cell(cell, &s, lost, &snap);
    jsn!({
        "cell": cell.name,
        "n_disks": cell.config.n_disks,
        "n_clients": cell.config.n_clients,
        "rate_per_sec": cell.config.aggregate_rate_per_sec,
        "reserved_cylinders": cell.config.reserved_cylinders,
        "redundancy": cell.config.redundancy.name(),
        "epochs": cell.config.epochs,
        "arrivals": s.arrivals,
        "accepted": s.accepted,
        "shed": s.shed,
        "throttled": s.throttled,
        "completed": s.completed,
        "errors": s.errors,
        "stranded": s.stranded,
        "queue_depth_max": s.queue_depth_max,
        "blocks_placed": s.placed,
        "lost_blocks": lost,
        "fairness_ratio": fairness,
        "request_us_p50": q("serve.request_us", "p50"),
        "request_us_p99": q("serve.request_us", "p99"),
        "request_us_p999": q("serve.request_us", "p999"),
        "queue_us_p50": q("serve.queue_us", "p50"),
        "queue_us_p99": q("serve.queue_us", "p99"),
    })
}

/// The per-cell gates. Every cell's admission and service accounting
/// must balance exactly; the overload and degraded cells additionally
/// carry the acceptance criteria from the front end's contract.
fn check_cell(cell: &Cell, s: &ServeSummary, lost: u64, snap: &JsonValue) {
    assert_eq!(
        s.arrivals,
        s.accepted + s.shed + s.throttled,
        "{}: every arrival must be accepted, shed, or throttled",
        cell.name
    );
    assert_eq!(
        s.accepted,
        s.completed + s.errors + s.stranded,
        "{}: every accepted request must complete, error, or strand",
        cell.name
    );
    assert!(s.completed > 0, "{}: the server served nothing", cell.name);
    assert!(
        s.queue_depth_max <= cell.config.accept_queue_cap as u64,
        "{}: accept queue exceeded its bound ({} > {})",
        cell.name,
        s.queue_depth_max,
        cell.config.accept_queue_cap
    );
    match cell.kind {
        CellKind::Normal => {
            assert_eq!(
                s.stranded, 0,
                "{}: healthy volume stranded requests",
                cell.name
            );
        }
        CellKind::Overload => {
            assert!(s.shed > 0, "{}: overload must shed", cell.name);
            let p999 = snap["hires"]["serve.request_us"]["quantiles"]["p999"].as_u64();
            assert!(
                p999.is_some_and(|v| v > 0),
                "{}: p999 request latency missing from the registry",
                cell.name
            );
            let fairness = s.fairness_ratio();
            assert!(
                fairness <= 2.0,
                "{}: a client starved under DRR (max/min completions {fairness:.2} > 2)",
                cell.name
            );
        }
        CellKind::Degraded => {
            assert_eq!(s.errors, 0, "{}: mirror failed user requests", cell.name);
            assert_eq!(s.stranded, 0, "{}: mirror stranded requests", cell.name);
            assert_eq!(
                lost, 0,
                "{}: mirror lost blocks under a single death",
                cell.name
            );
        }
    }
}

/// Run a serving experiment by id.
pub fn run_serve(id: &str) -> Result<Report, UnknownId> {
    let (cells, mut r) = match id {
        "serve" => (
            sweep_cells(),
            Report::new(
                "serve",
                "Serving front end: admission control, backpressure, DRR fairness (extension)",
            ),
        ),
        "serve-smoke" => (
            vec![smoke_cell()],
            Report::new(
                "serve-smoke",
                "Serving smoke cell: tiny adaptive member under overload (CI gate)",
            ),
        ),
        other => return Err(UnknownId::new(other)),
    };
    let mut rows = Vec::new();
    for cell in &cells {
        rows.push(run_cell(cell, &mut r));
    }
    if id == "serve" {
        r.blank();
        r.line("expected shape: moderate-load cells accept everything; the overload cell sheds");
        r.line("with a bounded queue and a max/min per-client completion ratio <= 2; the degraded");
        r.line("mirror serves every request with zero lost blocks through death and replacement.");
    }
    r.json = jsn!({ "rows": rows });
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_registered() {
        assert_eq!(serve_ids(), &["serve", "serve-smoke"]);
    }

    #[test]
    fn unknown_serve_id_is_typed() {
        assert_eq!(run_serve("serve-99").unwrap_err().id, "serve-99");
    }

    #[test]
    fn sweep_covers_all_three_fronts_and_both_gates() {
        let cells = sweep_cells();
        assert!(cells
            .iter()
            .any(|c| c.config.n_disks == 1 && c.config.reserved_cylinders == 0));
        assert!(cells.iter().any(|c| c.config.reserved_cylinders > 0));
        assert!(cells.iter().any(|c| c.config.n_disks == 4));
        assert!(cells.iter().any(|c| c.kind == CellKind::Overload));
        assert!(cells.iter().any(|c| c.kind == CellKind::Degraded));
        let clients: std::collections::HashSet<usize> =
            cells.iter().map(|c| c.config.n_clients).collect();
        assert!(clients.contains(&16) && clients.contains(&256) && clients.contains(&4096));
    }

    #[test]
    fn smoke_cell_runs_its_gates() {
        let mut r = Report::new("serve-smoke", "test");
        let row = run_cell(&smoke_cell(), &mut r);
        assert!(row["shed"].as_u64().unwrap_or(0) > 0);
        assert_eq!(row["lost_blocks"].as_u64(), Some(0));
        assert!(row["blocks_placed"].as_u64().unwrap_or(0) > 0);
    }
}
