//! Experiment report collection and formatting.

use abr_sim::JsonValue;
use std::fmt::Write as _;
use std::path::Path;

/// The output of one experiment regenerator: human-readable text plus a
/// JSON value for machine use.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id (`table2`, `fig8`, ...).
    pub id: &'static str,
    /// One-line title.
    pub title: &'static str,
    /// The formatted report body.
    pub text: String,
    /// Machine-readable results.
    pub json: JsonValue,
    /// Plot-ready CSV companions: `(file name, contents)` pairs saved
    /// next to the report (for the paper's figures).
    pub csv: Vec<(String, String)>,
}

impl Report {
    /// Start a report.
    pub fn new(id: &'static str, title: &'static str) -> Self {
        let mut text = String::new();
        let _ = writeln!(text, "== {id}: {title} ==");
        Report {
            id,
            title,
            text,
            json: JsonValue::Null,
            csv: Vec::new(),
        }
    }

    /// Attach a CSV companion file.
    pub fn attach_csv(&mut self, name: impl Into<String>, contents: String) {
        self.csv.push((name.into(), contents));
    }

    /// Append a line to the body.
    pub fn line(&mut self, s: impl AsRef<str>) {
        self.text.push_str(s.as_ref());
        self.text.push('\n');
    }

    /// Append a blank line.
    pub fn blank(&mut self) {
        self.text.push('\n');
    }

    /// Write `results/<id>.txt` and `results/<id>.json` under `dir`.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{}.txt", self.id)), &self.text)?;
        std::fs::write(dir.join(format!("{}.json", self.id)), self.json.pretty())?;
        for (name, contents) in &self.csv {
            std::fs::write(dir.join(name), contents)?;
        }
        Ok(())
    }
}

/// Format a `min avg max` triple of daily means (the shape of the
/// paper's summary rows), via [`abr_sim::Summary`].
pub fn triple(values: &[f64]) -> String {
    let s: abr_sim::Summary = values.iter().copied().collect();
    s.triple()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accumulates_lines() {
        let mut r = Report::new("t", "title");
        r.line("a");
        r.blank();
        r.line("b");
        assert_eq!(r.text, "== t: title ==\na\n\nb\n");
    }

    #[test]
    fn triple_formats_min_avg_max() {
        assert_eq!(triple(&[3.0, 1.0, 2.0]), "  1.00   2.00   3.00");
    }

    #[test]
    fn save_writes_files() {
        let dir = std::env::temp_dir().join("abr-report-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut r = Report::new("x", "y");
        r.json = abr_sim::jsn!({"k": 1});
        r.attach_csv("x_points.csv", "a,b\n1,2\n".to_string());
        r.save(&dir).unwrap();
        assert!(dir.join("x.txt").exists());
        assert_eq!(
            std::fs::read_to_string(dir.join("x_points.csv")).unwrap(),
            "a,b\n1,2\n"
        );
        let j = JsonValue::parse(&std::fs::read_to_string(dir.join("x.json")).unwrap()).unwrap();
        assert_eq!(j["k"], 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
