//! # abr-bench — experiment regenerators and micro-benchmarks
//!
//! One regenerator per table and figure of the paper's evaluation
//! (§5), runnable via the `experiments` binary:
//!
//! ```text
//! cargo run --release -p abr-bench --bin experiments            # everything
//! cargo run --release -p abr-bench --bin experiments -- table2  # one id
//! ```
//!
//! Each regenerator runs the same protocol the paper describes (daily
//! on/off alternation, per-day rearrangement from the previous day's
//! reference counts) on the simulated file server, and prints its rows
//! next to the paper's published numbers. Results are also written to
//! `results/<id>.txt` and `results/<id>.json` for EXPERIMENTS.md.
//!
//! Criterion micro-benchmarks for the hot paths live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod arrays;
pub mod engine;
pub mod faults;
pub mod report;
pub mod runreport;
pub mod runs;
pub mod serve;

pub use engine::{RunBatch, RunSpec, UnknownId};
pub use report::Report;
