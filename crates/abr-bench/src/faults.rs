//! Fault-injection experiment (extension; `experiments faults`).
//!
//! The paper assumes a perfect disk. Real devices fail — transiently,
//! permanently, and mid-write — so this run sweeps seeded error rates
//! over the standard on/off protocol and reports how the rearrangement
//! system degrades: requests still served, retries absorbed by the
//! driver, hard failures surfaced, overnight passes skipped, and the
//! seek-time win that remains. A final power-cut scenario interrupts the
//! overnight movement itself to exercise the copy-then-commit recovery
//! path.

use crate::report::Report;
use abr_core::{Experiment, ExperimentConfig};
use abr_disk::fault::FaultPlan;
use abr_disk::models;
use abr_sim::SimDuration;
use abr_sim::{jsn, JsonValue};
use abr_workload::WorkloadProfile;

/// A short, small-disk configuration: the point here is the error path,
/// not the paper's numbers, so a 30-minute day keeps the sweep quick.
fn faulty_config(seed: u64, plan: Option<FaultPlan>) -> ExperimentConfig {
    let mut profile = WorkloadProfile::tiny_test();
    profile.day_length = SimDuration::from_mins(30);
    let mut cfg = ExperimentConfig::new(models::toshiba_mk156f(), profile);
    cfg.seed = seed;
    cfg.fault_plan = plan;
    cfg
}

/// Run one on/off pair under `plan` and summarize the damage.
fn scenario(name: &str, plan: Option<FaultPlan>, r: &mut Report) -> JsonValue {
    let mut e = Experiment::new(faulty_config(0xFA17, plan));
    let days = e.run_on_off(1, 400);
    let (off, on) = (&days[0], &days[1]);
    let served: u64 = days.iter().map(|d| d.all.n).sum();
    let retries: u64 = days.iter().map(|d| d.faults.retries).sum();
    let failures: u64 = days
        .iter()
        .map(|d| d.faults.read_failures + d.faults.write_failures)
        .sum();
    let lost: u64 = days.iter().map(|d| d.faults.lost_blocks).sum();
    let seek_cut = (1.0 - on.all.seek_ms / off.all.seek_ms) * 100.0;
    r.line(format!(
        "{name:>14} | served {served:6} | retries {retries:4} | failed {failures:3} | lost {lost:2} \
         | skipped passes {:1} | seek cut {seek_cut:5.1}%",
        e.rearrange_failures(),
    ));
    jsn!({
        "scenario": name,
        "served": served,
        "retries": retries,
        "failed_requests": failures,
        "lost_blocks": lost,
        "quarantined": days.iter().map(|d| d.faults.quarantines).sum::<u64>(),
        "skipped_passes": e.rearrange_failures(),
        "off_seek_ms": off.all.seek_ms,
        "on_seek_ms": on.all.seek_ms,
        "seek_cut_pct": seek_cut,
    })
}

/// The `faults` experiment: graceful degradation under seeded faults.
pub fn run_faults() -> Report {
    let mut r = Report::new(
        "faults",
        "Graceful degradation under seeded disk faults (extension)",
    );
    let mut rows = Vec::new();
    rows.push(scenario("no faults", None, &mut r));
    for rate in [1e-4, 1e-3, 1e-2] {
        let name = format!("rate {rate:.0e}");
        rows.push(scenario(
            &name,
            Some(FaultPlan::with_error_rate(rate)),
            &mut r,
        ));
    }
    // Cut power partway through the simulated day: the device dies
    // mid-traffic (every later request fails), the overnight pass is
    // skipped, and the morning power-cycle recovers a consistent disk.
    let cut = FaultPlan {
        power_cut_after_ops: Some(2_000),
        ..FaultPlan::none()
    };
    rows.push(scenario("power cut", Some(cut), &mut r));
    r.blank();
    r.line("expected: retries absorb transient faults with no failed requests at low rates;");
    r.line("hard failures stay proportional to the rate while the seek win persists; a power");
    r.line("cut loses the rest of the day's requests but never corrupts the rearrangement");
    r.line("state (skipped passes recover on the next night).");
    r.json = jsn!({ "rows": rows });
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fault_scenario_matches_uninstrumented_run() {
        // The pay-for-what-you-use guarantee, end to end: a `none()` plan
        // must not shift a single completion relative to no injector.
        let run = |plan: Option<FaultPlan>| {
            let mut e = Experiment::new(faulty_config(7, plan));
            let m = e.run_day();
            (m.all.n, m.all.service_ms.to_bits(), m.all.seek_ms.to_bits())
        };
        assert_eq!(run(None), run(Some(FaultPlan::none())));
    }
}
