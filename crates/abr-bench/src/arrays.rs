//! Array scale-out experiments (extension; `experiments array`).
//!
//! The paper measures one spindle. The `abr-array` volume layer runs
//! the same workloads over N spindles with per-disk adaptive
//! rearrangement, so this family sweeps the array shape:
//!
//! * scale-out: N ∈ {1, 2, 4, 8} striped volumes under both the
//!   `system` and `users` workloads;
//! * stripe chunk size: 1, 8, and 32 blocks at N = 4;
//! * striping policy: striped vs concatenated vs hash-sharded at N = 4.
//!
//! Every cell runs the paper's on/off protocol with each member disk
//! placing its share of the paper's 1018 hot blocks. The `array-n2` id
//! is a single N = 2 cell, small enough for the CI smoke job's
//! serial-vs-parallel byte-identity gate.

use crate::engine::UnknownId;
use crate::report::Report;
use abr_array::{ArrayConfig, ArrayDayMetrics, ArrayExperiment, Redundancy, StripePolicy};
use abr_core::ExperimentConfig;
use abr_disk::fault::FaultPlan;
use abr_disk::models;
use abr_sim::{jsn, JsonValue, SimDuration};
use abr_workload::WorkloadProfile;

/// Array experiment ids, in listing order.
pub fn array_ids() -> &'static [&'static str] {
    &["array", "array-n2", "array-redundant"]
}

/// Blocks the paper rearranged on the Toshiba, split across members.
const PAPER_BLOCKS: usize = 1018;

/// One array cell: shape + workload.
struct Cell {
    n: usize,
    workload: &'static str,
    stripe: StripePolicy,
}

impl Cell {
    fn profile(&self) -> WorkloadProfile {
        let mut p = match self.workload {
            "system" => WorkloadProfile::system_fs(),
            _ => WorkloadProfile::users_fs(),
        };
        // A 2-hour day keeps the 12-cell sweep tractable while still
        // giving the monitor dozens of read periods per day.
        p.day_length = SimDuration::from_hours(2);
        p
    }

    fn config(&self) -> ArrayConfig {
        let mut base = ExperimentConfig::new(models::toshiba_mk156f(), self.profile());
        // One seed lane per cell shape, mixed like the single-disk runs.
        base.seed = 0xA77A
            ^ (self.n as u64) << 8
            ^ (self.stripe.chunk_blocks()) << 16
            ^ ((self.workload.len() as u64) << 24);
        ArrayConfig::new(base, self.n, self.stripe)
    }

    fn label(&self) -> String {
        format!(
            "N={} {} {}/{}",
            self.n,
            self.workload,
            self.stripe.name(),
            self.stripe.chunk_blocks()
        )
    }
}

/// Run one cell's on/off pair and append its row.
fn run_cell(cell: &Cell, r: &mut Report) -> JsonValue {
    eprintln!("  running array cell {}...", cell.label());
    let mut e = ArrayExperiment::new(cell.config());
    let per_disk_blocks = PAPER_BLOCKS.div_ceil(cell.n);
    let days = e.run_on_off(1, per_disk_blocks);
    let (off, on) = (&days[0], &days[1]);
    let seek_cut = (1.0 - on.volume.all.seek_ms / off.volume.all.seek_ms) * 100.0;
    let requests = |d: &ArrayDayMetrics| d.per_disk.iter().map(|m| m.all.n).collect::<Vec<u64>>();
    let off_per_disk = requests(off);
    r.line(format!(
        "{:22} | off seek {:5.2} svc {:5.2} | on seek {:5.2} svc {:5.2} | seek cut {:5.1}% | req/disk {:?}",
        cell.label(),
        off.volume.all.seek_ms,
        off.volume.all.service_ms,
        on.volume.all.seek_ms,
        on.volume.all.service_ms,
        seek_cut,
        off_per_disk,
    ));
    jsn!({
        "n_disks": cell.n,
        "workload": cell.workload,
        "policy": cell.stripe.name(),
        "chunk_blocks": cell.stripe.chunk_blocks(),
        "blocks_per_disk": per_disk_blocks,
        "off_seek_ms": off.volume.all.seek_ms,
        "on_seek_ms": on.volume.all.seek_ms,
        "off_service_ms": off.volume.all.service_ms,
        "on_service_ms": on.volume.all.service_ms,
        "off_waiting_ms": off.volume.all.waiting_ms,
        "on_waiting_ms": on.volume.all.waiting_ms,
        "seek_cut_pct": seek_cut,
        "requests_per_disk_off": off_per_disk,
        "requests_per_disk_on": requests(on),
    })
}

/// The cells of the full `array` sweep.
fn sweep_cells() -> Vec<Cell> {
    let mut cells = Vec::new();
    // Scale-out: striped, chunk 8, both workloads.
    for workload in ["system", "users"] {
        for n in [1usize, 2, 4, 8] {
            cells.push(Cell {
                n,
                workload,
                stripe: StripePolicy::Striped { chunk_blocks: 8 },
            });
        }
    }
    // Chunk-size sweep at N = 4 (chunk 8 already covered above).
    for chunk_blocks in [1u64, 32] {
        cells.push(Cell {
            n: 4,
            workload: "system",
            stripe: StripePolicy::Striped { chunk_blocks },
        });
    }
    // Policy comparison at N = 4.
    cells.push(Cell {
        n: 4,
        workload: "system",
        stripe: StripePolicy::Concat,
    });
    cells.push(Cell {
        n: 4,
        workload: "system",
        stripe: StripePolicy::HashShard { chunk_blocks: 8 },
    });
    cells
}

/// The redundant-array configuration: N = 4 members, striped chunk 8,
/// a tiny workload on a 30-minute day — the point is the failure path,
/// not the paper's numbers.
fn redundant_config(redundancy: Redundancy) -> ArrayConfig {
    let mut profile = WorkloadProfile::tiny_test();
    profile.day_length = SimDuration::from_mins(30);
    let mut base = ExperimentConfig::new(models::toshiba_mk156f(), profile);
    base.seed = 0x5AFE ^ (redundancy.name().len() as u64) << 8;
    ArrayConfig::redundant(
        base,
        4,
        StripePolicy::Striped { chunk_blocks: 8 },
        redundancy,
    )
}

/// Run one redundancy scheme through a whole-disk death with hot-spare
/// replacement and report availability, data loss, and rebuild pacing.
/// Redundant schemes are *required* to come through with every request
/// served and zero lost blocks — the CI sweep fails otherwise.
fn run_redundant_cell(redundancy: Redundancy, r: &mut Report) -> JsonValue {
    eprintln!("  running redundant cell {}...", redundancy.name());
    let mut e = ArrayExperiment::new(redundant_config(redundancy));
    // Disk 1 dies 15 minutes into day 1; its hot-spare replacement
    // arrives 10 minutes later and re-silvers under the I/O budget.
    let death = e.clock() + SimDuration::from_mins(15);
    e.install_fault_plan(1, FaultPlan::disk_death(death, SimDuration::from_mins(10)));
    let days = e.run_on_off(1, 256);
    let (off, on) = (&days[0], &days[1]);
    let (served, failed) = e.volume().request_outcomes();
    // Post-day maintenance: drain the resilver (still under the
    // windowed budget), then let the scrub sweep a few idle windows.
    let period = e.config().maintenance.period;
    if redundancy.is_redundant() {
        let mut t = e.clock();
        let mut scrub_windows = 32u32;
        for _ in 0..20_000 {
            e.volume_mut().maintenance_tick(t);
            while let Some(ct) = e.volume_mut().next_completion() {
                e.volume_mut().complete_next(ct);
            }
            if e.volume_mut().rebuild_pending() == 0 {
                if scrub_windows == 0 {
                    break;
                }
                scrub_windows -= 1;
            }
            t += period;
        }
    }
    let health = e.health();
    let lost = health.total_lost();
    let stale = e.volume().rebuild_pending();
    let peak = e.volume().rebuild_peak_window_ops();
    let budget = e.config().maintenance.rebuild_ops_per_window;
    let seek_cut = (1.0 - on.volume.all.seek_ms / off.volume.all.seek_ms) * 100.0;
    r.line(format!(
        "{:>9} | served {served:6} | failed {failed:3} | lost {lost:2} | resilver left {stale:6} \
         | peak window ops {peak:3}/{budget} | seek cut {seek_cut:5.1}%",
        redundancy.name(),
    ));
    let snap = abr_obs::registry_snapshot();
    let counter = |name: &str| snap["counters"][name].as_u64().unwrap_or(0);
    let scrub_groups = counter("array.scrub.groups");
    if redundancy.is_redundant() {
        assert_eq!(
            lost,
            0,
            "{} array lost blocks under a single disk death",
            redundancy.name()
        );
        assert_eq!(
            failed,
            0,
            "{} array failed user requests under a single disk death",
            redundancy.name()
        );
        assert!(
            peak <= budget,
            "rebuild exceeded its per-window I/O budget ({peak} > {budget})"
        );
        assert_eq!(health.n_failed(), 0, "hot-spare replacement not installed");
        assert_eq!(stale, 0, "resilver never drained after the measured days");
        assert!(scrub_groups > 0, "background scrub never swept a group");
    }
    jsn!({
        "redundancy": redundancy.name(),
        "served": served,
        "failed_requests": failed,
        "lost_blocks": lost,
        "resilver_remaining": stale as u64,
        "rebuild_peak_window_ops": peak,
        "rebuild_ops_per_window": budget,
        "rebuild_blocks": counter("array.rebuild.blocks"),
        "reads_degraded": counter("array.reads.degraded"),
        "read_failovers": counter("array.reads.failover"),
        "scrub_groups": scrub_groups,
        "scrub_repairs": counter("array.scrub.repairs"),
        "scrub_mismatches": counter("array.scrub.mismatches"),
        "replacement_installed": health.n_failed() == 0,
        "off_seek_ms": off.volume.all.seek_ms,
        "on_seek_ms": on.volume.all.seek_ms,
        "seek_cut_pct": seek_cut,
    })
}

/// The `array-redundant` sweep: none (the control — it *does* fail
/// requests once the disk dies), mirror, and rotated parity.
fn run_redundant() -> Report {
    let mut r = Report::new(
        "array-redundant",
        "Redundant arrays: whole-disk death, hot-spare fail-over, online rebuild (extension)",
    );
    let mut rows = Vec::new();
    for redundancy in [Redundancy::None, Redundancy::Mirror, Redundancy::RotParity] {
        rows.push(run_redundant_cell(redundancy, &mut r));
    }
    r.blank();
    r.line("expected: the redundancy-free control strands requests on the dead member; mirror");
    r.line("and rotparity serve every request with zero lost blocks, fail over reads to the");
    r.line("survivor/reconstruction, install the hot spare, re-silver fully under the");
    r.line("per-window I/O budget, and background-scrub clean once redundancy is restored.");
    r.json = jsn!({ "rows": rows });
    r
}

/// Run an array experiment by id.
pub fn run_array(id: &str) -> Result<Report, UnknownId> {
    if id == "array-redundant" {
        return Ok(run_redundant());
    }
    let (cells, report): (Vec<Cell>, Report) = match id {
        "array" => (
            sweep_cells(),
            Report::new(
                "array",
                "Array scale-out: N-disk striped volumes, per-disk rearrangement (extension)",
            ),
        ),
        "array-n2" => (
            vec![Cell {
                n: 2,
                workload: "system",
                stripe: StripePolicy::Striped { chunk_blocks: 8 },
            }],
            Report::new(
                "array-n2",
                "Array smoke cell: N=2 striped volume (CI determinism gate)",
            ),
        ),
        other => return Err(UnknownId::new(other)),
    };
    let mut r = report;
    r.line(format!(
        "{:22} | {:^31} | {:^31} | {:^14}",
        "cell", "off day", "on day", "rearrangement"
    ));
    let mut rows = Vec::new();
    for cell in &cells {
        rows.push(run_cell(cell, &mut r));
    }
    if id == "array" {
        r.blank();
        r.line("expected shape: per-disk seek cuts persist at every N (each spindle organ-pipes its own traffic);");
        r.line(
            "per-disk request counts stay balanced for striped/hash policies and skew for concat",
        );
        let mut csv = String::from(
            "n_disks,workload,policy,chunk_blocks,off_seek_ms,on_seek_ms,seek_cut_pct\n",
        );
        for row in &rows {
            csv.push_str(&format!(
                "{},{},{},{},{:.4},{:.4},{:.2}\n",
                row["n_disks"],
                row["workload"].as_str().unwrap_or(""),
                row["policy"].as_str().unwrap_or(""),
                row["chunk_blocks"],
                row["off_seek_ms"].as_f64().unwrap_or(0.0),
                row["on_seek_ms"].as_f64().unwrap_or(0.0),
                row["seek_cut_pct"].as_f64().unwrap_or(0.0),
            ));
        }
        r.attach_csv("array_scaleout.csv".to_string(), csv);
    }
    r.json = jsn!({ "rows": rows });
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_registered() {
        assert_eq!(array_ids(), &["array", "array-n2", "array-redundant"]);
    }

    #[test]
    fn unknown_array_id_is_typed() {
        assert_eq!(run_array("array-n99").unwrap_err().id, "array-n99");
    }

    #[test]
    fn sweep_covers_every_policy_and_requested_n() {
        let cells = sweep_cells();
        let ns: std::collections::HashSet<usize> = cells.iter().map(|c| c.n).collect();
        assert!(ns.contains(&1) && ns.contains(&2) && ns.contains(&4) && ns.contains(&8));
        let policies: std::collections::HashSet<&str> =
            cells.iter().map(|c| c.stripe.name()).collect();
        assert_eq!(policies.len(), 3, "all three striping policies swept");
        let workloads: std::collections::HashSet<&str> = cells.iter().map(|c| c.workload).collect();
        assert!(workloads.contains("system") && workloads.contains("users"));
    }
}
