//! Ablation studies for the design choices DESIGN.md §5 calls out.
//!
//! These go beyond the paper's own evaluation: each isolates one design
//! decision of the rearrangement system and measures what it buys.
//!
//! * `ablate-scheduler` — the SCAN × rearrangement synergy (§5.2 claims
//!   part of the win comes from their interaction).
//! * `ablate-analyzer` — reference-list size: exact counting vs the
//!   bounded Space-Saving list at several capacities ([Salem 93]).
//! * `ablate-location` — reserved region in the middle of the disk vs at
//!   the edge (organ-pipe theory says the middle).
//! * `ablate-drift` — how fast day-to-day workload drift erodes the
//!   benefit (§5.3's explanation for the users-fs results).
//! * `ablate-granularity` — block-level selection vs cylinder-level
//!   selection (the paper's Related Work argues blocks beat cylinders,
//!   corroborating [Ruemmler 91]).

use crate::engine::UnknownId;
use crate::report::Report;
use crate::runs::short_system_config;
use abr_core::analyzer::HotBlock;
use abr_core::Experiment;
use abr_driver::SchedulerKind;
use abr_sim::jsn;
use std::collections::BTreeMap;

/// All ablation ids.
pub fn ablation_ids() -> &'static [&'static str] {
    &[
        "ablate-scheduler",
        "ablate-analyzer",
        "ablate-location",
        "ablate-drift",
        "ablate-granularity",
        "ablate-incremental",
        "ablate-decay",
        "ablate-online",
        "ablate-shuffler",
        "ablate-rotation",
    ]
}

/// Run one ablation by id; unknown ids are a typed error listing the
/// valid ids.
pub fn run_ablation(id: &str) -> Result<Report, UnknownId> {
    Ok(match id {
        "ablate-scheduler" => scheduler(),
        "ablate-analyzer" => analyzer(),
        "ablate-location" => location(),
        "ablate-drift" => drift(),
        "ablate-granularity" => granularity(),
        "ablate-incremental" => incremental(),
        "ablate-decay" => decay(),
        "ablate-online" => online(),
        "ablate-shuffler" => shuffler(),
        "ablate-rotation" => rotation(),
        other => return Err(UnknownId::new(other)),
    })
}

/// One off/on pair under a config; returns (off, on) day metrics.
fn pair(
    cfg: abr_core::ExperimentConfig,
    n_blocks: usize,
) -> (abr_core::DayMetrics, abr_core::DayMetrics) {
    let mut e = Experiment::new(cfg);
    let off = e.run_day();
    e.rearrange_for_next_day(n_blocks);
    let on = e.run_day();
    (off, on)
}

/// Mean (off seek, on seek) over several alternating pairs — for sweeps
/// where single-day variance would drown the effect.
fn mean_pair_seeks(cfg: abr_core::ExperimentConfig, n_blocks: usize, pairs: usize) -> (f64, f64) {
    let mut e = Experiment::new(cfg);
    let days = e.run_on_off(pairs, n_blocks);
    let mean = |on: bool| {
        let sel: Vec<f64> = days
            .iter()
            .filter(|d| d.rearranged == on)
            .map(|d| d.all.seek_ms)
            .collect();
        sel.iter().sum::<f64>() / sel.len() as f64
    };
    (mean(false), mean(true))
}

fn scheduler() -> Report {
    let mut r = Report::new(
        "ablate-scheduler",
        "Scheduler x rearrangement: is part of the win SCAN synergy?",
    );
    let mut rows = Vec::new();
    for kind in [
        SchedulerKind::Fcfs,
        SchedulerKind::Scan,
        SchedulerKind::CScan,
        SchedulerKind::Sstf,
    ] {
        let mut cfg = short_system_config(0xAB1);
        cfg.scheduler = kind;
        let (off, on) = pair(cfg, 1017);
        r.line(format!(
            "{:7} | off: seek {:5.2} ms wait {:7.2} ms | on: seek {:5.2} ms wait {:7.2} ms | seek cut {:4.1}%",
            kind.name(),
            off.all.seek_ms,
            off.all.waiting_ms,
            on.all.seek_ms,
            on.all.waiting_ms,
            (1.0 - on.all.seek_ms / off.all.seek_ms) * 100.0,
        ));
        rows.push(jsn!({
            "scheduler": kind.name(),
            "off_seek_ms": off.all.seek_ms, "on_seek_ms": on.all.seek_ms,
            "off_wait_ms": off.all.waiting_ms, "on_wait_ms": on.all.waiting_ms,
        }));
    }
    r.blank();
    r.line("expected: rearrangement wins under every policy; FCFS waiting times are far worse;");
    r.line("SCAN+rearrangement gives the most zero-length seeks (the paper's synergy claim).");
    r.json = jsn!({ "rows": rows });
    r
}

fn analyzer() -> Report {
    let mut r = Report::new(
        "ablate-analyzer",
        "Reference-list size: exact counts vs bounded Space-Saving lists",
    );
    let mut rows = Vec::new();
    for cap in [
        None,
        Some(2000usize),
        Some(500),
        Some(200),
        Some(100),
        Some(50),
    ] {
        let mut cfg = short_system_config(0xAB2);
        cfg.analyzer_capacity = cap;
        let (off, on) = pair(cfg, 1017);
        let label = cap.map_or("exact".to_string(), |c| format!("cap {c}"));
        r.line(format!(
            "{:9} | on-day seek {:5.2} ms (off {:5.2}) | reduction {:4.1}%",
            label,
            on.all.seek_ms,
            off.all.seek_ms,
            (1.0 - on.all.seek_ms / off.all.seek_ms) * 100.0,
        ));
        rows.push(jsn!({
            "capacity": cap, "on_seek_ms": on.all.seek_ms, "off_seek_ms": off.all.seek_ms,
        }));
    }
    r.blank();
    r.line("expected: a few-hundred-entry list performs like exact counting ([Salem 93]);");
    r.line("very small lists degrade gracefully, not catastrophically.");
    r.json = jsn!({ "rows": rows });
    r
}

fn location() -> Report {
    let mut r = Report::new(
        "ablate-location",
        "Reserved region location: middle of the disk vs the edge",
    );
    let mut rows = Vec::new();
    for edge in [false, true] {
        let mut cfg = short_system_config(0xAB3);
        cfg.reserved_at_edge = edge;
        let (off, on) = mean_pair_seeks(cfg, 1017, 3);
        r.line(format!(
            "{:6} | mean on-day seek {:5.2} ms (off {:5.2}) | reduction {:4.1}%",
            if edge { "edge" } else { "middle" },
            on,
            off,
            (1.0 - on / off) * 100.0,
        ));
        rows.push(jsn!({
            "edge": edge, "on_seek_ms": on, "off_seek_ms": off,
        }));
    }
    r.blank();
    r.line("organ-pipe theory says the middle halves the expected seek for uncovered requests;");
    r.line("finding: with ~95% of requests covered, the uncovered tail is too small for the");
    r.line("location to matter much — the middle's edge (no pun) only appears as coverage drops.");
    r.json = jsn!({ "rows": rows });
    r
}

fn drift() -> Report {
    let mut r = Report::new(
        "ablate-drift",
        "Day-to-day drift: how fast changing access patterns erode the benefit",
    );
    let mut rows = Vec::new();
    for drift in [0.0, 0.04, 0.15, 0.4, 0.8] {
        let mut cfg = short_system_config(0xAB4);
        cfg.profile.daily_drift = drift;
        let (off, on) = mean_pair_seeks(cfg, 1017, 3);
        r.line(format!(
            "drift {:4.2} | mean on-day seek {:5.2} ms (off {:5.2}) | reduction {:4.1}%",
            drift,
            on,
            off,
            (1.0 - on / off) * 100.0,
        ));
        rows.push(jsn!({
            "drift": drift, "on_seek_ms": on, "off_seek_ms": off,
        }));
    }
    r.blank();
    r.line("expected: the benefit decays with drift — the paper's §5.3 explanation for why");
    r.line("the users file system (faster-changing) gains less than the system file system.");
    r.json = jsn!({ "rows": rows });
    r
}

fn granularity() -> Report {
    let mut r = Report::new(
        "ablate-granularity",
        "Selection granularity: hottest blocks vs hottest whole cylinders",
    );
    // Block-granularity baseline.
    let (b_off, b_on) = pair(short_system_config(0xAB5), 1017);

    // Cylinder-granularity: aggregate the day's counts per virtual
    // cylinder, pick the hottest cylinders, and place *all* their blocks
    // until the budget is spent (what a cylinder shuffler can do).
    let mut e = Experiment::new(short_system_config(0xAB5));
    let c_off = e.run_day();
    let (all, _) = e.daemon().distributions();
    let g = e.config().disk.geometry;
    let spb = 16u64;
    let blocks_per_cyl = g.sectors_per_cylinder() / spb; // truncated
    let mut cyl_counts: BTreeMap<u64, u64> = BTreeMap::new();
    for h in &all {
        *cyl_counts.entry(h.block / blocks_per_cyl).or_insert(0) += h.count;
    }
    let mut cyls: Vec<(u64, u64)> = cyl_counts.into_iter().collect();
    cyls.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut hot = Vec::new();
    'outer: for (cyl, count) in cyls {
        for i in 0..blocks_per_cyl {
            if hot.len() >= 1017 {
                break 'outer;
            }
            hot.push(HotBlock {
                block: cyl * blocks_per_cyl + i,
                count,
            });
        }
    }
    e.rearrange_for_next_day_with(&hot, 1017);
    let c_on = e.run_day();

    r.line(format!(
        "block-granularity    | on-day seek {:5.2} ms (off {:5.2}) | reduction {:4.1}%",
        b_on.all.seek_ms,
        b_off.all.seek_ms,
        (1.0 - b_on.all.seek_ms / b_off.all.seek_ms) * 100.0,
    ));
    r.line(format!(
        "cylinder-granularity | on-day seek {:5.2} ms (off {:5.2}) | reduction {:4.1}%",
        c_on.all.seek_ms,
        c_off.all.seek_ms,
        (1.0 - c_on.all.seek_ms / c_off.all.seek_ms) * 100.0,
    ));
    r.blank();
    r.line("expected: block selection wins — hot blocks within a cylinder vary in temperature,");
    r.line("so whole-cylinder selection wastes reserved slots on cold blocks (paper §1.1,");
    r.line("corroborating [Ruemmler 91]'s block-vs-cylinder shuffling comparison).");
    r.json = jsn!({
        "block": jsn!({ "on_seek_ms": b_on.all.seek_ms, "off_seek_ms": b_off.all.seek_ms }),
        "cylinder": jsn!({ "on_seek_ms": c_on.all.seek_ms, "off_seek_ms": c_off.all.seek_ms }),
    });
    r
}

fn incremental() -> Report {
    let mut r = Report::new(
        "ablate-incremental",
        "Overnight movement cost: full clean-and-recopy vs incremental rearrangement",
    );
    let mut rows = Vec::new();
    for inc in [false, true] {
        let mut cfg = short_system_config(0xAB6);
        cfg.incremental_rearrange = inc;
        let mut e = Experiment::new(cfg);
        // Consecutive ON days: each night re-places from that day's counts
        // (the steady-state regime where incremental should shine).
        e.run_day();
        let mut ops = 0u64;
        let mut busy_s = 0.0;
        let mut on_seek = 0.0;
        const NIGHTS: usize = 4;
        for _ in 0..NIGHTS {
            let rep = e.rearrange_for_next_day(1017);
            ops += u64::from(rep.io_ops);
            busy_s += rep.busy.as_secs_f64();
            on_seek += e.run_day().all.seek_ms;
        }
        r.line(format!(
            "{:11} | {:6.0} disk ops/night | {:6.1} s disk time/night | mean on-day seek {:5.2} ms",
            if inc { "incremental" } else { "full" },
            ops as f64 / NIGHTS as f64,
            busy_s / NIGHTS as f64,
            on_seek / NIGHTS as f64,
        ));
        rows.push(jsn!({
            "incremental": inc,
            "ops_per_night": ops as f64 / NIGHTS as f64,
            "busy_s_per_night": busy_s / NIGHTS as f64,
            "mean_on_seek_ms": on_seek / NIGHTS as f64,
        }));
    }
    r.blank();
    r.line("finding: ~45% less overnight I/O for ~0.2 ms of on-day seek (residents keep");
    r.line("their slots, so the organ-pipe shape degrades slightly) — the incremental");
    r.line("extension the paper's granularity argument (1.1) enables.");
    r.json = jsn!({ "rows": rows });
    r
}

fn decay() -> Report {
    let mut r = Report::new(
        "ablate-decay",
        "Count history: nightly reset (the paper) vs exponential decay, across drift rates",
    );
    let mut rows = Vec::new();
    for drift in [0.04f64, 0.3] {
        for decay in [None, Some(0.5), Some(0.8)] {
            let mut cfg = short_system_config(0xAB7);
            cfg.profile.daily_drift = drift;
            cfg.analyzer_decay = decay;
            let (off, on) = mean_pair_seeks(cfg, 1017, 3);
            let label = decay.map_or("reset".to_string(), |d| format!("decay {d}"));
            r.line(format!(
                "drift {:4.2} {:9} | mean on-day seek {:5.2} ms (off {:5.2}) | reduction {:4.1}%",
                drift,
                label,
                on,
                off,
                (1.0 - on / off) * 100.0,
            ));
            rows.push(jsn!({
                "drift": drift, "decay": decay,
                "on_seek_ms": on, "off_seek_ms": off,
            }));
        }
    }
    r.blank();
    r.line("finding: decayed history beats the paper's nightly reset at both drift rates");
    r.line("(~1-5 points of extra reduction) — even under fast drift the stable core of the");
    r.line("hot set is easier to see through several noisy days than through one.");
    r.json = jsn!({ "rows": rows });
    r
}

fn online() -> Report {
    use abr_core::experiment::OnlineConfig;
    use abr_sim::SimDuration;

    let mut r = Report::new(
        "ablate-online",
        "Overnight-only (the paper) vs continuous online rearrangement (controller-style)",
    );
    // (a) The paper's protocol: day 1 has no benefit, rearrangement lands
    // overnight.
    let mut cfg = short_system_config(0xAB8);
    cfg.warmup_days = 0; // cold start shows adaptation speed
    let mut a = Experiment::new(cfg);
    let a1 = a.run_day();
    a.rearrange_for_next_day(1017);
    let a2 = a.run_day();

    // (b) Online: a controller re-places the hottest blocks every 10
    // simulated minutes of the day, whenever the device is idle.
    let mut cfg = short_system_config(0xAB8);
    cfg.warmup_days = 0;
    cfg.analyzer_decay = Some(0.5); // carry counts; online never resets mid-day
    cfg.online = Some(OnlineConfig {
        period: SimDuration::from_mins(10),
        n_blocks: 1017,
    });
    let mut b = Experiment::new(cfg);
    let b1 = b.run_day();
    let b1_io = b.last_online_io();
    b.advance_day_keep_placement();
    let b2 = b.run_day();
    let b2_io = b.last_online_io();

    r.line(format!(
        "overnight | day1 seek {:5.2} ms (no help yet) | day2 seek {:5.2} ms",
        a1.all.seek_ms, a2.all.seek_ms,
    ));
    r.line(format!(
        "online    | day1 seek {:5.2} ms ({} moves, {:4.1} s) | day2 seek {:5.2} ms ({} moves, {:4.1} s)",
        b1.all.seek_ms,
        b1_io.io_ops,
        b1_io.busy.as_secs_f64(),
        b2.all.seek_ms,
        b2_io.io_ops,
        b2_io.busy.as_secs_f64(),
    ));
    r.blank();
    r.line("expected: online rearrangement already cuts seeks DURING the first day (no");
    r.line("overnight wait), converging to the same steady state — the intelligent-");
    r.line("controller deployment the paper sketches in its Loge comparison.");
    r.json = jsn!({
        "overnight": jsn!({ "day1_seek_ms": a1.all.seek_ms, "day2_seek_ms": a2.all.seek_ms }),
        "online": jsn!({
            "day1_seek_ms": b1.all.seek_ms, "day2_seek_ms": b2.all.seek_ms,
            "day1_ops": b1_io.io_ops, "day2_ops": b2_io.io_ops,
        }),
    });
    r
}

fn shuffler() -> Report {
    let mut r = Report::new(
        "ablate-shuffler",
        "Block rearrangement vs whole-disk cylinder shuffling ([Vongsathorn & Carson 90])",
    );
    // Block rearrangement (the paper): 1017 blocks into the reserved area.
    let mut cfg = short_system_config(0xAB9);
    let mut a = Experiment::new(cfg.clone());
    let a_off = a.run_day();
    let a_rep = a.rearrange_for_next_day(1017);
    let a_on = a.run_day();

    // Cylinder shuffler: same workload, no reserved area, whole-disk
    // organ-pipe permutation of cylinders.
    cfg.reserved_cylinders = 0;
    let mut b = Experiment::new(cfg);
    let b_off = b.run_day();
    let b_rep = b.shuffle_cylinders_for_next_day();
    let b_on = b.run_day();

    r.line(format!(
        "block rearrangement | off seek {:5.2} -> on seek {:5.2} ms ({:4.1}% cut) | movement {:5} ops, {:6.1} s",
        a_off.all.seek_ms,
        a_on.all.seek_ms,
        (1.0 - a_on.all.seek_ms / a_off.all.seek_ms) * 100.0,
        a_rep.io_ops,
        a_rep.busy.as_secs_f64(),
    ));
    r.line(format!(
        "cylinder shuffling  | off seek {:5.2} -> on seek {:5.2} ms ({:4.1}% cut) | movement {:5} ops, {:6.1} s",
        b_off.all.seek_ms,
        b_on.all.seek_ms,
        (1.0 - b_on.all.seek_ms / b_off.all.seek_ms) * 100.0,
        b_rep.io_ops,
        b_rep.busy.as_secs_f64(),
    ));
    r.blank();
    r.line("expected (paper SS1.1, corroborating [Ruemmler 91]): block shuffling outperforms");
    r.line("cylinder shuffling — hot blocks inside a cylinder drag cold neighbours along,");
    r.line("zero-length seeks cannot increase as much, and the movement cost is far higher");
    r.line("(every displaced cylinder is a full-cylinder read + write).");
    r.json = jsn!({
        "block": jsn!({ "off_seek_ms": a_off.all.seek_ms, "on_seek_ms": a_on.all.seek_ms,
                   "move_ops": a_rep.io_ops, "move_s": a_rep.busy.as_secs_f64() }),
        "cylinder": jsn!({ "off_seek_ms": b_off.all.seek_ms, "on_seek_ms": b_on.all.seek_ms,
                      "move_ops": b_rep.io_ops, "move_s": b_rep.busy.as_secs_f64() }),
    });
    r
}

fn rotation() -> Report {
    use abr_core::arranger::BlockArranger;
    use abr_core::placement::PolicyKind;
    use abr_disk::{models, Disk, DiskLabel};
    use abr_driver::request::IoRequest;
    use abr_driver::{AdaptiveDriver, DriverConfig, Ioctl, IoctlReply};
    use abr_sim::SimTime;

    let mut r = Report::new(
        "ablate-rotation",
        "Rotational cost of placement under BACK-TO-BACK sequential reads (Table 10's regime)",
    );
    r.line("Table 10's ~1 ms rotational penalty only appears when sequential blocks are");
    r.line("read back to back (each request issued the instant the previous completes);");
    r.line("with client pacing the platter turns many times between requests and placement");
    r.line("cannot matter. This regenerates the effect in its regime.");
    r.blank();

    // Files of 8 interleaved blocks (gap 2), scattered over the disk.
    let n_files = 60usize;
    let blocks_per_file = 8u64;
    let build = || -> (AdaptiveDriver, Vec<Vec<u64>>) {
        let model = models::toshiba_mk156f();
        let label = DiskLabel::rearranged(model.geometry, 48);
        let cfg = DriverConfig::default();
        let mut disk = Disk::new(model);
        AdaptiveDriver::format(&mut disk, &label, &cfg);
        let driver = AdaptiveDriver::attach(disk, cfg).unwrap();
        let files: Vec<Vec<u64>> = (0..n_files as u64)
            .map(|f| {
                (0..blocks_per_file)
                    .map(|i| 100 + f * 251 + i * 2)
                    .collect()
            })
            .collect();
        (driver, files)
    };

    let mut rows = Vec::new();
    for kind in PolicyKind::all() {
        let (mut driver, files) = build();
        // Hot list: file-major, decreasing counts, so adjacent file
        // blocks have adjacent ranks (what real counts look like).
        let hot: Vec<HotBlock> = files
            .iter()
            .flatten()
            .enumerate()
            .map(|(i, &b)| HotBlock {
                block: b,
                count: (10_000 - i) as u64,
            })
            .collect();
        let arranger = BlockArranger::new(kind.make(1));
        arranger
            .rearrange(&mut driver, &hot, hot.len(), SimTime::ZERO)
            .unwrap();
        driver
            .ioctl(Ioctl::ReadStats, SimTime::from_micros(500_000_000))
            .unwrap();

        // Back-to-back sequential reads of every file, several passes.
        let mut now = SimTime::from_micros(600_000_000);
        for _ in 0..4 {
            for file in &files {
                for &b in file {
                    driver.submit(IoRequest::read(0, b * 16, 16), now).unwrap();
                    let done = driver.drain();
                    now = done[0].completed; // next request fires immediately
                }
            }
        }
        let snap = match driver.ioctl(Ioctl::ReadStats, now).unwrap() {
            IoctlReply::Stats(s) => s,
            _ => unreachable!(),
        };
        let rot = snap.reads.rotation.mean_ms();
        let svc = snap.reads.service.mean_ms();
        r.line(format!(
            "{:12} | mean rotational latency {:5.2} ms | mean service {:5.2} ms",
            kind.name(),
            rot,
            svc
        ));
        rows.push(jsn!({ "policy": kind.name(), "rotation_ms": rot, "service_ms": svc }));
    }
    r.blank();
    r.line("expected shape (Table 10): interleave-preserving placement has the lowest");
    r.line("rotational latency; organ-pipe and serial pay for breaking the gap spacing.");
    r.json = jsn!({ "rows": rows });
    r
}
