//! One regenerator per table and figure of the paper's evaluation.
//!
//! Protocol fidelity notes:
//! * On/off tables run the paper's alternating-days protocol (§5.2): an
//!   "off" day with the reserved area empty, then blocks placed from that
//!   day's reference counts for the following "on" day, repeated.
//! * Seek times are computed from measured seek-distance distributions
//!   through the Table 1 curves — the paper's own method.
//! * The Figure 8 sweep varies the number of rearranged blocks day by day
//!   on one long-running instance, just as §5.4 describes.

use crate::engine::UnknownId;
use crate::report::{triple, Report};
use abr_core::{DayMetrics, Experiment, ExperimentConfig, PolicyKind};
use abr_disk::{models, DiskModel};
use abr_sim::jsn;
use abr_workload::WorkloadProfile;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Which disk, by paper name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiskKind {
    /// Toshiba MK156F (135 MB).
    Toshiba,
    /// Fujitsu M2266 (1 GB).
    Fujitsu,
}

impl DiskKind {
    fn model(self) -> DiskModel {
        match self {
            DiskKind::Toshiba => models::toshiba_mk156f(),
            DiskKind::Fujitsu => models::fujitsu_m2266(),
        }
    }

    fn name(self) -> &'static str {
        match self {
            DiskKind::Toshiba => "Toshiba",
            DiskKind::Fujitsu => "Fujitsu",
        }
    }

    /// Blocks the paper rearranged on this disk.
    fn paper_blocks(self) -> usize {
        match self {
            DiskKind::Toshiba => 1018,
            DiskKind::Fujitsu => 3500,
        }
    }

    fn both() -> [DiskKind; 2] {
        [DiskKind::Toshiba, DiskKind::Fujitsu]
    }
}

/// Which workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsKind {
    /// The read-only *system* file system.
    System,
    /// The read/write *users* file system.
    Users,
}

impl FsKind {
    fn profile(self) -> WorkloadProfile {
        match self {
            FsKind::System => WorkloadProfile::system_fs(),
            FsKind::Users => WorkloadProfile::users_fs(),
        }
    }

    fn name(self) -> &'static str {
        match self {
            FsKind::System => "system",
            FsKind::Users => "users",
        }
    }
}

/// Number of on/off day pairs per summary table (the paper ran 5–6).
const PAIRS: usize = 5;

/// A system-fs Toshiba config with a 4-hour day — the standard setup for
/// ablation sweeps, where many configurations must run.
pub fn short_system_config(seed: u64) -> ExperimentConfig {
    let mut profile = WorkloadProfile::system_fs();
    profile.day_length = abr_sim::SimDuration::from_hours(4);
    let mut cfg = ExperimentConfig::new(models::toshiba_mk156f(), profile);
    cfg.seed = seed;
    cfg
}

fn config(disk: DiskKind, fs: FsKind, policy: PolicyKind, seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(disk.model(), fs.profile());
    cfg.policy = policy;
    cfg.seed = seed ^ (disk as u64) << 8 ^ (fs as u64) << 16;
    cfg
}

/// The expensive multi-day runs, memoized and shareable across threads.
///
/// Several tables consume the same alternating on/off run (e.g. Tables
/// 2 and 4 read the same days). A `DayCache` computes each day-vector at
/// most once per process: concurrent requesters block on the same
/// [`OnceLock`] instead of recomputing, so a parallel suite performs
/// exactly the serial suite's simulation work and every consumer sees
/// bit-identical metrics regardless of which run got there first.
#[derive(Default)]
pub struct DayCache {
    onoff: Mutex<DayMap<(DiskKind, FsKind)>>,
    policy: Mutex<DayMap<(DiskKind, PolicyKind)>>,
}

type DayMap<K> = HashMap<K, Arc<OnceLock<Arc<Vec<DayMetrics>>>>>;

/// Fetch-or-compute `key`: the first caller runs `compute` while any
/// concurrent caller for the same key blocks on the cell, so the days
/// are simulated exactly once.
fn memoized<K: std::hash::Hash + Eq + Clone>(
    map: &Mutex<DayMap<K>>,
    key: K,
    compute: impl FnOnce() -> Vec<DayMetrics>,
) -> Arc<Vec<DayMetrics>> {
    let cell = {
        let mut map = map.lock().expect("day-cache lock");
        map.entry(key).or_default().clone()
    };
    cell.get_or_init(|| Arc::new(compute())).clone()
}

/// A campaign regenerates experiments against a [`DayCache`] — its own
/// by default, or a shared one so concurrent runs deduplicate work.
#[derive(Default)]
pub struct Campaign {
    cache: Arc<DayCache>,
}

impl Campaign {
    /// A fresh campaign with a private cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// A campaign backed by a shared cache (the parallel engine hands
    /// every worker the same one).
    pub fn with_cache(cache: Arc<DayCache>) -> Self {
        Campaign { cache }
    }

    /// All experiment ids in paper order.
    pub fn all_ids() -> &'static [&'static str] {
        &[
            "table1", "table2", "table3", "table4", "fig4", "fig5", "table5", "fig6", "fig7",
            "table6", "fig8", "table7", "table8", "table9", "table10", "fig3",
        ]
    }

    /// Run one experiment by id. Unknown ids are a typed error listing
    /// the valid ids, so a suite can reject bad input up front instead
    /// of aborting mid-run.
    pub fn run(&self, id: &str) -> Result<Report, UnknownId> {
        Ok(match id {
            "table1" => table1(),
            "table2" => self.table2_or_4_or_5_or_6("table2")?,
            "table3" => self.table3(),
            "table4" => self.table2_or_4_or_5_or_6("table4")?,
            "table5" => self.table2_or_4_or_5_or_6("table5")?,
            "table6" => self.table2_or_4_or_5_or_6("table6")?,
            "fig4" => self.fig_cdf("fig4"),
            "fig6" => self.fig_cdf("fig6"),
            "fig5" => self.fig_dist("fig5"),
            "fig7" => self.fig_dist("fig7"),
            "fig8" => fig8(),
            "table7" => self.table7(),
            "table8" => self.table8_or_9(DiskKind::Toshiba),
            "table9" => self.table8_or_9(DiskKind::Fujitsu),
            "table10" => self.table10(),
            "fig3" => fig3(),
            other => return Err(UnknownId::new(other)),
        })
    }

    /// The standard alternating on/off run for a (disk, fs), memoized.
    fn onoff_days(&self, disk: DiskKind, fs: FsKind) -> Arc<Vec<DayMetrics>> {
        memoized(&self.cache.onoff, (disk, fs), || {
            eprintln!("  running {} / {} on/off days...", disk.name(), fs.name());
            let cfg = config(disk, fs, PolicyKind::OrganPipe, 0xA5A5);
            let mut e = Experiment::new(cfg);
            e.run_on_off(PAIRS, disk.paper_blocks())
        })
    }

    /// Days measured under a given placement policy (on-days only),
    /// system file system, memoized (Tables 7–10).
    fn policy_onoff(&self, disk: DiskKind, policy: PolicyKind) -> Arc<Vec<DayMetrics>> {
        memoized(&self.cache.policy, (disk, policy), || {
            eprintln!(
                "  running {} / system with {} placement...",
                disk.name(),
                policy.name()
            );
            let cfg = config(disk, FsKind::System, policy, 0xBEEF);
            let mut e = Experiment::new(cfg);
            e.run_on_off(2, disk.paper_blocks())
        })
    }

    fn table2_or_4_or_5_or_6(&self, id: &'static str) -> Result<Report, UnknownId> {
        let (fs, reads_only, title, paper): (_, _, _, &[[f64; 9]]) = match id {
            "table2" => (
                FsKind::System,
                false,
                "On/Off summary, system file system (daily mean min/avg/max)",
                // paper rows: [seek min avg max, svc min avg max, wait min avg max]
                &[
                    [
                        18.70, 19.46, 21.51, 38.41, 39.78, 41.71, 65.39, 82.73, 94.52,
                    ],
                    [0.98, 1.17, 1.55, 22.61, 22.88, 23.34, 40.39, 46.43, 51.13],
                    [7.80, 8.14, 8.67, 21.26, 21.60, 22.04, 61.35, 66.57, 72.69],
                    [0.70, 0.91, 1.16, 13.83, 14.18, 14.41, 35.65, 45.31, 52.52],
                ],
            ),
            "table4" => (
                FsKind::System,
                true,
                "On/Off summary, system file system, READ requests only",
                &[
                    [12.46, 14.31, 16.60, 30.50, 32.80, 35.32, 4.48, 5.80, 6.86],
                    [3.54, 3.89, 4.49, 22.57, 23.59, 24.03, 4.46, 4.97, 5.47],
                    [7.52, 7.79, 8.02, 19.69, 20.29, 21.48, 3.21, 4.72, 7.59],
                    [1.32, 1.58, 1.89, 12.34, 12.87, 13.41, 2.54, 2.98, 3.32],
                ],
            ),
            "table5" => (
                FsKind::Users,
                false,
                "On/Off summary, users file system",
                &[
                    [11.06, 13.10, 15.45, 28.83, 31.14, 34.06, 8.32, 16.86, 31.93],
                    [8.10, 8.90, 10.78, 26.08, 27.32, 29.54, 4.74, 10.18, 18.63],
                    [3.27, 4.27, 4.79, 16.23, 17.00, 17.37, 4.33, 15.19, 48.96],
                    [1.76, 2.73, 3.92, 14.04, 15.12, 16.13, 3.53, 5.83, 8.75],
                ],
            ),
            "table6" => (
                FsKind::Users,
                true,
                "On/Off summary, users file system, READ requests only",
                &[
                    [11.97, 15.38, 17.73, 30.03, 32.90, 35.29, 1.18, 5.16, 16.87],
                    [6.67, 8.40, 9.64, 25.35, 26.48, 27.79, 0.73, 2.48, 4.19],
                    [4.95, 5.98, 7.13, 16.62, 17.59, 18.00, 1.30, 3.01, 7.21],
                    [2.05, 2.44, 2.74, 13.12, 13.84, 14.51, 0.99, 2.04, 4.05],
                ],
            ),
            // Defensive: `run` only routes the four ids above here, but
            // a library caller reaching in gets a typed error, not a
            // panic.
            other => return Err(UnknownId::new(other)),
        };
        let mut r = Report::new(id, title);
        r.line(format!(
            "{:8} {:4} | {:^22} | {:^22} | {:^22}",
            "Disk", "On?", "Seek (min avg max)", "Service", "Waiting"
        ));
        let mut json_rows = Vec::new();
        for (di, disk) in DiskKind::both().into_iter().enumerate() {
            let days = self.onoff_days(disk, fs);
            for (oi, on) in [false, true].into_iter().enumerate() {
                let pick = |d: &DayMetrics| {
                    if reads_only {
                        d.reads
                    } else {
                        d.all
                    }
                };
                let sel: Vec<&DayMetrics> = days.iter().filter(|d| d.rearranged == on).collect();
                let seeks: Vec<f64> = sel.iter().map(|d| pick(d).seek_ms).collect();
                let svcs: Vec<f64> = sel.iter().map(|d| pick(d).service_ms).collect();
                let waits: Vec<f64> = sel.iter().map(|d| pick(d).waiting_ms).collect();
                r.line(format!(
                    "{:8} {:4} | {} | {} | {}",
                    disk.name(),
                    if on { "On" } else { "Off" },
                    triple(&seeks),
                    triple(&svcs),
                    triple(&waits)
                ));
                let p = paper[di * 2 + oi];
                r.line(format!(
                    "{:8} {:4} | {:6.2} {:6.2} {:6.2} | {:6.2} {:6.2} {:6.2} | {:6.2} {:6.2} {:6.2}   (paper)",
                    "", "", p[0], p[1], p[2], p[3], p[4], p[5], p[6], p[7], p[8]
                ));
                json_rows.push(jsn!({
                    "disk": disk.name(), "on": on,
                    "seek_ms": seeks, "service_ms": svcs, "waiting_ms": waits,
                    "paper": p.to_vec(),
                }));
            }
        }
        r.json = jsn!({ "rows": json_rows });
        Ok(r)
    }

    fn table3(&self) -> Report {
        let mut r = Report::new(
            "table3",
            "Two-day detail, system file system (off day / on day)",
        );
        // Paper: [fcfs_dist, dist, zero%, fcfs_seek, seek, svc, wait]
        // abr-lint: allow(D005, keyed lookup of paper constants; never iterated)
        let paper: HashMap<(DiskKind, bool), [f64; 7]> = HashMap::from([
            (
                (DiskKind::Toshiba, false),
                [220.0, 173.0, 23.0, 20.92, 18.21, 38.41, 87.30],
            ),
            (
                (DiskKind::Toshiba, true),
                [225.0, 8.0, 88.0, 21.46, 1.55, 22.95, 50.03],
            ),
            (
                (DiskKind::Fujitsu, false),
                [435.0, 315.0, 27.0, 10.31, 8.01, 21.15, 69.98],
            ),
            (
                (DiskKind::Fujitsu, true),
                [413.0, 27.0, 76.0, 9.73, 1.16, 14.08, 35.65],
            ),
        ]);
        let mut json_rows = Vec::new();
        for disk in DiskKind::both() {
            let days = self.onoff_days(disk, FsKind::System);
            // The first off/on pair is "Day 1 / Day 2".
            for day in days.iter().take(2) {
                let m = day.all;
                let p = paper[&(disk, day.rearranged)];
                r.line(format!(
                    "{:8} {:3} | fcfs_dist {:5.0} (paper {:4.0}) | dist {:5.0} ({:4.0}) | zero {:4.1}% ({:2.0}%) | fcfs_seek {:5.2} ({:5.2}) | seek {:5.2} ({:5.2}) | svc {:5.2} ({:5.2}) | wait {:6.2} ({:5.2})",
                    disk.name(),
                    if day.rearranged { "On" } else { "Off" },
                    m.fcfs_seek_dist, p[0], m.seek_dist, p[1], m.zero_seek_pct, p[2],
                    m.fcfs_seek_ms, p[3], m.seek_ms, p[4], m.service_ms, p[5],
                    m.waiting_ms, p[6],
                ));
                json_rows.push(jsn!({
                    "disk": disk.name(), "on": day.rearranged,
                    "fcfs_seek_dist": m.fcfs_seek_dist, "seek_dist": m.seek_dist,
                    "zero_seek_pct": m.zero_seek_pct, "fcfs_seek_ms": m.fcfs_seek_ms,
                    "seek_ms": m.seek_ms, "service_ms": m.service_ms,
                    "waiting_ms": m.waiting_ms, "paper": p.to_vec(),
                }));
            }
        }
        r.json = jsn!({ "rows": json_rows });
        r
    }

    fn fig_cdf(&self, id: &'static str) -> Report {
        let (fs, title) = match id {
            "fig4" => (
                FsKind::System,
                "Service time distribution, system fs, Fujitsu (off vs on day)",
            ),
            _ => (
                FsKind::Users,
                "Service time distribution, users fs, Fujitsu (off vs on day)",
            ),
        };
        let mut r = Report::new(id, title);
        let days = self.onoff_days(DiskKind::Fujitsu, fs);
        let off = days.iter().find(|d| !d.rearranged).expect("off day");
        let on = days.iter().find(|d| d.rearranged).expect("on day");
        fn frac_below(d: &[(f64, f64)], ms: f64) -> f64 {
            d.iter()
                .take_while(|(t, _)| *t <= ms)
                .last()
                .map_or(0.0, |(_, f)| *f)
        }
        r.line(format!("{:>8} {:>10} {:>10}", "ms", "off", "on"));
        for ms in [5, 10, 15, 20, 25, 30, 40, 50, 75, 100] {
            r.line(format!(
                "{:8} {:9.1}% {:9.1}%",
                ms,
                frac_below(&off.service_cdf, ms as f64) * 100.0,
                frac_below(&on.service_cdf, ms as f64) * 100.0
            ));
        }
        if id == "fig4" {
            r.blank();
            r.line(format!(
                "paper: ~50% of off-day requests complete in <20 ms vs ~85% on-day; measured {:.0}% vs {:.0}%",
                frac_below(&off.service_cdf, 20.0) * 100.0,
                frac_below(&on.service_cdf, 20.0) * 100.0
            ));
        }
        r.json = jsn!({
            "off": off.service_cdf.clone(), "on": on.service_cdf.clone(),
        });
        // Plot-ready CSV: service-time CDF for both days.
        let mut csv = String::from("ms,off_cumulative,on_cumulative\n");
        let max_ms = off
            .service_cdf
            .last()
            .map(|p| p.0)
            .unwrap_or(0.0)
            .max(on.service_cdf.last().map(|p| p.0).unwrap_or(0.0));
        let mut ms = 1.0;
        while ms <= max_ms.min(150.0) {
            csv.push_str(&format!(
                "{ms:.0},{:.4},{:.4}\n",
                frac_below(&off.service_cdf, ms),
                frac_below(&on.service_cdf, ms)
            ));
            ms += 1.0;
        }
        r.attach_csv(format!("{id}_cdf.csv"), csv);
        r
    }

    fn fig_dist(&self, id: &'static str) -> Report {
        let (fs, title) = match id {
            "fig5" => (
                FsKind::System,
                "Block access distribution, system fs (both disks, reads and all)",
            ),
            _ => (
                FsKind::Users,
                "Block access distribution, users fs (both disks, reads and all)",
            ),
        };
        let mut r = Report::new(id, title);
        let mut json_rows = Vec::new();
        for disk in DiskKind::both() {
            let days = self.onoff_days(disk, fs);
            let day = &days[0];
            let share = |counts: &[u64], k: usize| {
                let total: u64 = counts.iter().sum();
                let top: u64 = counts.iter().take(k).sum();
                if total == 0 {
                    0.0
                } else {
                    top as f64 / total as f64 * 100.0
                }
            };
            r.line(format!(
                "{:8} all : active {:5} blocks | top-21 {:4.1}% top-100 {:4.1}% top-500 {:4.1}%",
                disk.name(),
                day.block_counts.len(),
                share(&day.block_counts, 21),
                share(&day.block_counts, 100),
                share(&day.block_counts, 500),
            ));
            r.line(format!(
                "{:8} read: active {:5} blocks | top-21 {:4.1}% top-100 {:4.1}% top-500 {:4.1}%",
                disk.name(),
                day.block_counts_reads.len(),
                share(&day.block_counts_reads, 21),
                share(&day.block_counts_reads, 100),
                share(&day.block_counts_reads, 500),
            ));
            json_rows.push(jsn!({
                "disk": disk.name(),
                "all": day.block_counts.iter().take(2000).collect::<Vec<_>>(),
                "reads": day.block_counts_reads.iter().take(2000).collect::<Vec<_>>(),
            }));
            // Plot-ready CSV: rank vs count, all and reads.
            let mut csv = String::from("rank,count_all,count_reads\n");
            let n = day
                .block_counts
                .len()
                .max(day.block_counts_reads.len())
                .min(2000);
            for i in 0..n {
                csv.push_str(&format!(
                    "{},{},{}\n",
                    i + 1,
                    day.block_counts.get(i).copied().unwrap_or(0),
                    day.block_counts_reads.get(i).copied().unwrap_or(0)
                ));
            }
            r.attach_csv(format!("{id}_{}.csv", disk.name().to_lowercase()), csv);
        }
        if id == "fig5" {
            r.blank();
            r.line("paper (§5.4): fewer than 2000 blocks absorbed all requests; the 100 hottest absorbed ~90%");
        }
        r.json = jsn!({ "rows": json_rows });
        r
    }

    fn table7(&self) -> Report {
        let mut r = Report::new(
            "table7",
            "Placement policy summary: % reduction in daily mean seek time vs FCFS/no-rearrangement",
        );
        // abr-lint: allow(D005, keyed lookup of paper constants; never iterated)
        let paper: HashMap<(DiskKind, &str, bool), f64> = HashMap::from([
            ((DiskKind::Toshiba, "Organ-pipe", false), 95.0),
            ((DiskKind::Toshiba, "Interleaved", false), 87.0),
            ((DiskKind::Toshiba, "Serial", false), 58.0),
            ((DiskKind::Toshiba, "Organ-pipe", true), 76.0),
            ((DiskKind::Toshiba, "Interleaved", true), 62.0),
            ((DiskKind::Toshiba, "Serial", true), 40.0),
            ((DiskKind::Fujitsu, "Organ-pipe", false), 90.0),
            ((DiskKind::Fujitsu, "Interleaved", false), 88.0),
            ((DiskKind::Fujitsu, "Serial", false), 76.0),
            ((DiskKind::Fujitsu, "Organ-pipe", true), 78.0),
            ((DiskKind::Fujitsu, "Interleaved", true), 77.0),
            ((DiskKind::Fujitsu, "Serial", true), 65.0),
        ]);
        let mut json_rows = Vec::new();
        for disk in DiskKind::both() {
            for policy in PolicyKind::all() {
                let days = self.policy_onoff(disk, policy);
                let ons: Vec<&DayMetrics> = days.iter().filter(|d| d.rearranged).collect();
                let all: f64 = ons
                    .iter()
                    .map(|d| d.all.seek_time_reduction_pct())
                    .sum::<f64>()
                    / ons.len() as f64;
                let reads: f64 = ons
                    .iter()
                    .map(|d| d.reads.seek_time_reduction_pct())
                    .sum::<f64>()
                    / ons.len() as f64;
                r.line(format!(
                    "{:8} {:12} | all {:5.1}% (paper {:2.0}%) | reads {:5.1}% (paper {:2.0}%)",
                    disk.name(),
                    policy.name(),
                    all,
                    paper[&(disk, policy.name(), false)],
                    reads,
                    paper[&(disk, policy.name(), true)],
                ));
                json_rows.push(jsn!({
                    "disk": disk.name(), "policy": policy.name(),
                    "all_reduction_pct": all, "reads_reduction_pct": reads,
                }));
            }
        }
        r.blank();
        r.line("expected shape: organ-pipe >= interleaved > serial on both disks");
        r.json = jsn!({ "rows": json_rows });
        r
    }

    fn table8_or_9(&self, disk: DiskKind) -> Report {
        let (id, title): (&'static str, &'static str) = match disk {
            DiskKind::Toshiba => ("table8", "Placement policy detail, Toshiba (on days)"),
            DiskKind::Fujitsu => ("table9", "Placement policy detail, Fujitsu (on days)"),
        };
        let mut r = Report::new(id, title);
        let mut json_rows = Vec::new();
        for policy in PolicyKind::all() {
            let days = self.policy_onoff(disk, policy);
            let on = days.iter().find(|d| d.rearranged).expect("on day");
            for (label, m) in [("all", on.all), ("reads", on.reads)] {
                r.line(format!(
                    "{:12} {:5} | fcfs_dist {:5.0} | dist {:4.0} | zero {:4.1}% | fcfs_seek {:5.2} | seek {:5.2} | svc {:5.2} | wait {:6.2}",
                    policy.name(), label,
                    m.fcfs_seek_dist, m.seek_dist, m.zero_seek_pct,
                    m.fcfs_seek_ms, m.seek_ms, m.service_ms, m.waiting_ms,
                ));
                json_rows.push(jsn!({
                    "policy": policy.name(), "scope": label,
                    "fcfs_seek_dist": m.fcfs_seek_dist, "seek_dist": m.seek_dist,
                    "zero_seek_pct": m.zero_seek_pct, "seek_ms": m.seek_ms,
                    "service_ms": m.service_ms, "waiting_ms": m.waiting_ms,
                }));
            }
        }
        r.blank();
        match disk {
            DiskKind::Toshiba => r.line(
                "paper (all): organ-pipe dist 8 zero 88% seek 1.55 svc 22.95 | interleaved dist 15 zero 83% seek 2.50 svc 23.71 | serial dist 22 zero 26% seek 8.50 svc 28.53",
            ),
            DiskKind::Fujitsu => r.line(
                "paper (all): organ-pipe dist 22 zero 74% seek 1.10 svc 13.83 | interleaved dist 26 zero 77% seek 1.12 svc 14.35 | serial dist 26 zero 35% seek 2.49 svc 15.47",
            ),
        }
        r.json = jsn!({ "rows": json_rows });
        r
    }

    fn table10(&self) -> Report {
        let mut r = Report::new(
            "table10",
            "Rotational latency + transfer time by placement policy (reads, Toshiba)",
        );
        // Without rearrangement: the off day of the organ-pipe run.
        let days = self.policy_onoff(DiskKind::Toshiba, PolicyKind::OrganPipe);
        let off = days.iter().find(|d| !d.rearranged).expect("off day");
        let base = off.reads.rotation_ms + off.reads.transfer_ms;
        r.line(format!(
            "{:22} {:6.2} ms   (paper 18.58)",
            "Without rearrangement", base
        ));
        // abr-lint: allow(D005, keyed lookup of paper constants; never iterated)
        let paper: HashMap<&str, f64> = HashMap::from([
            ("Organ-pipe", 19.42),
            ("Serial", 19.29),
            ("Interleaved", 18.47),
        ]);
        let mut json_rows = vec![jsn!({"policy": "none", "rot_plus_xfer_ms": base})];
        for policy in PolicyKind::all() {
            let days = self.policy_onoff(DiskKind::Toshiba, policy);
            let on = days.iter().find(|d| d.rearranged).expect("on day");
            let v = on.reads.rotation_ms + on.reads.transfer_ms;
            r.line(format!(
                "{:22} {:6.2} ms   (paper {:5.2})",
                policy.name(),
                v,
                paper[policy.name()],
            ));
            json_rows.push(jsn!({"policy": policy.name(), "rot_plus_xfer_ms": v}));
        }
        r.blank();
        r.line("shape: interleaved preserves rotational placement (lowest); organ-pipe/serial add ~1 ms");
        r.line("note: our 'transfer' includes the fixed controller overhead, as does the paper's service-minus-seek residual");
        r.json = jsn!({ "rows": json_rows });
        r
    }
}

/// Table 1: disk model self-check.
fn table1() -> Report {
    let mut r = Report::new("table1", "Disk specifications and seek curves");
    let mut rows = Vec::new();
    for m in [models::toshiba_mk156f(), models::fujitsu_m2266()] {
        let g = m.geometry;
        r.line(format!(
            "{:16} {:4} cyl x {:2} trk x {:2} sect @ {} RPM = {:.0} MB{}",
            m.name,
            g.cylinders,
            g.tracks_per_cylinder,
            g.sectors_per_track,
            g.rpm,
            g.capacity_bytes() as f64 / (1 << 20) as f64,
            if m.track_buffer.is_some() {
                " + 256 KB track buffer"
            } else {
                ""
            },
        ));
        let samples: Vec<String> = [1u64, 10, 50, 100, 226, 315, 500, 800]
            .iter()
            .map(|&d| format!("seek({d})={:.2}ms", m.seek.time_ms(d)))
            .collect();
        r.line(format!("    {}", samples.join("  ")));
        rows.push(jsn!({
            "name": m.name,
            "cylinders": g.cylinders,
            "seek_1": m.seek.time_ms(1),
            "seek_full": m.seek.full_stroke_ms(g.cylinders),
        }));
    }
    r.json = jsn!({ "models": rows });
    r
}

/// Figure 8: % reduction vs number of rearranged blocks (Toshiba, system
/// fs, all requests and reads only).
fn fig8() -> Report {
    let mut r = Report::new(
        "fig8",
        "Seek reduction vs number of rearranged blocks (Toshiba, system fs)",
    );
    let cfg = config(
        DiskKind::Toshiba,
        FsKind::System,
        PolicyKind::OrganPipe,
        0xF16,
    );
    let mut e = Experiment::new(cfg);
    // One day with each block count, like the paper's several-week sweep.
    let counts = [0usize, 25, 50, 100, 200, 400, 700, 1017];
    r.line(format!(
        "{:>7} | {:>10} {:>10} | {:>10} {:>10}",
        "blocks", "dist red%", "time red%", "rd dist%", "rd time%"
    ));
    let mut rows = Vec::new();
    // Burn one day to gather counts for the first placement.
    e.run_day();
    for &n in &counts {
        e.rearrange_for_next_day(n);
        let day = e.run_day();
        let (dr, tr) = (
            day.all.seek_dist_reduction_pct(),
            day.all.seek_time_reduction_pct(),
        );
        let (rdr, rtr) = (
            day.reads.seek_dist_reduction_pct(),
            day.reads.seek_time_reduction_pct(),
        );
        r.line(format!(
            "{:7} | {:9.1}% {:9.1}% | {:9.1}% {:9.1}%",
            n, dr, tr, rdr, rtr
        ));
        rows.push(jsn!({
            "blocks": n,
            "all_dist_reduction_pct": dr, "all_time_reduction_pct": tr,
            "reads_dist_reduction_pct": rdr, "reads_time_reduction_pct": rtr,
        }));
    }
    r.blank();
    r.line("paper shape: marginal benefit beyond ~100 blocks is small (top-100 blocks absorb ~90% of requests)");
    let mut csv =
        String::from("blocks,all_dist_reduction_pct,all_time_reduction_pct,reads_dist_reduction_pct,reads_time_reduction_pct\n");
    for p in &rows {
        csv.push_str(&format!(
            "{},{:.1},{:.1},{:.1},{:.1}\n",
            p["blocks"],
            p["all_dist_reduction_pct"].as_f64().unwrap_or(0.0),
            p["all_time_reduction_pct"].as_f64().unwrap_or(0.0),
            p["reads_dist_reduction_pct"].as_f64().unwrap_or(0.0),
            p["reads_time_reduction_pct"].as_f64().unwrap_or(0.0),
        ));
    }
    r.attach_csv("fig8_sweep.csv".to_string(), csv);
    r.json = jsn!({ "points": rows });
    r
}

/// Figure 3: the worked placement-policy example.
fn fig3() -> Report {
    use abr_core::analyzer::HotBlock;
    use abr_core::placement::SlotMap;
    use abr_disk::DiskLabel;
    use abr_driver::ReservedLayout;

    let mut r = Report::new("fig3", "Placement policy illustration (worked example)");
    // A small reserved area, 4-KB blocks: mirrors the paper's 3-cylinder,
    // 4-blocks-per-cylinder illustration in structure.
    let g = models::tiny_test_disk().geometry;
    let label = DiskLabel::rearranged_aligned(g, 3, 8);
    let layout = ReservedLayout::for_label(&label, 4096, 8).expect("rearranged");
    let slots = SlotMap::new(&layout, &g);
    let hot = vec![
        HotBlock {
            block: 100,
            count: 20,
        },
        HotBlock {
            block: 102,
            count: 15,
        }, // successor of 100 (gap 2)
        HotBlock {
            block: 40,
            count: 12,
        },
        HotBlock {
            block: 42,
            count: 5,
        }, // NOT close to 40 (5 < 6)
        HotBlock { block: 7, count: 4 },
        HotBlock { block: 9, count: 3 }, // successor of 7
    ];
    r.line("hot list (block: count): 100:20 102:15 40:12 42:5 7:4 9:3");
    r.line("successor gap = interleave + 1 = 2; 'close' = at least 50% of predecessor's count");
    r.blank();
    let mut json_rows = Vec::new();
    for kind in PolicyKind::all() {
        let policy = kind.make(1);
        let placed = policy.place(&hot, &slots);
        let desc: Vec<String> = placed
            .iter()
            .map(|(b, s)| format!("{b}->slot{s}"))
            .collect();
        r.line(format!("{:12}: {}", kind.name(), desc.join("  ")));
        json_rows.push(jsn!({
            "policy": kind.name(),
            "assignment": placed,
        }));
    }
    r.json = jsn!({ "rows": json_rows });
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_complete() {
        let ids = Campaign::all_ids();
        let set: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), ids.len());
        assert_eq!(ids.len(), 16);
    }

    #[test]
    fn table1_and_fig3_run_instantly() {
        let c = Campaign::new();
        let t1 = c.run("table1").unwrap();
        assert!(t1.text.contains("Toshiba MK156F"));
        assert!(t1.json["models"].as_array().unwrap().len() == 2);
        assert_eq!(t1.json["models"][0]["cylinders"], 815);
        let f3 = c.run("fig3").unwrap();
        assert!(f3.text.contains("Organ-pipe"));
        assert!(f3.text.contains("Serial"));
    }

    #[test]
    fn unknown_id_is_a_typed_error_listing_valid_ids() {
        let err = Campaign::new().run("table99").unwrap_err();
        assert_eq!(err.id, "table99");
        let msg = err.to_string();
        assert!(msg.contains("table99"));
        assert!(msg.contains("table2"));
        assert!(msg.contains("ablate-"));
        assert!(msg.contains("faults"));
    }

    #[test]
    fn summary_table_helper_rejects_foreign_ids_without_panicking() {
        // Library callers reaching past `run` get the same typed error
        // the CLI does, not a panic.
        let err = Campaign::new().table2_or_4_or_5_or_6("fig4").unwrap_err();
        assert_eq!(err.id, "fig4");
    }

    #[test]
    fn shared_cache_serves_precomputed_days() {
        // Pre-seed the cell so the test proves the cache-hit path
        // without paying for a real multi-day simulation.
        let cache = Arc::new(DayCache::default());
        let days: Arc<Vec<DayMetrics>> = Arc::new(Vec::new());
        let cell = Arc::new(OnceLock::new());
        cell.set(Arc::clone(&days)).unwrap();
        cache
            .onoff
            .lock()
            .unwrap()
            .insert((DiskKind::Toshiba, FsKind::System), cell);
        let c = Campaign::with_cache(cache);
        let got = c.onoff_days(DiskKind::Toshiba, FsKind::System);
        assert!(Arc::ptr_eq(&got, &days), "must be served from the cache");
    }
}
