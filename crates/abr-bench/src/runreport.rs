//! Deterministic run reports over a `BENCH_experiments.json` record.
//!
//! `abrctl report` renders what this module produces. The input record
//! mixes two kinds of data: simulation-time metrics (deterministic for
//! any `--jobs` value) and wall-clock measurements (`wall_s`,
//! `sim_per_real`, the `wall.*` profiling counters — different on every
//! machine and every run). The report keeps them strictly apart:
//!
//! - [`render_markdown`] / [`render_json`] read **only** the
//!   deterministic side — per-day tail-latency quantiles from the day
//!   series, SLO verdicts, starvation counters. Two records produced
//!   from the same ids at different `--jobs` render byte-identically,
//!   which CI checks.
//! - [`folded_profile`] exports the `wall.*` timer counters as folded
//!   stacks (`<run>;<phase> <ns>` — the flamegraph input format). It is
//!   honest about being nondeterministic, which is why `abrctl report`
//!   writes it to a separate file only when asked (`--folded FILE`).
//!
//! A run whose day series is empty is reported as such rather than
//! invented: runs that share day vectors through the in-process cache
//! skip the simulation work, so there is nothing to report for them.

use abr_sim::{jsn, JsonValue};
use std::fmt::Write as _;

/// High-resolution metrics the per-day tail-latency table shows, with
/// their column labels, in column order. Metrics absent from a run's
/// series simply contribute no columns.
const TABLE_METRICS: &[(&str, &str)] = &[
    ("driver.service_us", "service"),
    ("driver.queueing_us", "queueing"),
    ("array.request_us", "request"),
    ("serve.request_us", "srv req"),
    ("serve.queue_us", "srv queue"),
];

/// Quantile columns per metric, keyed into the day point's `quantiles`
/// object.
const TABLE_QUANTILES: &[&str] = &["p50", "p99", "p999"];

/// Run-wide registry counters the report surfaces, with their row
/// labels, in row order. Counters absent from a run's snapshot (array
/// counters on a single-disk run, serve counters on a batch run)
/// contribute no rows. This list is also the curated consumer side of
/// the abr-lint M001 dead-metric check: a producer counter nobody
/// reads — not here, not in an SLO, not in bench-compare — is flagged.
const REPORT_COUNTERS: &[(&str, &str)] = &[
    ("engine.days", "simulated days"),
    ("engine.sim_us", "simulated time (us)"),
    ("driver.submitted", "requests submitted"),
    ("driver.completed", "requests completed"),
    ("driver.failed", "requests failed"),
    ("driver.move.ops", "rearrangement move ops"),
    ("driver.move.busy_us", "rearrangement busy (us)"),
    ("driver.dispatch.reserved", "reserved-area dispatches"),
    ("driver.monitor.dropped", "monitor entries dropped"),
    ("driver.monitor.suspensions", "monitor suspensions"),
    ("driver.faults.retries", "fault retries"),
    ("driver.faults.read_failures", "read failures"),
    ("driver.faults.write_failures", "write failures"),
    ("driver.faults.quarantines", "slot quarantines"),
    ("driver.faults.lost_blocks", "lost blocks"),
    ("driver.faults.table_write_failures", "table write failures"),
    ("slo.violations", "SLO violations"),
    ("array.requests", "array requests"),
    ("array.subrequests", "array subrequests"),
    ("array.writes.redirected", "array writes redirected"),
    ("array.rebuild.ops", "rebuild I/O ops"),
    ("array.rebuild.errors", "rebuild errors"),
    ("array.scrub.defects", "scrub defects remapped"),
    ("serve.arrivals", "serve arrivals"),
    ("serve.accepted", "serve accepted"),
    ("serve.completed", "serve completed"),
    ("serve.errors", "serve errors"),
    ("serve.shed_total", "serve shed"),
    ("serve.throttled_total", "serve throttled"),
];

/// Run-wide registry gauges shown alongside [`REPORT_COUNTERS`].
const REPORT_GAUGES: &[(&str, &str)] = &[
    ("array.disks", "disks in array"),
    ("array.disks.dead", "disks dead"),
    ("array.disks.degraded", "disks degraded"),
    ("array.disks.rebuilding", "disks rebuilding"),
    ("array.blocks.lost", "blocks lost"),
    ("array.rebuild.pending", "resilver pending"),
    ("serve.clients", "serve clients"),
    ("serve.queue_depth", "final queue depth"),
    ("serve.queue_depth_max", "peak queue depth"),
    ("serve.inflight", "final inflight"),
];

/// Format microseconds as fixed-point milliseconds (`14.335ms`).
/// Integer arithmetic only, so the bytes depend on nothing but the
/// value.
fn fmt_us(us: u64) -> String {
    format!("{}.{:03}ms", us / 1_000, us % 1_000)
}

/// Validate the record and return its run array.
fn runs_of(bench: &JsonValue) -> Result<Vec<JsonValue>, String> {
    if bench["schema"].as_str() != Some("abr-bench/1") {
        return Err("not an abr-bench/1 record (missing schema field)".to_string());
    }
    let runs = bench["runs"].as_array().cloned().unwrap_or_default();
    if runs.is_empty() {
        return Err("record has no runs".to_string());
    }
    Ok(runs)
}

/// Per-objective roll-up across a run's day points.
struct SloSummary {
    text: String,
    days_ok: u64,
    days_violated: u64,
    /// Worst observed value across days, when the metric ever fired.
    worst_us: Option<u64>,
}

fn slo_summaries(days: &[JsonValue]) -> Vec<SloSummary> {
    let mut out: Vec<SloSummary> = Vec::new();
    for day in days {
        let Some(verdicts) = day["slo"].as_array() else {
            continue;
        };
        for v in verdicts {
            let Some(text) = v["slo"].as_str() else {
                continue;
            };
            let entry = match out.iter_mut().find(|s| s.text == text) {
                Some(e) => e,
                None => {
                    out.push(SloSummary {
                        text: text.to_string(),
                        days_ok: 0,
                        days_violated: 0,
                        worst_us: None,
                    });
                    out.last_mut().expect("pushed above")
                }
            };
            match v["ok"].as_bool() {
                Some(true) => entry.days_ok += 1,
                Some(false) => entry.days_violated += 1,
                None => {}
            }
            if let Some(val) = v["value"].as_u64() {
                entry.worst_us = Some(entry.worst_us.map_or(val, |w| w.max(val)));
            }
        }
    }
    out
}

/// Metrics (of [`TABLE_METRICS`]) that appear in at least one of the
/// run's day points, in table-column order.
fn present_metrics(days: &[JsonValue]) -> Vec<(&'static str, &'static str)> {
    TABLE_METRICS
        .iter()
        .filter(|(name, _)| days.iter().any(|d| d["hires"].get(name).is_some()))
        .copied()
        .collect()
}

/// Render the deterministic markdown report (see module docs).
pub fn render_markdown(bench: &JsonValue) -> Result<String, String> {
    let runs = runs_of(bench)?;
    let mut out = String::new();
    let ok_count = runs
        .iter()
        .filter(|r| r["ok"].as_bool() == Some(true))
        .count();
    let _ = writeln!(out, "# abr-bench run report");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{} run(s), {} ok. Simulation-time data only — wall-clock \
         profiling is exported separately (`abrctl report --folded FILE`).",
        runs.len(),
        ok_count
    );
    for run in &runs {
        let id = run["id"].as_str().unwrap_or("?");
        let ok = run["ok"].as_bool() == Some(true);
        let days = run["day_series"].as_array().cloned().unwrap_or_default();
        let _ = writeln!(out);
        let _ = writeln!(out, "## {id}");
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "status: {} — {} simulated day(s), {} day point(s).",
            if ok { "ok" } else { "FAILED" },
            run["sim_days"].as_u64().unwrap_or(0),
            days.len()
        );
        if days.is_empty() {
            // A run with zero completed days still gets an explicit
            // section (and its run-level starvation figures below) —
            // an empty table would read as a rendering bug.
            let _ = writeln!(out);
            let _ = writeln!(out, "### Day series");
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "No day series: zero day points recorded (day vectors \
                 served from the in-process cache, or the run failed \
                 before its first day boundary). Tail-latency and SLO \
                 tables are omitted."
            );
        }

        let metrics = present_metrics(&days);
        if !metrics.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "### Tail latency by day");
            let _ = writeln!(out);
            let mut head = String::from("| day |");
            let mut rule = String::from("|----:|");
            for (_, label) in &metrics {
                for q in TABLE_QUANTILES {
                    let _ = write!(head, " {label} {q} |");
                    rule.push_str("----:|");
                }
            }
            let _ = writeln!(out, "{head}");
            let _ = writeln!(out, "{rule}");
            for day in &days {
                let mut row = format!("| {} |", day["day"].as_u64().unwrap_or(0));
                for (name, _) in &metrics {
                    for q in TABLE_QUANTILES {
                        let cell = day["hires"][*name]["quantiles"][*q]
                            .as_u64()
                            .map_or_else(|| "-".to_string(), fmt_us);
                        let _ = write!(row, " {cell} |");
                    }
                }
                let _ = writeln!(out, "{row}");
            }
        }

        if !days.is_empty() {
            let slos = slo_summaries(&days);
            let _ = writeln!(out);
            let _ = writeln!(out, "### SLO verdicts");
            let _ = writeln!(out);
            if slos.is_empty() {
                let _ = writeln!(out, "No objectives were installed for this run.");
            } else {
                let _ = writeln!(out, "| objective | days ok | days violated | worst |");
                let _ = writeln!(out, "|---|----:|----:|----:|");
                for s in &slos {
                    let _ = writeln!(
                        out,
                        "| {} | {} | {} | {} |",
                        s.text,
                        s.days_ok,
                        s.days_violated,
                        s.worst_us.map_or_else(|| "vacuous".to_string(), fmt_us)
                    );
                }
            }
        }

        let starved = run["metrics"]["counters"]["driver.starved_total"].as_u64();
        let max_age = run["metrics"]["gauges"]["driver.queue_age_max_us"].as_u64();
        if let (Some(starved), Some(max_age)) = (starved, max_age) {
            let _ = writeln!(out);
            let _ = writeln!(out, "### Starvation");
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "{starved} dispatch(es) exceeded the starvation age \
                 threshold; oldest request waited {}.",
                fmt_us(max_age)
            );
        }

        let rows = counter_rows(run);
        if !rows.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "### Run counters");
            let _ = writeln!(out);
            let _ = writeln!(out, "| counter | value |");
            let _ = writeln!(out, "|---|----:|");
            for (_, label, v) in &rows {
                let _ = writeln!(out, "| {label} | {v} |");
            }
        }
    }
    Ok(out)
}

/// The curated counter/gauge rows present in a run's metrics snapshot,
/// as `(metric name, label, value)` in declaration order.
fn counter_rows(run: &JsonValue) -> Vec<(&'static str, &'static str, u64)> {
    let mut rows = Vec::new();
    for (name, label) in REPORT_COUNTERS {
        if let Some(v) = run["metrics"]["counters"][*name].as_u64() {
            rows.push((*name, *label, v));
        }
    }
    for (name, label) in REPORT_GAUGES {
        if let Some(v) = run["metrics"]["gauges"][*name].as_u64() {
            rows.push((*name, *label, v));
        }
    }
    rows
}

/// Render the same report as a machine-readable JSON document
/// (`abrctl report --json`). Deterministic like the markdown.
pub fn render_json(bench: &JsonValue) -> Result<JsonValue, String> {
    let runs = runs_of(bench)?;
    let mut out_runs = JsonValue::Array(Vec::new());
    for run in &runs {
        let days = run["day_series"].as_array().cloned().unwrap_or_default();
        let mut slo = JsonValue::Array(Vec::new());
        for s in slo_summaries(&days) {
            slo.push(jsn!({
                "slo": s.text.as_str(),
                "days_ok": s.days_ok,
                "days_violated": s.days_violated,
                "worst_us": s.worst_us.map_or(JsonValue::Null, JsonValue::from),
            }));
        }
        let mut r = jsn!({
            "id": run["id"].clone(),
            "ok": run["ok"].clone(),
            "sim_days": run["sim_days"].clone(),
            "day_points": days.len() as u64,
            "day_series": run["day_series"].clone(),
            "slo_summary": slo,
        });
        if let Some(v) = run["metrics"]["counters"]["driver.starved_total"].as_u64() {
            r.insert("starved_total", JsonValue::from(v));
        }
        if let Some(v) = run["metrics"]["gauges"]["driver.queue_age_max_us"].as_u64() {
            r.insert("queue_age_max_us", JsonValue::from(v));
        }
        let rows = counter_rows(run);
        if !rows.is_empty() {
            let mut counters = JsonValue::object();
            for (name, _, v) in rows {
                counters.insert(name, JsonValue::from(v));
            }
            r.insert("counters", counters);
        }
        out_runs.push(r);
    }
    Ok(jsn!({
        "schema": "abr-report/1",
        "suite": bench["suite"].clone(),
        "runs": out_runs,
    }))
}

/// Export every run's `wall.*.ns` profiling counters as folded stacks —
/// one `<run>;<phase> <ns>` line per timer, the input format flamegraph
/// tools read. Wall-clock data, so **not** deterministic; see module
/// docs. Runs without timer counters contribute no lines.
pub fn folded_profile(bench: &JsonValue) -> String {
    let mut out = String::new();
    let Some(runs) = bench["runs"].as_array() else {
        return out;
    };
    for run in runs {
        let id = run["id"].as_str().unwrap_or("?");
        let Some(counters) = run["metrics"]["counters"].as_object() else {
            continue;
        };
        for (name, v) in counters {
            let Some(phase) = name
                .strip_prefix("wall.")
                .and_then(|n| n.strip_suffix(".ns"))
            else {
                continue;
            };
            if let Some(ns) = v.as_u64() {
                let _ = writeln!(out, "{id};{phase} {ns}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-run record shaped like `bench_json` output: one run with
    /// two day points (one SLO violation on day 1), one cache-fed run
    /// with an empty series.
    fn fixture() -> JsonValue {
        let day = |d: u64, p99: u64, ok: bool| {
            jsn!({
                "day": d,
                "counters": jsn!({"driver.starved_total": 1u64}),
                "gauges": jsn!({"driver.queue_age_max_us": 90_000u64}),
                "hires": jsn!({
                    "driver.service_us": jsn!({
                        "count": 100u64,
                        "sum": 1_000_000u64,
                        "max": p99 + 500,
                        "quantiles": jsn!({
                            "p50": 9_000u64, "p90": 20_000u64,
                            "p99": p99, "p999": p99 + 300,
                        }),
                    }),
                }),
                "histograms": JsonValue::object(),
                "slo": vec![jsn!({
                    "slo": "p99(driver.service_us) < 150ms",
                    "value": p99,
                    "ok": ok,
                })],
            })
        };
        jsn!({
            "schema": "abr-bench/1",
            "suite": vec!["table2", "fig8"],
            "jobs": 4,
            "wall_s": 1.25,
            "runs": vec![
                jsn!({
                    "id": "table2",
                    "ok": true,
                    "wall_s": 1.0,
                    "sim_days": 2u64,
                    "metrics": jsn!({
                        "counters": jsn!({
                            "driver.starved_total": 2u64,
                            "wall.event_loop.ns": 123_456u64,
                            "wall.event_loop.calls": 2u64,
                        }),
                        "gauges": jsn!({"driver.queue_age_max_us": 90_000u64}),
                    }),
                    "day_series": vec![day(0, 52_000, true), day(1, 180_000, false)],
                }),
                jsn!({
                    "id": "fig8",
                    "ok": true,
                    "wall_s": 0.25,
                    "sim_days": 35u64,
                    // Zero day points, but run-level counters exist —
                    // the report must render them anyway.
                    "metrics": jsn!({
                        "counters": jsn!({"driver.starved_total": 3u64}),
                        "gauges": jsn!({"driver.queue_age_max_us": 70_000u64}),
                    }),
                    "day_series": JsonValue::Array(Vec::new()),
                }),
            ],
        })
    }

    #[test]
    fn markdown_reports_days_slos_and_starvation() {
        let md = render_markdown(&fixture()).unwrap();
        assert!(md.contains("## table2"));
        assert!(md.contains("| day | service p50 | service p99 | service p999 |"));
        assert!(md.contains("| 0 | 9.000ms | 52.000ms | 52.300ms |"));
        assert!(md.contains("| p99(driver.service_us) < 150ms | 1 | 1 | 180.000ms |"));
        assert!(md.contains("2 dispatch(es) exceeded the starvation age"));
        assert!(md.contains("oldest request waited 90.000ms"));
        // The cache-fed run is reported honestly, not invented.
        assert!(md.contains("## fig8"));
        assert!(md.contains("No day series: zero day points recorded"));
        // Wall-clock data must never leak into the deterministic body.
        assert!(!md.contains("wall.event_loop"));
        assert!(!md.contains("1.25"));
    }

    #[test]
    fn zero_day_run_still_renders_run_level_sections() {
        let md = render_markdown(&fixture()).unwrap();
        let fig8 = md.split("## fig8").nth(1).expect("fig8 section");
        // Explicit section, not an empty table, not a bare paragraph.
        assert!(fig8.contains("### Day series"));
        assert!(fig8.contains("Tail-latency and SLO tables are omitted"));
        assert!(!fig8.contains("| day |"), "no empty latency table");
        assert!(!fig8.contains("### SLO verdicts"), "no vacuous SLO table");
        // Run-level starvation counters are independent of day points
        // and must survive the zero-day path.
        assert!(fig8.contains("### Starvation"));
        assert!(fig8.contains("3 dispatch(es) exceeded the starvation age"));
        assert!(fig8.contains("oldest request waited 70.000ms"));
    }

    #[test]
    fn serve_metrics_get_table_columns() {
        // A one-run record shaped like a serve-family day point.
        let record = jsn!({
            "schema": "abr-bench/1",
            "suite": vec!["serve-smoke"],
            "runs": vec![jsn!({
                "id": "serve-smoke",
                "ok": true,
                "sim_days": 1u64,
                "metrics": jsn!({"counters": JsonValue::object()}),
                "day_series": vec![jsn!({
                    "day": 0u64,
                    "hires": jsn!({
                        "serve.request_us": jsn!({
                            "count": 10u64,
                            "quantiles": jsn!({
                                "p50": 8_000u64, "p90": 20_000u64,
                                "p99": 28_000u64, "p999": 30_000u64,
                            }),
                        }),
                    }),
                })],
            })],
        });
        let md = render_markdown(&record).unwrap();
        assert!(md.contains("srv req p50"));
        assert!(md.contains("8.000ms"));
    }

    #[test]
    fn json_summarizes_per_objective() {
        let j = render_json(&fixture()).unwrap();
        assert_eq!(j["schema"], "abr-report/1");
        let r = &j["runs"][0];
        assert_eq!(r["id"], "table2");
        assert_eq!(r["day_points"], 2);
        assert_eq!(r["slo_summary"][0]["days_ok"], 1);
        assert_eq!(r["slo_summary"][0]["days_violated"], 1);
        assert_eq!(r["slo_summary"][0]["worst_us"], 180_000);
        assert_eq!(r["starved_total"], 2);
        assert_eq!(r["queue_age_max_us"], 90_000);
        assert_eq!(j["runs"][1]["day_points"], 0);
    }

    #[test]
    fn folded_profile_exports_wall_timers_only() {
        let folded = folded_profile(&fixture());
        assert_eq!(folded, "table2;event_loop 123456\n");
    }

    #[test]
    fn run_counters_section_renders_curated_rows_only() {
        let record = jsn!({
            "schema": "abr-bench/1",
            "suite": vec!["array-n2"],
            "runs": vec![jsn!({
                "id": "array-n2",
                "ok": true,
                "sim_days": 1u64,
                "metrics": jsn!({
                    "counters": jsn!({
                        "driver.submitted": 1_000u64,
                        "array.requests": 500u64,
                        "wall.event_loop.ns": 5u64,
                    }),
                    "gauges": jsn!({"array.disks.dead": 1u64}),
                }),
                "day_series": JsonValue::Array(Vec::new()),
            })],
        });
        let md = render_markdown(&record).unwrap();
        assert!(md.contains("### Run counters"));
        assert!(md.contains("| requests submitted | 1000 |"));
        assert!(md.contains("| array requests | 500 |"));
        assert!(md.contains("| disks dead | 1 |"));
        assert!(!md.contains("wall.event_loop"), "wall data must not leak");
        let j = render_json(&record).unwrap();
        assert_eq!(j["runs"][0]["counters"]["array.requests"], 500);
        assert_eq!(j["runs"][0]["counters"]["array.disks.dead"], 1);
        // The fixture's uncurated counters never get a section at all.
        let base = render_markdown(&fixture()).unwrap();
        assert!(!base.contains("### Run counters"));
    }

    #[test]
    fn rejects_foreign_or_empty_records() {
        assert!(render_markdown(&jsn!({"schema": "other/1"})).is_err());
        assert!(
            render_markdown(&jsn!({"schema": "abr-bench/1", "runs": Vec::<JsonValue>::new()}))
                .is_err()
        );
    }
}
