//! Parallel run engine: `RunSpec` / `RunBatch`.
//!
//! A suite invocation (`experiments --jobs N table2 fig8 ...`) is a
//! batch of *independent* runs — experiment regenerators, ablations,
//! the fault sweep. Each run owns its RNG streams (seeded from its
//! config, never from global state), so results are bit-identical no
//! matter which worker executes it or in what order. The only shared
//! mutable state is the [`DayCache`], whose per-key `OnceLock` cells
//! guarantee each expensive day-vector is computed exactly once.
//!
//! The pool is plain `std::thread::scope` + an atomic work index; no
//! external crates. `jobs = 1` degenerates to the old serial loop on
//! the caller's thread (no pool is spawned), preserving the previous
//! behaviour exactly.
//!
//! Instrumentation: every run records wall-clock time and, via
//! [`abr_core::run_meter`], how much *simulated* time it advanced —
//! the sim-time/real-time ratio is the throughput figure that
//! `BENCH_experiments.json` reports per run and for the whole batch.

use crate::ablations::{ablation_ids, run_ablation};
use crate::arrays::{array_ids, run_array};
use crate::faults::run_faults;
use crate::report::Report;
use crate::runs::{Campaign, DayCache};
use crate::serve::{run_serve, serve_ids};
use abr_core::{run_meter, run_meter_reset, RunMeter};
use abr_obs::{
    day_series_reset, day_series_take, registry_clear, registry_snapshot, slo_clear, slo_install,
    trace_start, trace_take, Slo, TraceBuffer, DEFAULT_TRACE_CAPACITY,
};
use abr_sim::{jsn, JsonValue};
use std::panic::AssertUnwindSafe;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// An id that names no experiment, ablation, or extension run.
///
/// The error message lists every valid id so a typo at the CLI is a
/// one-round-trip fix rather than a scavenger hunt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownId {
    /// The offending id as given.
    pub id: String,
}

impl UnknownId {
    /// Wrap an unrecognized id.
    pub fn new(id: impl Into<String>) -> Self {
        UnknownId { id: id.into() }
    }

    /// Every id the suite accepts, in listing order.
    pub fn valid_ids() -> Vec<&'static str> {
        let mut ids: Vec<&'static str> = Campaign::all_ids().to_vec();
        ids.extend_from_slice(ablation_ids());
        ids.push("faults");
        ids.extend_from_slice(array_ids());
        ids.extend_from_slice(serve_ids());
        ids
    }
}

impl std::fmt::Display for UnknownId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "unknown experiment id `{}`; valid ids:", self.id)?;
        for id in Self::valid_ids() {
            writeln!(f, "  {id}")?;
        }
        Ok(())
    }
}

impl std::error::Error for UnknownId {}

/// What kind of run a [`RunSpec`] names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunKind {
    /// A paper table/figure regenerator (`table2`, `fig8`, ...).
    Experiment,
    /// An ablation study (`ablate-*`).
    Ablation,
    /// The fault-injection sweep (`faults`).
    Faults,
    /// An array scale-out run (`array`, `array-n2`).
    Array,
    /// A serving-front-end run (`serve`, `serve-smoke`).
    Serve,
}

impl RunKind {
    /// Stable lower-case name for JSON output.
    pub fn name(self) -> &'static str {
        match self {
            RunKind::Experiment => "experiment",
            RunKind::Ablation => "ablation",
            RunKind::Faults => "faults",
            RunKind::Array => "array",
            RunKind::Serve => "serve",
        }
    }
}

/// One independent unit of work in a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSpec {
    /// The run id (`table2`, `ablate-drift`, `faults`, ...).
    pub id: String,
    /// Which family of runs the id belongs to.
    pub kind: RunKind,
}

impl RunSpec {
    /// Classify an id, rejecting unknown ones up front — a batch with a
    /// typo fails before any work starts, not twenty minutes in.
    pub fn resolve(id: &str) -> Result<RunSpec, UnknownId> {
        let kind = if Campaign::all_ids().contains(&id) {
            RunKind::Experiment
        } else if ablation_ids().contains(&id) {
            RunKind::Ablation
        } else if id == "faults" {
            RunKind::Faults
        } else if array_ids().contains(&id) {
            RunKind::Array
        } else if serve_ids().contains(&id) {
            RunKind::Serve
        } else {
            return Err(UnknownId::new(id));
        };
        Ok(RunSpec {
            id: id.to_string(),
            kind,
        })
    }
}

/// A completed run: its report plus timing instrumentation.
#[derive(Debug)]
pub struct RunOutcome {
    /// What was run.
    pub spec: RunSpec,
    /// The run's report, or the panic message if it died.
    pub report: Result<Report, String>,
    /// Real time the run took on its worker.
    pub wall: Duration,
    /// Simulated time and days the run advanced (thread-local meter).
    pub meter: RunMeter,
    /// Snapshot of the run's metrics registry (counters, gauges,
    /// histograms), taken on its worker right after the run finished.
    pub metrics: JsonValue,
    /// Per-day metric time series (`abr_obs::series`): one point per
    /// simulated day with counter deltas, tail-latency quantiles, and
    /// SLO verdicts. Deterministic — `wall.*` is excluded at source.
    pub day_series: JsonValue,
    /// The run's flight-recorder trace, when the batch traced.
    pub trace: Option<TraceBuffer>,
}

impl RunOutcome {
    /// Simulated seconds per real second — the throughput figure.
    pub fn sim_per_real(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall > 0.0 {
            self.meter.sim.as_secs_f64() / wall
        } else {
            0.0
        }
    }
}

/// The result of executing a [`RunBatch`].
#[derive(Debug)]
pub struct BatchResult {
    /// Outcomes in *spec order*, regardless of completion order.
    pub outcomes: Vec<RunOutcome>,
    /// Worker count the batch ran with.
    pub jobs: usize,
    /// Wall-clock time for the whole batch.
    pub wall: Duration,
}

impl BatchResult {
    /// Sum of per-run wall times — what a serial execution of the same
    /// batch would cost (each run did identical work either way, thanks
    /// to the shared day cache).
    pub fn serial_equiv(&self) -> Duration {
        self.outcomes.iter().map(|o| o.wall).sum()
    }

    /// Observed speedup over the serial-equivalent time.
    pub fn speedup(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall > 0.0 {
            self.serial_equiv().as_secs_f64() / wall
        } else {
            1.0
        }
    }

    /// Ids of runs that panicked.
    pub fn failed_ids(&self) -> Vec<&str> {
        self.outcomes
            .iter()
            .filter(|o| o.report.is_err())
            .map(|o| o.spec.id.as_str())
            .collect()
    }

    /// The machine-readable benchmark record (`BENCH_experiments.json`).
    pub fn bench_json(&self) -> JsonValue {
        let mut runs = JsonValue::Array(Vec::new());
        for o in &self.outcomes {
            // Wall-clock profiling counters (`wall.*`) live here and
            // only here — never in result files or traces, which are
            // byte-compared across machines and worker counts.
            runs.push(jsn!({
                "id": o.spec.id.as_str(),
                "kind": o.spec.kind.name(),
                "ok": o.report.is_ok(),
                "wall_s": o.wall.as_secs_f64(),
                "sim_s": o.meter.sim.as_secs_f64(),
                "sim_days": o.meter.days,
                "sim_per_real": o.sim_per_real(),
                "metrics": o.metrics.clone(),
                "day_series": o.day_series.clone(),
            }));
        }
        let suite: Vec<&str> = self.outcomes.iter().map(|o| o.spec.id.as_str()).collect();
        jsn!({
            "schema": "abr-bench/1",
            "suite": suite,
            "jobs": self.jobs,
            "host": {
                let (cpus, source) = detected_parallelism_with_source();
                jsn!({
                    "os": std::env::consts::OS,
                    "arch": std::env::consts::ARCH,
                    "cpus": cpus,
                    // How `cpus` was determined: "available_parallelism"
                    // for a real probe, "fallback" when detection failed
                    // and 1 was assumed. CI perf records with "fallback"
                    // should not be trusted for throughput comparisons.
                    "cpus_source": source,
                })
            },
            "wall_s": self.wall.as_secs_f64(),
            "serial_equiv_s": self.serial_equiv().as_secs_f64(),
            "speedup_vs_serial": self.speedup(),
            "runs": runs,
        })
    }

    /// Write `BENCH_experiments.json` under `dir`.
    pub fn write_bench(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(
            dir.join("BENCH_experiments.json"),
            self.bench_json().pretty(),
        )
    }

    /// Render every run's trace as one JSONL document, in spec order:
    /// a header line `{"run": id, "events": n, "dropped": d}` per run,
    /// followed by that run's events one per line. Deterministic — the
    /// bytes depend only on the specs, never on `--jobs`.
    pub fn trace_jsonl(&self) -> String {
        let mut out = String::new();
        for o in &self.outcomes {
            let Some(buf) = &o.trace else { continue };
            let header = jsn!({
                "run": o.spec.id.as_str(),
                "events": buf.events.len(),
                "dropped": buf.dropped,
            });
            out.push_str(&header.to_string());
            out.push('\n');
            out.push_str(&buf.to_jsonl());
        }
        out
    }

    /// Total (events retained, events dropped) across every traced run.
    pub fn trace_totals(&self) -> (u64, u64) {
        self.outcomes
            .iter()
            .filter_map(|o| o.trace.as_ref())
            .fold((0, 0), |(e, d), buf| {
                (e + buf.events.len() as u64, d + buf.dropped)
            })
    }

    /// Write the batch trace (see [`BatchResult::trace_jsonl`]) to
    /// `path`, returning the `(events, dropped)` totals.
    pub fn write_trace(&self, path: &Path) -> std::io::Result<(u64, u64)> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.trace_jsonl())?;
        Ok(self.trace_totals())
    }
}

/// The host's available parallelism (the `--jobs` default).
pub fn detected_parallelism() -> usize {
    detected_parallelism_with_source().0
}

/// Available parallelism plus how it was determined:
/// `"available_parallelism"` when [`std::thread::available_parallelism`]
/// succeeded (on Linux this respects cgroup CPU quotas, so containerized
/// CI runners report their real allotment), or `"fallback"` with 1 CPU
/// when the probe failed. Perf records carry the source so a `cpus: 1`
/// from a genuinely single-core runner is distinguishable from failed
/// detection.
pub fn detected_parallelism_with_source() -> (usize, &'static str) {
    match std::thread::available_parallelism() {
        Ok(n) => (n.get(), "available_parallelism"),
        Err(_) => (1, "fallback"),
    }
}

/// A batch of independent runs plus the worker count to execute with.
pub struct RunBatch {
    specs: Vec<RunSpec>,
    jobs: usize,
    cache: Arc<DayCache>,
    trace: bool,
}

impl RunBatch {
    /// Build a batch from raw ids; any unknown id aborts construction.
    /// `jobs = 0` means "use [`detected_parallelism`]".
    pub fn new(ids: &[&str], jobs: usize) -> Result<RunBatch, UnknownId> {
        let specs = ids
            .iter()
            .map(|id| RunSpec::resolve(id))
            .collect::<Result<Vec<_>, _>>()?;
        let jobs = if jobs == 0 {
            detected_parallelism()
        } else {
            jobs
        };
        Ok(RunBatch {
            specs,
            jobs,
            cache: Arc::new(DayCache::default()),
            trace: false,
        })
    }

    /// Enable per-request flight-recorder tracing for every run in the
    /// batch. Traced runs bypass the shared [`DayCache`] (each gets a
    /// private campaign): a cache hit would silently skip the traced
    /// day's I/O, making the trace depend on which worker computed the
    /// day first — the opposite of the determinism the trace promises.
    pub fn set_trace(&mut self, trace: bool) {
        self.trace = trace;
    }

    /// Whether the batch traces its runs.
    pub fn trace(&self) -> bool {
        self.trace
    }

    /// Worker count this batch will use.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The specs in execution-submission order.
    pub fn specs(&self) -> &[RunSpec] {
        &self.specs
    }

    /// Execute every run and return outcomes in spec order.
    ///
    /// With `jobs = 1` (or a single spec) the batch runs serially on
    /// the calling thread. Otherwise a scoped pool of `jobs` workers
    /// pulls specs off an atomic index; a panicking run is caught and
    /// recorded as a failed outcome without taking down its worker.
    pub fn execute(&self) -> BatchResult {
        #[allow(clippy::disallowed_methods)] // batch wall time; reported, never a result input
        let t0 = Instant::now();
        let workers = self.jobs.min(self.specs.len()).max(1);
        let mut outcomes: Vec<Option<RunOutcome>> = Vec::new();
        if workers <= 1 {
            for spec in &self.specs {
                outcomes.push(Some(self.execute_one(spec)));
            }
        } else {
            let slots: Mutex<Vec<Option<RunOutcome>>> =
                Mutex::new((0..self.specs.len()).map(|_| None).collect());
            let next = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        let Some(spec) = self.specs.get(idx) else {
                            break;
                        };
                        let outcome = self.execute_one(spec);
                        slots.lock().expect("batch slots")[idx] = Some(outcome);
                    });
                }
            });
            outcomes = slots.into_inner().expect("batch slots");
        }
        BatchResult {
            outcomes: outcomes
                .into_iter()
                .map(|o| o.expect("every slot filled"))
                .collect(),
            jobs: workers,
            wall: t0.elapsed(),
        }
    }

    /// Run one spec on the current thread, metering it.
    fn execute_one(&self, spec: &RunSpec) -> RunOutcome {
        run_meter_reset();
        // Full clear (not reset): worker threads are reused, and a
        // zero-valued definition left by a previous run would make
        // this run's snapshot depend on scheduling.
        registry_clear();
        day_series_reset();
        slo_install(default_slos());
        if self.trace {
            trace_start(DEFAULT_TRACE_CAPACITY);
        }
        #[allow(clippy::disallowed_methods)] // per-run wall time; reported, never a result input
        let t0 = Instant::now();
        let campaign = if self.trace {
            Campaign::new()
        } else {
            Campaign::with_cache(Arc::clone(&self.cache))
        };
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| match spec.kind {
            RunKind::Experiment => campaign.run(&spec.id),
            RunKind::Ablation => run_ablation(&spec.id),
            RunKind::Faults => Ok(run_faults()),
            RunKind::Array => run_array(&spec.id),
            RunKind::Serve => run_serve(&spec.id),
        }));
        let wall = t0.elapsed();
        // Always harvest, even after a panic: worker threads are reused
        // and a leaked recorder (or series/objective set) would bleed
        // into the next run.
        let trace = trace_take();
        let day_series = day_series_take();
        slo_clear();
        let report = match result {
            // `resolve()` vetted the id, so the inner Err is unreachable
            // in practice; fold it into the failure path anyway.
            Ok(inner) => inner.map_err(|e| e.to_string()),
            Err(panic) => Err(panic_message(panic)),
        };
        RunOutcome {
            spec: spec.clone(),
            report,
            wall,
            meter: run_meter(),
            metrics: registry_snapshot(),
            day_series,
            trace,
        }
    }
}

/// The default tail-latency objective set installed for every bench
/// run. Objectives are recorded, not gating: a violated SLO shows up in
/// the day series and the run report, never as a failed run. Metrics an
/// objective names but a run never touches pass vacuously, so driver
/// SLOs are harmless on array runs and vice versa.
pub fn default_slos() -> Vec<Slo> {
    [
        "p99(driver.service_us) < 150ms",
        "p999(driver.service_us) < 1s",
        "p99(driver.queueing_us) < 500ms",
        "p99(array.request_us) < 250ms",
        "p999(serve.request_us) < 2s",
        "p99(serve.queue_us) < 1s",
    ]
    .iter()
    .map(|s| Slo::parse(s).expect("default SLO parses"))
    .collect()
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked".to_string()
    }
}

/// Percentage deltas on sub-millisecond runs are pure scheduler noise;
/// a run only counts as regressed when it also slowed by at least this
/// much absolute wall time.
const REGRESSION_NOISE_FLOOR_S: f64 = 0.05;

/// High-resolution metrics whose p99 `bench compare` reports as
/// informational deltas alongside the gating wall-time table.
const METRIC_DELTA_ALLOWLIST: &[&str] = &[
    "driver.service_us",
    "driver.queueing_us",
    "array.request_us",
    "serve.request_us",
    "serve.queue_us",
];

/// Compare two `BENCH_experiments.json` files run-by-run.
///
/// A run regresses when its wall time in `new` exceeds its wall time in
/// `old` by more than `threshold_pct` percent AND by at least
/// `REGRESSION_NOISE_FLOOR_S` seconds — tiny runs jitter by large
/// percentages without meaning anything. Runs only in `new` are
/// reported as `NEW` (informational — suites grow); runs only in `old`
/// are reported as `DISAPPEARED` and treated as failures by the CLI,
/// since a silently vanished run would otherwise let a regression hide
/// by renaming.
#[derive(Debug)]
pub struct BenchComparison {
    /// Human-readable comparison table.
    pub text: String,
    /// Ids whose wall time regressed beyond the threshold.
    pub regressions: Vec<String>,
    /// Ids present in `new` but not in the baseline (informational).
    pub added: Vec<String>,
    /// Ids present in the baseline but missing from `new` (an error).
    pub disappeared: Vec<String>,
}

/// Diff two BENCH files; `Err` on unreadable/unparseable input.
pub fn bench_compare(
    old_path: &Path,
    new_path: &Path,
    threshold_pct: f64,
) -> Result<BenchComparison, String> {
    let load = |p: &Path| -> Result<JsonValue, String> {
        let bytes = std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?;
        JsonValue::parse(&bytes).map_err(|e| format!("{}: {e}", p.display()))
    };
    let old = load(old_path)?;
    let new = load(new_path)?;
    let runs = |v: &JsonValue| -> Vec<(String, f64, bool)> {
        v["runs"]
            .as_array()
            .map(|rs| {
                rs.iter()
                    .filter_map(|r| {
                        Some((
                            r["id"].as_str()?.to_string(),
                            r["wall_s"].as_f64()?,
                            r["ok"].as_bool().unwrap_or(true),
                        ))
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    let old_runs = runs(&old);
    let new_runs = runs(&new);
    if old_runs.is_empty() {
        return Err(format!("{}: no runs recorded", old_path.display()));
    }
    if new_runs.is_empty() {
        return Err(format!("{}: no runs recorded", new_path.display()));
    }

    let mut text = String::new();
    let mut regressions = Vec::new();
    let mut added = Vec::new();
    let mut disappeared = Vec::new();
    text.push_str(&format!(
        "{:<20} {:>10} {:>10} {:>8}  verdict (threshold {threshold_pct:.0}%)\n",
        "run", "old s", "new s", "delta"
    ));
    for (id, new_wall, new_ok) in &new_runs {
        match old_runs.iter().find(|(oid, _, _)| oid == id) {
            Some((_, old_wall, _)) => {
                let delta_pct = if *old_wall > 0.0 {
                    (new_wall - old_wall) / old_wall * 100.0
                } else {
                    0.0
                };
                let over_pct = delta_pct > threshold_pct;
                let over_floor = new_wall - old_wall >= REGRESSION_NOISE_FLOOR_S;
                let regressed = *new_ok && over_pct && over_floor;
                text.push_str(&format!(
                    "{id:<20} {old_wall:>10.3} {new_wall:>10.3} {delta_pct:>+7.1}%  {}\n",
                    if !new_ok {
                        "FAILED in new"
                    } else if regressed {
                        "REGRESSED"
                    } else if over_pct {
                        "ok (within noise floor)"
                    } else {
                        "ok"
                    }
                ));
                if regressed || !new_ok {
                    regressions.push(id.clone());
                }
            }
            None => {
                text.push_str(&format!(
                    "{id:<20} {:>10} {new_wall:>10.3} {:>8}  NEW (no baseline)\n",
                    "-", "-"
                ));
                added.push(id.clone());
            }
        }
    }
    for (id, _, _) in &old_runs {
        if !new_runs.iter().any(|(nid, _, _)| nid == id) {
            text.push_str(&format!(
                "{id:<20} {:>10} {:>10} {:>8}  DISAPPEARED from new file\n",
                "-", "-", "-"
            ));
            disappeared.push(id.clone());
        }
    }
    let (ow, nw) = (old["wall_s"].as_f64(), new["wall_s"].as_f64());
    if let (Some(ow), Some(nw)) = (ow, nw) {
        text.push_str(&format!(
            "total wall: {ow:.3} s -> {nw:.3} s ({:+.1}%)\n",
            if ow > 0.0 {
                (nw - ow) / ow * 100.0
            } else {
                0.0
            }
        ));
    }

    // Informational throughput / tail-latency deltas. These never feed
    // `regressions` — wall time stays the only gate — but a wall
    // regression with flat sim_per_real (host noise) reads differently
    // from one where throughput and p99 moved together (real change).
    let find = |v: &JsonValue, id: &str| -> Option<JsonValue> {
        v["runs"]
            .as_array()?
            .iter()
            .find(|r| r["id"].as_str() == Some(id))
            .cloned()
    };
    let mut info = String::new();
    for (id, _, _) in &new_runs {
        let (Some(o), Some(n)) = (find(&old, id), find(&new, id)) else {
            continue;
        };
        if let (Some(os), Some(ns)) = (o["sim_per_real"].as_f64(), n["sim_per_real"].as_f64()) {
            if os > 0.0 {
                info.push_str(&format!(
                    "{id:<20} sim_per_real {os:>12.1} -> {ns:>12.1} ({:+.1}%)\n",
                    (ns - os) / os * 100.0
                ));
            }
        }
        for metric in METRIC_DELTA_ALLOWLIST {
            let p99 = |r: &JsonValue| r["metrics"]["hires"][*metric]["quantiles"]["p99"].as_u64();
            if let (Some(op), Some(np)) = (p99(&o), p99(&n)) {
                if op > 0 {
                    info.push_str(&format!(
                        "{id:<20} {metric} p99 {op:>10}us -> {np:>10}us ({:+.1}%)\n",
                        (np as f64 - op as f64) / op as f64 * 100.0
                    ));
                }
            }
        }
    }
    if !info.is_empty() {
        text.push_str("metric deltas (informational, not gated):\n");
        text.push_str(&info);
    }
    Ok(BenchComparison {
        text,
        regressions,
        added,
        disappeared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_classifies_every_family() {
        assert_eq!(
            RunSpec::resolve("table2").unwrap().kind,
            RunKind::Experiment
        );
        assert_eq!(
            RunSpec::resolve("ablate-drift").unwrap().kind,
            RunKind::Ablation
        );
        assert_eq!(RunSpec::resolve("faults").unwrap().kind, RunKind::Faults);
        assert_eq!(RunSpec::resolve("array").unwrap().kind, RunKind::Array);
        assert_eq!(RunSpec::resolve("array-n2").unwrap().kind, RunKind::Array);
        assert_eq!(RunSpec::resolve("nope").unwrap_err().id, "nope");
    }

    #[test]
    fn unknown_id_lists_every_valid_id() {
        let msg = UnknownId::new("bogus").to_string();
        for id in UnknownId::valid_ids() {
            assert!(msg.contains(id), "message must mention {id}");
        }
    }

    #[test]
    fn batch_rejects_bad_ids_up_front() {
        let err = RunBatch::new(&["table1", "tabel2"], 2)
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err.id, "tabel2");
    }

    #[test]
    fn serial_and_parallel_outcomes_stay_in_spec_order() {
        let ids = ["fig3", "table1"];
        for jobs in [1, 4] {
            let batch = RunBatch::new(&ids, jobs).unwrap();
            let result = batch.execute();
            let got: Vec<&str> = result.outcomes.iter().map(|o| o.spec.id.as_str()).collect();
            assert_eq!(got, ids, "jobs={jobs}");
            assert!(result.failed_ids().is_empty());
        }
    }

    #[test]
    fn bench_json_records_per_run_walls_and_host() {
        let batch = RunBatch::new(&["table1"], 1).unwrap();
        let result = batch.execute();
        let j = result.bench_json();
        assert_eq!(j["schema"], "abr-bench/1");
        assert_eq!(j["jobs"], 1);
        assert_eq!(j["runs"][0]["id"], "table1");
        assert_eq!(j["runs"][0]["ok"], true);
        assert!(j["runs"][0]["wall_s"].as_f64().unwrap() >= 0.0);
        assert!(j["host"]["cpus"].as_u64().unwrap() >= 1);
        // The record must round-trip through our own parser so that
        // bench-compare can read what write_bench wrote.
        let reparsed = JsonValue::parse(&j.pretty()).unwrap();
        assert_eq!(reparsed["runs"][0]["id"], "table1");
    }

    #[test]
    fn compare_flags_regressions_beyond_threshold() {
        let dir = std::env::temp_dir().join("abr-bench-compare-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mk = |wall: f64| {
            jsn!({
                "schema": "abr-bench/1",
                "wall_s": wall,
                "runs": vec![jsn!({"id": "table1", "ok": true, "wall_s": wall})],
            })
        };
        let a = dir.join("a.json");
        let b = dir.join("b.json");
        std::fs::write(&a, mk(1.0).pretty()).unwrap();
        std::fs::write(&b, mk(1.5).pretty()).unwrap();
        let cmp = bench_compare(&a, &b, 20.0).unwrap();
        assert_eq!(cmp.regressions, vec!["table1".to_string()]);
        let cmp = bench_compare(&a, &b, 60.0).unwrap();
        assert!(cmp.regressions.is_empty());
        // Reversed direction is an improvement, never a regression.
        let cmp = bench_compare(&b, &a, 20.0).unwrap();
        assert!(cmp.regressions.is_empty());
        // A huge percentage on a tiny run is scheduler noise, not a
        // regression: the absolute delta sits under the floor.
        std::fs::write(&a, mk(0.0001).pretty()).unwrap();
        std::fs::write(&b, mk(0.0100).pretty()).unwrap();
        let cmp = bench_compare(&a, &b, 20.0).unwrap();
        assert!(cmp.regressions.is_empty());
        assert!(cmp.text.contains("within noise floor"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compare_reports_added_and_disappeared_runs() {
        let dir = std::env::temp_dir().join("abr-bench-compare-drift-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mk = |ids: &[&str]| {
            jsn!({
                "schema": "abr-bench/1",
                "wall_s": 1.0,
                "runs": ids
                    .iter()
                    .map(|id| jsn!({"id": *id, "ok": true, "wall_s": 1.0}))
                    .collect::<Vec<_>>(),
            })
        };
        let old = dir.join("old.json");
        let new = dir.join("new.json");
        std::fs::write(&old, mk(&["table1", "table2"]).pretty()).unwrap();
        std::fs::write(&new, mk(&["table2", "fig8"]).pretty()).unwrap();
        let cmp = bench_compare(&old, &new, 25.0).unwrap();
        // fig8 is new (informational), table1 disappeared (an error for
        // the CLI), table2 matched cleanly.
        assert_eq!(cmp.added, vec!["fig8".to_string()]);
        assert_eq!(cmp.disappeared, vec!["table1".to_string()]);
        assert!(cmp.regressions.is_empty());
        assert!(cmp.text.contains("NEW"));
        assert!(cmp.text.contains("DISAPPEARED"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compare_prints_metric_deltas_without_gating_on_them() {
        let dir = std::env::temp_dir().join("abr-bench-compare-metrics-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mk = |spr: f64, p99: u64| {
            jsn!({
                "schema": "abr-bench/1",
                "wall_s": 1.0,
                "runs": vec![jsn!({
                    "id": "table2",
                    "ok": true,
                    "wall_s": 1.0,
                    "sim_per_real": spr,
                    "metrics": jsn!({
                        "hires": jsn!({
                            "driver.service_us": jsn!({
                                "quantiles": jsn!({"p99": p99}),
                            }),
                        }),
                    }),
                })],
            })
        };
        let a = dir.join("a.json");
        let b = dir.join("b.json");
        // Throughput halves and tail latency doubles, but wall time is
        // flat: informational lines appear, regressions stay empty.
        std::fs::write(&a, mk(2000.0, 40_000).pretty()).unwrap();
        std::fs::write(&b, mk(1000.0, 80_000).pretty()).unwrap();
        let cmp = bench_compare(&a, &b, 25.0).unwrap();
        assert!(cmp.regressions.is_empty());
        assert!(cmp.text.contains("sim_per_real"));
        assert!(cmp.text.contains("-50.0%"));
        assert!(cmp.text.contains("driver.service_us p99"));
        assert!(cmp.text.contains("+100.0%"));
        // Files without metrics (older schema) skip the section cleanly.
        let bare = jsn!({
            "schema": "abr-bench/1",
            "wall_s": 1.0,
            "runs": vec![jsn!({"id": "table2", "ok": true, "wall_s": 1.0})],
        });
        std::fs::write(&a, bare.pretty()).unwrap();
        std::fs::write(&b, bare.pretty()).unwrap();
        let cmp = bench_compare(&a, &b, 25.0).unwrap();
        assert!(!cmp.text.contains("metric deltas"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
