//! Regenerate the paper's tables and figures.
//!
//! ```text
//! experiments                 # run everything, write results/
//! experiments table2 fig8     # run selected ids
//! experiments --list          # list ids
//! ```

use abr_bench::ablations;
use abr_bench::runs::Campaign;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for id in Campaign::all_ids() {
            println!("{id}");
        }
        for id in ablations::ablation_ids() {
            println!("{id}");
        }
        println!("faults");
        return;
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "--ablations") {
        ablations::ablation_ids().to_vec()
    } else if args.is_empty() {
        Campaign::all_ids().to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let results_dir = PathBuf::from("results");
    let mut campaign = Campaign::new();
    for id in ids {
        let t0 = std::time::Instant::now();
        let report = if id.starts_with("ablate-") {
            ablations::run_ablation(id)
        } else if id == "faults" {
            abr_bench::faults::run_faults()
        } else {
            campaign.run(id)
        };
        eprintln!("[{id} took {:.1?}]", t0.elapsed());
        println!("{}", report.text);
        if let Err(e) = report.save(&results_dir) {
            eprintln!("warning: could not save {id}: {e}");
        }
    }
}
