//! Regenerate the paper's tables and figures.
//!
//! ```text
//! experiments                        # run everything, write results/
//! experiments table2 fig8            # run selected ids
//! experiments --jobs 4 table2 fig8   # run them on 4 workers
//! experiments --jobs 1 table2        # force the serial path
//! experiments --trace out.jsonl fig8 # also record per-request traces
//! experiments --list                 # list ids
//! experiments --ablations            # the ablation suite
//! experiments bench-compare OLD NEW [--threshold-pct P]
//! experiments lint                   # static-analysis gate (abr-lint)
//! ```
//!
//! Every suite invocation writes `results/<id>.{txt,json}` plus a
//! machine-readable `results/BENCH_experiments.json` with per-run wall
//! times, sim-time throughput, and the speedup over a serial execution.
//! Results are bit-identical for any `--jobs` value: runs are seeded
//! independently, and shared day-vectors come from a compute-once cache.
//!
//! `--trace FILE` turns on the flight recorder for every run and writes
//! one JSONL document (per-run header line, then one event per line) in
//! spec order — byte-identical for any `--jobs` value. An empty trace or
//! a nonzero drop count is an error, so CI can gate on the exit code.
//! Inspect the file with `abrctl trace FILE`.

use abr_bench::ablations;
use abr_bench::arrays;
use abr_bench::engine::{bench_compare, detected_parallelism, RunBatch};
use abr_bench::runs::Campaign;
use abr_bench::serve;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: experiments [--jobs N] [--trace FILE] [--list | --ablations | <id>...]\n\
     \x20      experiments bench-compare <old.json> <new.json> [--threshold-pct P]\n\
     \x20      experiments lint [--json] [--jobs N] [--write-budget] [--write-baseline]"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("bench-compare") {
        return compare_main(&args[1..]);
    }

    if args.first().map(String::as_str) == Some("lint") {
        return lint_main(&args[1..]);
    }

    if args.iter().any(|a| a == "--list") {
        for id in Campaign::all_ids() {
            println!("{id}");
        }
        for id in ablations::ablation_ids() {
            println!("{id}");
        }
        println!("faults");
        for id in arrays::array_ids() {
            println!("{id}");
        }
        for id in serve::serve_ids() {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    let mut jobs: usize = 0; // 0 = autodetect
    let mut ablations_only = false;
    let mut trace_path: Option<PathBuf> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" | "-j" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("error: --jobs needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                };
                if n == 0 {
                    eprintln!("error: --jobs must be at least 1\n{}", usage());
                    return ExitCode::FAILURE;
                }
                jobs = n;
            }
            "--trace" => {
                let Some(path) = it.next() else {
                    eprintln!("error: --trace needs an output file\n{}", usage());
                    return ExitCode::FAILURE;
                };
                trace_path = Some(PathBuf::from(path));
            }
            "--ablations" => ablations_only = true,
            other if other.starts_with('-') => {
                eprintln!("error: unknown flag {other}\n{}", usage());
                return ExitCode::FAILURE;
            }
            id => ids.push(id.to_string()),
        }
    }

    let ids: Vec<&str> = if ablations_only {
        ablations::ablation_ids().to_vec()
    } else if ids.is_empty() {
        Campaign::all_ids().to_vec()
    } else {
        ids.iter().map(String::as_str).collect()
    };

    let mut batch = match RunBatch::new(&ids, jobs) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    batch.set_trace(trace_path.is_some());

    eprintln!(
        "[{} runs on {} worker(s); host parallelism {}]",
        batch.specs().len(),
        batch.jobs(),
        detected_parallelism()
    );
    let result = batch.execute();

    // Print and save in spec order, on the main thread, so output is
    // deterministic no matter how the workers interleaved.
    let results_dir = PathBuf::from("results");
    let mut failed = false;
    for outcome in &result.outcomes {
        match &outcome.report {
            Ok(report) => {
                eprintln!(
                    "[{} took {:.1?}; {:.0}x real time]",
                    outcome.spec.id,
                    outcome.wall,
                    outcome.sim_per_real()
                );
                println!("{}", report.text);
                if let Err(e) = report.save(&results_dir) {
                    eprintln!("warning: could not save {}: {e}", outcome.spec.id);
                }
            }
            Err(message) => {
                eprintln!("error: run {} failed: {message}", outcome.spec.id);
                failed = true;
            }
        }
    }

    eprintln!(
        "[batch: {:.1?} wall, {:.1?} serial-equivalent, {:.2}x speedup]",
        result.wall,
        result.serial_equiv(),
        result.speedup()
    );
    if let Err(e) = result.write_bench(&results_dir) {
        eprintln!("warning: could not write BENCH_experiments.json: {e}");
    }

    if let Some(path) = &trace_path {
        match result.write_trace(path) {
            Ok((events, dropped)) => {
                eprintln!(
                    "[trace: {events} events, {dropped} dropped -> {}]",
                    path.display()
                );
                // A trace you asked for but cannot use is an error: CI
                // gates on this exit code.
                if events == 0 {
                    eprintln!("error: trace is empty");
                    failed = true;
                }
                if dropped > 0 {
                    eprintln!("error: trace dropped {dropped} events (flight recorder overflow)");
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("error: could not write trace {}: {e}", path.display());
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The determinism/panic-safety gate, wired in next to the perf gates so
/// one binary can drive all of CI. Same behaviour as
/// `cargo run -p abr-lint -- --workspace`: sorted `file:line` findings
/// (or the `--json` machine report), nonzero exit on any violation.
/// `--write-budget`/`--write-baseline` rewrite the ratchet files — only
/// downward; a write is refused when findings increased.
fn lint_main(args: &[String]) -> ExitCode {
    let mut opts = abr_lint::LintOptions::default();
    let mut json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--jobs" | "-j" => {
                let Some(n) = it
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|n| *n > 0)
                else {
                    eprintln!("error: --jobs needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                };
                opts.jobs = n;
            }
            "--write-budget" | "--update-budget" => opts.write_budget = true,
            "--write-baseline" => opts.write_baseline = true,
            other => {
                eprintln!("error: unknown lint argument {other}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let Some(root) = abr_lint::find_root(&cwd) else {
        eprintln!(
            "error: could not find the workspace root above {}",
            cwd.display()
        );
        return ExitCode::FAILURE;
    };
    let report = match abr_lint::run_lint(&root, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render());
    }
    if report.diags.is_empty() {
        eprintln!("abr-lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("abr-lint: {} violation(s)", report.diags.len());
        ExitCode::FAILURE
    }
}

fn compare_main(args: &[String]) -> ExitCode {
    let mut threshold_pct = 25.0;
    let mut paths: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold-pct" => {
                let Some(p) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("error: --threshold-pct needs a number\n{}", usage());
                    return ExitCode::FAILURE;
                };
                threshold_pct = p;
            }
            other if other.starts_with('-') => {
                eprintln!("error: unknown flag {other}\n{}", usage());
                return ExitCode::FAILURE;
            }
            p => paths.push(p),
        }
    }
    let [old, new] = paths.as_slice() else {
        eprintln!("error: bench-compare takes exactly two files\n{}", usage());
        return ExitCode::FAILURE;
    };
    match bench_compare(Path::new(old), Path::new(new), threshold_pct) {
        Ok(cmp) => {
            print!("{}", cmp.text);
            if !cmp.added.is_empty() {
                println!("new runs (informational): {}", cmp.added.join(", "));
            }
            let mut ok = true;
            if !cmp.regressions.is_empty() {
                println!("regressions: {}", cmp.regressions.join(", "));
                ok = false;
            }
            if !cmp.disappeared.is_empty() {
                println!(
                    "baseline runs missing from new record: {}",
                    cmp.disappeared.join(", ")
                );
                ok = false;
            }
            if ok {
                println!("no regressions beyond {threshold_pct:.0}%");
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
