//! Workload calibration scratchpad.
//!
//! Runs one off day + one on day of a profile on a disk and prints the
//! Table 3 shaped row against the paper's targets, plus skew measures.
//! Used to tune the synthetic profiles; the real regenerators live in
//! `experiments.rs`.

use abr_core::{Experiment, ExperimentConfig};
use abr_disk::models;
use abr_workload::WorkloadProfile;

/// The configs this scratchpad knows, in listing order.
const CONFIGS: [&str; 4] = [
    "toshiba-system",
    "fujitsu-system",
    "toshiba-users",
    "fujitsu-users",
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("toshiba-system");
    let (disk, profile, n_blocks) = match which {
        "toshiba-system" => (models::toshiba_mk156f(), WorkloadProfile::system_fs(), 1018),
        "fujitsu-system" => (models::fujitsu_m2266(), WorkloadProfile::system_fs(), 3500),
        "toshiba-users" => (models::toshiba_mk156f(), WorkloadProfile::users_fs(), 1018),
        "fujitsu-users" => (models::fujitsu_m2266(), WorkloadProfile::users_fs(), 3500),
        other => {
            eprintln!("calibrate: unknown config `{other}`; valid configs:");
            for c in CONFIGS {
                eprintln!("  {c}");
            }
            std::process::exit(2);
        }
    };
    let cfg = ExperimentConfig::new(disk, profile);
    eprintln!("building {which} ...");
    #[allow(clippy::disallowed_methods)]
    let t0 = std::time::Instant::now(); // abr-lint: allow(D002, operator-facing progress timing on stderr; never folded into results)
    let mut e = Experiment::new(cfg);
    eprintln!("setup took {:?}", t0.elapsed());

    #[allow(clippy::disallowed_methods)]
    let t0 = std::time::Instant::now(); // abr-lint: allow(D002, operator-facing progress timing on stderr; never folded into results)
    let off = e.run_day();
    eprintln!("off day took {:?}", t0.elapsed());
    e.rearrange_for_next_day(n_blocks);
    #[allow(clippy::disallowed_methods)]
    let t0 = std::time::Instant::now(); // abr-lint: allow(D002, operator-facing progress timing on stderr; never folded into results)
    let on = e.run_day();
    eprintln!("on day took {:?}", t0.elapsed());
    let (cov_all, cov_reads) = e.remap_coverage();
    println!(
        "on-day remap coverage: all {:.1}% reads {:.1}%",
        cov_all * 100.0,
        cov_reads * 100.0
    );

    let row = |label: &str, m: &abr_core::DayMetrics| {
        println!(
            "{label:4} n={:6} reads={:6} writes={:6} | fcfs_dist={:5.0} dist={:5.0} zero={:4.1}% | fcfs_seek={:5.2} seek={:5.2} svc={:5.2} wait={:6.2} | rot={:4.2} xfer={:5.2}",
            m.all.n, m.reads.n, m.writes.n,
            m.all.fcfs_seek_dist, m.all.seek_dist, m.all.zero_seek_pct,
            m.all.fcfs_seek_ms, m.all.seek_ms, m.all.service_ms, m.all.waiting_ms,
            m.all.rotation_ms, m.all.transfer_ms,
        );
        println!(
            "     reads-only: dist={:5.0} zero={:4.1}% seek={:5.2} svc={:5.2} wait={:6.2} reserved={:4.1}%/{:4.1}%",
            m.reads.seek_dist, m.reads.zero_seek_pct, m.reads.seek_ms,
            m.reads.service_ms, m.reads.waiting_ms,
            m.reads.reserved_frac * 100.0, m.all.reserved_frac * 100.0,
        );
        println!(
            "     skew: active={} top100={:4.1}% top21={:4.1}% (one cylinder)",
            m.active_blocks(),
            m.top_k_share(100) * 100.0,
            m.top_k_share(21) * 100.0,
        );
    };
    row("OFF", &off);
    row("ON", &on);
    println!();
    println!("paper targets (Toshiba system fs, Table 3):");
    println!(
        "  OFF: fcfs_dist=220 dist=173 zero=23% fcfs_seek=20.92 seek=18.21 svc=38.41 wait=87.30"
    );
    println!(
        "  ON : fcfs_dist=225 dist=8   zero=88% fcfs_seek=21.46 seek=1.55  svc=22.95 wait=50.03"
    );
    println!("  skew: top100 ~ 90%, active < 2000");
    println!("paper targets (Fujitsu system fs, Table 3): OFF dist=315 seek=8.01 svc=21.15 wait=69.98 | ON dist=27 zero=76% seek=1.16 svc=14.08 wait=35.65");
}
