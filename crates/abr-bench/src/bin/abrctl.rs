//! `abrctl` — the user-level control programs of the paper's Figure 1,
//! operating on persistent disk images.
//!
//! The paper's system is a modified kernel driver steered by user-level
//! processes (the reference stream analyzer and the block arranger) via
//! ioctls. `abrctl` plays those processes against a disk image file:
//!
//! ```text
//! abrctl create  disk.img [--disk toshiba|fujitsu] [--reserved N]
//! abrctl info    disk.img
//! abrctl workload disk.img [--profile system|users|tiny] [--minutes N]
//!                          [--seed S] [--trace out.jsonl]
//! abrctl analyze disk.img [--top N]
//! abrctl rearrange disk.img [--blocks N] [--policy organ|interleaved|serial]
//!                           [--incremental]
//! abrctl clean   disk.img
//! abrctl stats   disk.img
//! abrctl monitor-dump disk.img
//! abrctl replay  disk.img trace.jsonl [--blocks N]
//! abrctl trace   spans.jsonl [--top N]
//! abrctl array   disk0.img disk1.img ... [--redundancy none|mirror|rotparity]
//! abrctl report  BENCH_experiments.json [--json] [--folded out.folded]
//! ```
//!
//! Two different "traces" exist: `workload --trace` writes a *workload*
//! trace (submitted requests, replayable with `abrctl replay`), while
//! `abrctl trace` summarizes a *span* trace produced by
//! `experiments --trace` — per-request lifecycle events from the
//! flight recorder (see `abr-obs`).
//!
//! State carried between invocations: the disk image itself (label, block
//! table, all sector data), `<image>.counts.json` (the analyzer's
//! reference counts from the last workload run — the request-monitor
//! contents a real analyzer process would have accumulated) and
//! `<image>.stats.json` (the last run's day metrics).
//!
//! `workload` persists the file system and workload-generator state in
//! `<image>.fs.json` / `<image>.wl.json`: a second invocation resumes
//! the same population (with the configured day-to-day drift applied)
//! instead of rebuilding it, so consecutive runs model consecutive days.
//! Pass `--fresh` to rebuild from scratch.

use abr_core::analyzer::HotBlock;
use abr_core::arranger::BlockArranger;
use abr_core::placement::PolicyKind;
use abr_core::replay::{replay, ReplayConfig};
use abr_core::DayMetrics;
use abr_disk::{image, models, Disk, DiskLabel, DiskModel};
use abr_driver::{AdaptiveDriver, DriverConfig, Ioctl, IoctlReply, RequestMonitor};
use abr_fs::{FileSystem, FsConfig, MountMode};
use abr_obs::{ObsEvent, RequestSpan};
use abr_sim::{jsn, JsonValue, SimDuration, SimRng, SimTime};
use abr_workload::{TraceEvent, TraceLog, WorkloadProfile, WorkloadState};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("abrctl: {e}");
            ExitCode::FAILURE
        }
    }
}

type Error = Box<dyn std::error::Error>;

fn run(args: &[String]) -> Result<(), Error> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "create" => create(rest),
        "info" => info(rest),
        "workload" => workload(rest),
        "analyze" => analyze(rest),
        "rearrange" => rearrange(rest),
        "clean" => clean(rest),
        "stats" => stats(rest),
        "monitor-dump" => monitor_dump(rest),
        "replay" => replay_cmd(rest),
        "trace" => trace_summary(rest),
        "array" => array_status(rest),
        "report" => report_cmd(rest),
        "help" | "--help" | "-h" => {
            eprintln!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage()).into()),
    }
}

fn usage() -> Box<dyn std::error::Error> {
    "usage: abrctl <create|info|workload|analyze|rearrange|clean|stats|monitor-dump|replay|trace|array|report|help> <image|file>... [options]"
        .into()
}

/// Pull `--flag value` out of an argument list.
fn opt(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn image_path(args: &[String]) -> Result<PathBuf, Error> {
    args.iter()
        .find(|a| !a.starts_with("--"))
        .map(PathBuf::from)
        .ok_or_else(|| "missing disk image path".into())
}

fn driver_config() -> DriverConfig {
    DriverConfig {
        block_size: 8192,
        scheduler: abr_driver::SchedulerKind::Scan,
        monitor_capacity: 1 << 21,
        table_max_entries: 8192,
        ..DriverConfig::default()
    }
}

fn load_driver(path: &Path) -> Result<AdaptiveDriver, Error> {
    let file =
        std::fs::File::open(path).map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    let disk = image::load(std::io::BufReader::new(file))?;
    Ok(AdaptiveDriver::attach(disk, driver_config())?)
}

fn save_driver(driver: AdaptiveDriver, path: &Path) -> Result<(), Error> {
    let disk = driver.crash(); // detach; all persistent state is on-disk
    let file = std::fs::File::create(path)?;
    image::save(&disk, std::io::BufWriter::new(file))?;
    Ok(())
}

fn disk_model(args: &[String]) -> Result<DiskModel, Error> {
    match opt(args, "--disk").as_deref() {
        None | Some("toshiba") => Ok(models::toshiba_mk156f()),
        Some("fujitsu") => Ok(models::fujitsu_m2266()),
        Some("tiny") => Ok(models::tiny_test_disk()),
        Some(other) => Err(format!("unknown disk `{other}` (toshiba|fujitsu|tiny)").into()),
    }
}

fn counts_path(img: &Path) -> PathBuf {
    img.with_extension("counts.json")
}

fn fs_state_path(img: &Path) -> PathBuf {
    img.with_extension("fs.json")
}

fn wl_state_path(img: &Path) -> PathBuf {
    img.with_extension("wl.json")
}

fn stats_path(img: &Path) -> PathBuf {
    img.with_extension("stats.json")
}

fn reqtable_path(img: &Path) -> PathBuf {
    img.with_extension("reqtable.json")
}

/// Dump the raw request-monitor table next to the image so
/// `monitor-dump` can show exactly what the analyzer's clearing ioctl
/// is about to consume.
fn write_reqtable_sidecar(img: &Path, mon: &RequestMonitor) -> Result<(), Error> {
    let mut records = JsonValue::Array(Vec::new());
    for r in mon.records() {
        records.push(jsn!({
            "block": r.block,
            "sectors": r.n_sectors,
            "dir": if r.dir.is_read() { "r" } else { "w" },
        }));
    }
    let dump = jsn!({
        "records": records,
        "dropped": mon.dropped(),
        "suspension_episodes": mon.suspension_episodes(),
    });
    std::fs::write(reqtable_path(img), dump.pretty())?;
    Ok(())
}

// ----- commands --------------------------------------------------------

fn create(args: &[String]) -> Result<(), Error> {
    let path = image_path(args)?;
    let model = disk_model(args)?;
    let reserved: u32 = match opt(args, "--reserved") {
        Some(s) => s.parse()?,
        None => {
            if model.geometry.cylinders >= 1200 {
                80
            } else if model.geometry.cylinders >= 500 {
                48
            } else {
                10
            }
        }
    };
    let label = if reserved > 0 {
        DiskLabel::rearranged_aligned(model.geometry, reserved, 16)
    } else {
        DiskLabel::whole_disk(model.geometry)
    };
    let mut disk = Disk::new(model);
    AdaptiveDriver::format(&mut disk, &label, &driver_config());
    let file = std::fs::File::create(&path)?;
    image::save(&disk, std::io::BufWriter::new(file))?;
    // A fresh image invalidates any sidecar state from a previous image
    // at the same path.
    for side in [
        counts_path(&path),
        stats_path(&path),
        fs_state_path(&path),
        wl_state_path(&path),
        reqtable_path(&path),
    ] {
        let _ = std::fs::remove_file(side);
    }
    println!(
        "created {}: {} with {} reserved cylinders",
        path.display(),
        disk.model().name,
        reserved
    );
    Ok(())
}

fn info(args: &[String]) -> Result<(), Error> {
    let path = image_path(args)?;
    let driver = load_driver(&path)?;
    let label = driver.label();
    let g = label.physical;
    println!("image     : {}", path.display());
    println!(
        "disk      : {} ({} cyl x {} trk x {} sect, {:.0} MB)",
        driver.disk().model().name,
        g.cylinders,
        g.tracks_per_cylinder,
        g.sectors_per_track,
        g.capacity_bytes() as f64 / (1 << 20) as f64
    );
    match (label.reserved, driver.layout()) {
        (Some(r), Some(layout)) => {
            println!(
                "reserved  : cylinders {}..{} ({} slots of 8 KB)",
                r.start_cylinder,
                r.start_cylinder + r.n_cylinders,
                layout.n_slots
            );
        }
        (Some(r), None) => println!(
            "reserved  : cylinders {}..{} (layout unavailable)",
            r.start_cylinder,
            r.start_cylinder + r.n_cylinders
        ),
        (None, _) => println!("reserved  : none (plain disk)"),
    }
    println!(
        "block tbl : {} entries ({} dirty)",
        driver.block_table().len(),
        driver.block_table().iter().filter(|(_, e)| e.dirty).count()
    );
    if driver.is_degraded() {
        println!("health    : DEGRADED — table region unreadable, serving pass-through");
    }
    let quarantined: Vec<u32> = driver.quarantined_slots().collect();
    if !quarantined.is_empty() {
        println!(
            "health    : {} quarantined slot(s): {quarantined:?}",
            quarantined.len()
        );
    }
    let lost = driver.lost_blocks().count();
    if lost > 0 {
        println!("health    : {lost} block(s) LOST (reads will fail until rewritten)");
    }
    println!(
        "written   : {} sectors ({:.1} MB)",
        driver.disk().store().written_sectors(),
        driver.disk().store().written_sectors() as f64 * 512.0 / (1 << 20) as f64
    );
    Ok(())
}

fn workload(args: &[String]) -> Result<(), Error> {
    let path = image_path(args)?;
    let mut driver = load_driver(&path)?;
    let profile = match opt(args, "--profile").as_deref() {
        None | Some("system") => WorkloadProfile::system_fs(),
        Some("users") => WorkloadProfile::users_fs(),
        Some("tiny") => WorkloadProfile::tiny_test(),
        Some(other) => Err(format!("unknown profile `{other}`"))?,
    };
    let minutes: u64 = opt(args, "--minutes").map_or(Ok(30), |s| s.parse())?;
    let seed: u64 = opt(args, "--seed").map_or(Ok(1), |s| s.parse())?;
    let trace_out = opt(args, "--trace");

    // Resume the persisted file system + population if present (and not
    // --fresh); otherwise build it from scratch on the image's partition.
    let mut clock = SimTime::ZERO;
    let resumable = !has_flag(args, "--fresh")
        && fs_state_path(&path).exists()
        && wl_state_path(&path).exists();
    let (mut fs, mut state) = if resumable {
        let fs_state: serde_json::Value =
            serde_json::from_slice(&std::fs::read(fs_state_path(&path))?)?;
        let wl_state: serde_json::Value =
            serde_json::from_slice(&std::fs::read(wl_state_path(&path))?)?;
        let fs = FileSystem::load_state(&fs_state)?;
        let mut state = WorkloadState::load_state(&wl_state, seed)?;
        if state.profile().name != profile.name {
            eprintln!(
                "note: resuming the persisted `{}` population; --profile {} is ignored (use --fresh to rebuild)",
                state.profile().name,
                profile.name
            );
        }
        state.advance_day(); // consecutive invocations model consecutive days
        eprintln!("resumed day {} of the persisted population", state.day());
        (fs, state)
    } else {
        let part_sectors = driver.label().partitions[0].n_sectors;
        let spc = driver.label().physical.sectors_per_cylinder();
        let fs_cfg = FsConfig {
            cache_blocks: profile.cache_blocks,
            write_through: profile.nfs_write_through,
            ..FsConfig::default()
        };
        let mut fs = FileSystem::newfs(fs_cfg, part_sectors, spc);
        let mut rng = SimRng::new(seed);
        let (state, setup) = WorkloadState::setup(profile.clone(), &mut fs, &mut rng)
            .map_err(|e| format!("workload setup: {e}"))?;
        for req in setup {
            driver.submit(req, clock)?;
            while driver.queue_len() > 32 {
                let t = driver
                    .next_completion()
                    .ok_or("driver reports queued requests but no next completion")?;
                clock = t;
                driver.complete_next(t);
            }
        }
        (fs, state)
    };
    while let Some(t) = driver.next_completion() {
        clock = t;
        driver.complete_next(t);
    }
    if !profile.is_mutating() {
        fs.remount(MountMode::ReadOnly);
    }
    // Clear monitors: measure only the run below.
    driver.ioctl(Ioctl::ReadStats, clock)?;
    driver.ioctl(Ioctl::ReadRequestTable, clock)?;

    let start = clock + SimDuration::from_mins(1);
    let end = start + SimDuration::from_mins(minutes);
    let mut now = start;
    let mut trace = TraceLog::new();
    let mut next_sync = start + SimDuration::from_secs(30);
    let (mut op_at, mut op) = state.next_op(now, &fs);
    // Requests from one file-level op are paced like NFS RPC trains (see
    // ExperimentConfig::request_pacing).
    let pace = SimDuration::from_millis(150);
    let mut pending: abr_sim::EventQueue<abr_driver::IoRequest> = abr_sim::EventQueue::new();
    loop {
        let next_completion = driver.next_completion().unwrap_or(SimTime::MAX);
        let next_pending = pending.peek_time().unwrap_or(SimTime::MAX);
        let t = op_at.min(next_sync).min(next_completion).min(next_pending);
        if t > end && pending.is_empty() {
            break;
        }
        now = t;
        if t == next_completion {
            driver.complete_next(t);
        } else if t == next_pending {
            let (_, r) = pending
                .pop()
                .ok_or("pending queue empty despite a peeked event time")?;
            trace.push(TraceEvent::of(&r, (t - start).as_micros()));
            driver.submit(r, t)?;
        } else if t == op_at {
            for (i, r) in state.apply(op, &mut fs).into_iter().enumerate() {
                pending.schedule(t + pace * i as u64, r);
            }
            let (at, next) = state.next_op(t, &fs);
            op_at = at;
            op = next;
        } else {
            for r in fs.sync() {
                trace.push(TraceEvent::of(&r, (t - start).as_micros()));
                driver.submit(r, t)?;
            }
            next_sync = t + SimDuration::from_secs(30);
        }
    }
    while let Some(t) = driver.next_completion() {
        now = t;
        driver.complete_next(t);
    }

    // Persist: reference counts (analyze/rearrange read these), stats,
    // optional trace, and the image itself. The raw table goes into a
    // sidecar first — the ioctl below clears it.
    write_reqtable_sidecar(&path, driver.request_monitor())?;
    let (records, dropped) = match driver.ioctl(Ioctl::ReadRequestTable, now)? {
        IoctlReply::RequestTable { records, dropped } => (records, dropped),
        other => return Err(format!("unexpected reply to ReadRequestTable: {other:?}").into()),
    };
    let mut analyzer = abr_core::FullAnalyzer::new();
    for r in &records {
        analyzer.observe(r.block, 1);
    }
    use abr_core::ReferenceAnalyzer as _;
    let counts = analyzer.hot_list(analyzer.tracked());
    std::fs::write(counts_path(&path), serde_json::to_vec_pretty(&counts)?)?;

    let snapshot = match driver.ioctl(Ioctl::ReadStats, now)? {
        IoctlReply::Stats(s) => s,
        other => return Err(format!("unexpected reply to ReadStats: {other:?}").into()),
    };
    let metrics = DayMetrics::new(
        0,
        !driver.block_table().is_empty(),
        driver.block_table().len() as u32,
        &snapshot,
        &driver.disk().model().seek,
        counts.iter().map(|h| h.count).collect(),
        vec![],
    );
    std::fs::write(stats_path(&path), serde_json::to_vec_pretty(&metrics)?)?;
    if let Some(out) = trace_out {
        let f = std::fs::File::create(&out)?;
        trace.write_jsonl(std::io::BufWriter::new(f))?;
        println!("trace     : {} events -> {out}", trace.len());
    }
    println!(
        "ran {minutes} min of `{}`: {} requests ({} unrecorded), {} distinct blocks",
        profile.name,
        records.len(),
        dropped,
        counts.len()
    );
    println!(
        "mean seek {:.2} ms | mean service {:.2} ms | mean wait {:.2} ms",
        metrics.all.seek_ms, metrics.all.service_ms, metrics.all.waiting_ms
    );
    // Persist the file system (after a final flush) and the generator.
    for r in fs.sync() {
        driver.submit(r, SimTime::from_micros(now.as_micros() + 1_000_000))?;
    }
    driver.drain();
    std::fs::write(fs_state_path(&path), serde_json::to_vec(&fs.save_state())?)?;
    std::fs::write(
        wl_state_path(&path),
        serde_json::to_vec(&state.save_state())?,
    )?;
    save_driver(driver, &path)?;
    Ok(())
}

fn read_counts(img: &Path) -> Result<Vec<HotBlock>, Error> {
    let bytes = std::fs::read(counts_path(img)).map_err(|_| {
        format!(
            "no reference counts next to {} — run `abrctl workload` first",
            img.display()
        )
    })?;
    Ok(serde_json::from_slice(&bytes)?)
}

fn analyze(args: &[String]) -> Result<(), Error> {
    let path = image_path(args)?;
    let top: usize = opt(args, "--top").map_or(Ok(20), |s| s.parse())?;
    let counts = read_counts(&path)?;
    let total: u64 = counts.iter().map(|h| h.count).sum();
    println!(
        "{} distinct blocks, {} references; top {top}:",
        counts.len(),
        total
    );
    for (i, h) in counts.iter().take(top).enumerate() {
        println!(
            "{:4}. block {:8}  {:6} refs ({:4.1}%)",
            i + 1,
            h.block,
            h.count,
            h.count as f64 / total as f64 * 100.0
        );
    }
    let top100: u64 = counts.iter().take(100).map(|h| h.count).sum();
    println!(
        "top-100 blocks absorb {:.1}% of references",
        top100 as f64 / total as f64 * 100.0
    );
    Ok(())
}

fn rearrange(args: &[String]) -> Result<(), Error> {
    let path = image_path(args)?;
    let mut driver = load_driver(&path)?;
    let counts = read_counts(&path)?;
    let n_blocks: usize = opt(args, "--blocks").map_or(Ok(1000), |s| s.parse())?;
    let policy = match opt(args, "--policy").as_deref() {
        None | Some("organ") => PolicyKind::OrganPipe,
        Some("interleaved") => PolicyKind::Interleaved,
        Some("serial") => PolicyKind::Serial,
        Some(other) => Err(format!("unknown policy `{other}`"))?,
    };
    let arranger = BlockArranger::new(policy.make(1));
    let report = if has_flag(args, "--incremental") {
        arranger.rearrange_incremental(&mut driver, &counts, n_blocks, SimTime::ZERO)?
    } else {
        arranger.rearrange(&mut driver, &counts, n_blocks, SimTime::ZERO)?
    };
    println!(
        "placed {} blocks with {} ({} disk ops, {:.1} s of disk time)",
        report.blocks_placed,
        policy.name(),
        report.io_ops,
        report.busy.as_secs_f64()
    );
    save_driver(driver, &path)?;
    Ok(())
}

fn clean(args: &[String]) -> Result<(), Error> {
    let path = image_path(args)?;
    let mut driver = load_driver(&path)?;
    let before = driver.block_table().len();
    let arranger = BlockArranger::new(PolicyKind::OrganPipe.make(1));
    let report = arranger.clean(&mut driver, SimTime::ZERO)?;
    println!(
        "cleaned {} blocks out of the reserved area ({} disk ops)",
        before, report.io_ops
    );
    save_driver(driver, &path)?;
    Ok(())
}

fn stats(args: &[String]) -> Result<(), Error> {
    let path = image_path(args)?;
    let bytes = std::fs::read(stats_path(&path)).map_err(|_| {
        format!(
            "no stats next to {} — run `abrctl workload` first",
            path.display()
        )
    })?;
    let m: DayMetrics = serde_json::from_slice(&bytes)?;
    println!(
        "last workload run ({} requests, rearranged: {}):",
        m.all.n, m.rearranged
    );
    println!(
        "  all   : fcfs_dist {:6.1} | dist {:6.1} | zero {:4.1}% | seek {:5.2} ms | svc {:5.2} ms | wait {:6.2} ms",
        m.all.fcfs_seek_dist, m.all.seek_dist, m.all.zero_seek_pct,
        m.all.seek_ms, m.all.service_ms, m.all.waiting_ms
    );
    println!(
        "  reads : dist {:6.1} | zero {:4.1}% | seek {:5.2} ms | svc {:5.2} ms | wait {:6.2} ms",
        m.reads.seek_dist,
        m.reads.zero_seek_pct,
        m.reads.seek_ms,
        m.reads.service_ms,
        m.reads.waiting_ms
    );
    if m.faults.any() {
        println!(
            "  faults: retries {} | failed reads {} | failed writes {} | quarantined {} | lost {} | table write errs {}",
            m.faults.retries, m.faults.read_failures, m.faults.write_failures,
            m.faults.quarantines, m.faults.lost_blocks, m.faults.table_write_failures
        );
    }
    Ok(())
}

fn monitor_dump(args: &[String]) -> Result<(), Error> {
    let path = image_path(args)?;
    let side = reqtable_path(&path);
    let text = std::fs::read_to_string(&side).map_err(|_| {
        format!(
            "no request-table dump next to {} — run `abrctl workload` first",
            path.display()
        )
    })?;
    println!("{text}");
    // Mirror the ioctl's read-and-clear semantics: a second dump finds
    // nothing until the next workload run refills the table.
    std::fs::remove_file(&side)?;
    Ok(())
}

/// Per-run aggregates accumulated while scanning a span-trace file.
#[derive(Default)]
struct RunTrace {
    name: String,
    dropped: u64,
    spans: Vec<RequestSpan>,
    moves: u64,
    move_ops: u64,
    rearranges: u64,
}

fn trace_summary(args: &[String]) -> Result<(), Error> {
    let file = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or("missing trace file (produce one with `experiments --trace FILE`)")?;
    let top: usize = opt(args, "--top").map_or(Ok(10), |s| s.parse())?;
    let text = std::fs::read_to_string(file)?;

    let mut runs: Vec<RunTrace> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = JsonValue::parse(line).map_err(|e| format!("{file}:{}: {e}", i + 1))?;
        if let Some(name) = v["run"].as_str() {
            runs.push(RunTrace {
                name: name.to_string(),
                dropped: v["dropped"].as_u64().unwrap_or(0),
                ..RunTrace::default()
            });
            continue;
        }
        let Some(ev) = ObsEvent::from_json(&v) else {
            continue; // foreign line; readers skip rather than fail
        };
        if runs.is_empty() {
            // Headerless file (e.g. a hand-cut excerpt): one anonymous run.
            runs.push(RunTrace {
                name: "(trace)".to_string(),
                ..RunTrace::default()
            });
        }
        let run = runs.last_mut().expect("pushed above");
        match ev {
            ObsEvent::Request(s) => run.spans.push(s),
            ObsEvent::Move { ops, .. } => {
                run.moves += 1;
                run.move_ops += u64::from(ops);
            }
            ObsEvent::Rearrange { .. } => run.rearranges += 1,
        }
    }
    if runs
        .iter()
        .all(|r| r.spans.is_empty() && r.moves == 0 && r.rearranges == 0)
    {
        return Err(format!("{file}: no events — empty or not a span trace").into());
    }

    let ms = |us: u64| us as f64 / 1_000.0;
    for run in &runs {
        println!(
            "run {}: {} requests, {} moves ({} ops), {} rearrange marks, {} dropped",
            run.name,
            run.spans.len(),
            run.moves,
            run.move_ops,
            run.rearranges,
            run.dropped
        );
        if run.spans.is_empty() {
            continue;
        }
        let n = run.spans.len() as f64;
        let sum = |f: fn(&RequestSpan) -> u64| run.spans.iter().map(f).sum::<u64>() as f64;
        println!(
            "  phase means: wait {:.2} ms | seek {:.2} ms | rotation {:.2} ms | transfer {:.2} ms | service {:.2} ms | response {:.2} ms",
            sum(RequestSpan::waiting_us) / n / 1_000.0,
            sum(|s| s.seek_us) / n / 1_000.0,
            sum(|s| s.rotation_us) / n / 1_000.0,
            sum(|s| s.transfer_us) / n / 1_000.0,
            sum(RequestSpan::service_us) / n / 1_000.0,
            sum(RequestSpan::response_us) / n / 1_000.0,
        );
        // Reserved-area hit timeline: the run split into 10 equal
        // sim-time bins, each showing what share of completions landed
        // in the reserved (rearranged) area — adaptation visible as the
        // share climbing day over day.
        let first = run.spans.iter().map(|s| s.completed_us).min().unwrap_or(0);
        let last = run.spans.iter().map(|s| s.completed_us).max().unwrap_or(0);
        let width = (last - first).max(1);
        const BINS: usize = 10;
        let mut hits = [0u64; BINS];
        let mut totals = [0u64; BINS];
        for s in &run.spans {
            let bin =
                ((s.completed_us - first) as u128 * BINS as u128 / (width as u128 + 1)) as usize;
            totals[bin] += 1;
            if s.in_reserved {
                hits[bin] += 1;
            }
        }
        let cells: Vec<String> = hits
            .iter()
            .zip(&totals)
            .map(|(h, t)| {
                if *t == 0 {
                    "   - ".to_string()
                } else {
                    format!("{:4.0}%", *h as f64 / *t as f64 * 100.0)
                }
            })
            .collect();
        println!("  reserved hits: [{}]", cells.join(" "));
        let retried = run.spans.iter().filter(|s| s.retries > 0).count();
        let failed = run.spans.iter().filter(|s| s.error.is_some()).count();
        if retried > 0 || failed > 0 {
            println!("  faults: {retried} retried, {failed} failed");
        }
    }

    // Slowest requests across the whole file, by response time.
    let mut slowest: Vec<(&str, &RequestSpan)> = runs
        .iter()
        .flat_map(|r| r.spans.iter().map(move |s| (r.name.as_str(), s)))
        .collect();
    slowest.sort_by(|a, b| {
        b.1.response_us()
            .cmp(&a.1.response_us())
            .then(a.1.id.cmp(&b.1.id))
    });
    println!("slowest {} requests:", top.min(slowest.len()));
    for (run, s) in slowest.iter().take(top) {
        println!(
            "  {run} id {:>6} {} block {:>8}: response {:8.2} ms (wait {:.2}, seek {:.2}, rot {:.2}, xfer {:.2}, qdepth {}{}{})",
            s.id,
            if s.read { "r" } else { "w" },
            s.block,
            ms(s.response_us()),
            ms(s.waiting_us()),
            ms(s.seek_us),
            ms(s.rotation_us),
            ms(s.transfer_us),
            s.queue_depth,
            if s.retries > 0 {
                format!(", {} retries", s.retries)
            } else {
                String::new()
            },
            if let Some(e) = &s.error {
                format!(", FAILED: {e}")
            } else {
                String::new()
            },
        );
    }
    Ok(())
}

/// Array-level health roll-up over a set of member images — the view a
/// volume manager would print for an `abr-array` volume whose members
/// are these disks. A member that cannot be loaded at all is reported
/// as FAILED rather than aborting the whole report: that is exactly the
/// degraded-array situation the roll-up exists for.
///
/// `--redundancy none|mirror|rotparity` tells the roll-up which scheme
/// the volume runs, which changes the verdict: a redundant volume with
/// one impaired member is *rebuilding-eligible* (reads keep flowing
/// from the surviving copy or parity reconstruction, and lost blocks
/// are scrub-repairable), not failed; only a second impairment takes
/// data offline.
fn array_status(args: &[String]) -> Result<(), Error> {
    // Positional member images: everything that is neither a flag nor
    // the value of the (only) value-taking flag.
    let images: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|&(i, a)| !(a.starts_with("--") || i > 0 && args[i - 1] == "--redundancy"))
        .map(|(_, a)| a)
        .collect();
    if images.is_empty() {
        return Err("array needs at least one member disk image".into());
    }
    let redundancy = opt(args, "--redundancy").unwrap_or_else(|| "none".to_string());
    let redundant = match redundancy.as_str() {
        "none" => false,
        "mirror" | "rotparity" => true,
        other => return Err(format!("unknown redundancy scheme {other:?}").into()),
    };
    let n = images.len();
    let mut healthy = 0usize;
    let mut total_lost = 0usize;
    let mut total_placed = 0usize;
    for (i, img) in images.iter().enumerate() {
        match load_driver(Path::new(img.as_str())) {
            Ok(driver) => {
                let degraded = driver.is_degraded();
                let quarantined = driver.quarantined_slots().count();
                let lost = driver.lost_blocks().count();
                let placed = driver.block_table().len();
                total_lost += lost;
                total_placed += placed;
                let ok = !degraded && lost == 0;
                if ok {
                    healthy += 1;
                }
                println!(
                    "disk {i:2} {}: {} | {} placed | {} quarantined | {} lost{}{}",
                    img,
                    if ok { "healthy" } else { "DEGRADED" },
                    placed,
                    quarantined,
                    lost,
                    if degraded {
                        " | table unreadable, pass-through"
                    } else {
                        ""
                    },
                    if !ok && redundant {
                        " | repairable from redundancy"
                    } else {
                        ""
                    }
                );
            }
            Err(e) => {
                println!(
                    "disk {i:2} {img}: FAILED to load ({e}){}",
                    if redundant {
                        " | repairable from redundancy"
                    } else {
                        ""
                    }
                );
            }
        }
    }
    println!(
        "array: {healthy}/{n} disks healthy | {total_placed} blocks placed | {total_lost} blocks lost | redundancy {redundancy}"
    );
    let impaired = n - healthy;
    match (redundant, impaired) {
        (_, 0) => {}
        (false, _) => {
            println!("array: DEGRADED — requests mapping to impaired members may fail");
        }
        (true, 1) => {
            println!(
                "array: REBUILDING-ELIGIBLE — one impaired member; reads are served from the \
                 surviving copy/parity, lost blocks scrub-repair, and a replacement re-silvers \
                 online"
            );
        }
        (true, _) => {
            println!(
                "array: FAILED — {impaired} impaired members exceed single-{redundancy} \
                 protection; data mapping to them is offline"
            );
        }
    }
    Ok(())
}

/// Render a deterministic tail-latency report from a
/// `BENCH_experiments.json` record (see `abr_bench::runreport`): per-day
/// p50/p99/p999 latency tables, SLO verdicts, starvation counts. The
/// default markdown (and `--json`) contain simulation-time data only and
/// are byte-identical for any `--jobs` value; `--folded FILE`
/// additionally exports the nondeterministic `wall.*` timers as folded
/// stacks for flamegraph tools.
fn report_cmd(args: &[String]) -> Result<(), Error> {
    let file = args.iter().find(|a| !a.starts_with("--")).ok_or(
        "missing BENCH_experiments.json path (the `experiments` binary writes one per suite run)",
    )?;
    let text = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let bench = JsonValue::parse(&text).map_err(|e| format!("{file}: {e}"))?;
    if let Some(out) = opt(args, "--folded") {
        let folded = abr_bench::runreport::folded_profile(&bench);
        std::fs::write(&out, &folded)?;
        eprintln!(
            "folded wall profile: {} frame(s) -> {out}",
            folded.lines().count()
        );
    }
    if has_flag(args, "--json") {
        println!("{}", abr_bench::runreport::render_json(&bench)?.pretty());
    } else {
        print!("{}", abr_bench::runreport::render_markdown(&bench)?);
    }
    Ok(())
}

fn replay_cmd(args: &[String]) -> Result<(), Error> {
    let path = image_path(args)?;
    let trace_file = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .nth(1)
        .ok_or("missing trace file")?;
    let f = std::fs::File::open(trace_file)?;
    let trace = TraceLog::read_jsonl(std::io::BufReader::new(f))?;
    let driver = load_driver(&path)?;
    let mut cfg = ReplayConfig::new(driver.disk().model().clone());
    cfg.reserved_cylinders = driver.label().reserved.map(|r| r.n_cylinders).unwrap_or(0);
    cfg.n_blocks = opt(args, "--blocks").map_or(Ok(0), |s| s.parse::<usize>())?;
    let m = replay(&trace, &cfg);
    println!(
        "replayed {} requests ({} blocks pre-placed):",
        m.all.n, cfg.n_blocks
    );
    println!(
        "  seek {:5.2} ms | service {:5.2} ms | wait {:6.2} ms | zero-seeks {:4.1}%",
        m.all.seek_ms, m.all.service_ms, m.all.waiting_ms, m.all.zero_seek_pct
    );
    Ok(())
}
