//! Parallel/serial equivalence: the whole point of the run engine is
//! that `--jobs N` changes wall-clock time and nothing else. This
//! executes the same batch serially and on four workers and requires
//! the *bytes* of every report (text, JSON, CSV companions) to match.
//!
//! The batch deliberately mixes the three run families: three paper
//! experiments (one of them, fig8, a real multi-day simulation) and
//! one ablation.

use abr_bench::engine::RunBatch;

const IDS: [&str; 4] = ["table1", "fig3", "fig8", "ablate-rotation"];

#[test]
fn parallel_batch_is_byte_identical_to_serial() {
    let serial = RunBatch::new(&IDS, 1).unwrap().execute();
    let parallel = RunBatch::new(&IDS, 4).unwrap().execute();
    assert_eq!(parallel.jobs, 4);

    assert_eq!(serial.outcomes.len(), IDS.len());
    assert_eq!(parallel.outcomes.len(), IDS.len());
    for (s, p) in serial.outcomes.iter().zip(&parallel.outcomes) {
        assert_eq!(s.spec, p.spec, "outcomes must stay in spec order");
        let (sr, pr) = (
            s.report.as_ref().expect("serial run failed"),
            p.report.as_ref().expect("parallel run failed"),
        );
        assert_eq!(sr.text, pr.text, "{}: text differs", s.spec.id);
        assert_eq!(
            sr.json.pretty(),
            pr.json.pretty(),
            "{}: JSON differs",
            s.spec.id
        );
        assert_eq!(sr.csv, pr.csv, "{}: CSV companions differ", s.spec.id);
        // A real run must have advanced simulated time; the meter is
        // per-run even when four workers interleave.
        if s.spec.id == "fig8" {
            assert!(s.meter.days > 0, "fig8 must meter simulated days");
            assert_eq!(s.meter, p.meter, "meter must not depend on scheduling");
        }
    }
}
