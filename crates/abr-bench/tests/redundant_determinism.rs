//! Redundant-array determinism: the rebuild and scrub engines are pure
//! sim-time machinery, so a batch containing the redundant fault sweep
//! must produce byte-identical reports AND byte-identical
//! `array.rebuild.*` / `array.scrub.*` metric snapshots whether it runs
//! serially or on four workers.
//!
//! The comparison is restricted to `array.*` counters and gauges: the
//! registry also carries wall-clock timer histograms (`abr_obs::timer`),
//! whose values legitimately depend on host scheduling and would make a
//! whole-snapshot byte comparison flaky.

use abr_bench::engine::RunBatch;
use abr_sim::json::JsonValue;

const IDS: [&str; 2] = ["array-redundant", "faults"];

/// Pretty-print only the sim-deterministic `array.*` counters and
/// gauges from a registry snapshot.
fn array_metrics(snapshot: &JsonValue) -> String {
    let mut out = JsonValue::object();
    for section in ["counters", "gauges"] {
        let mut filtered = JsonValue::object();
        if let Some(entries) = snapshot[section].as_object() {
            for (name, value) in entries {
                if name.starts_with("array.") {
                    filtered.insert(name.clone(), value.clone());
                }
            }
        }
        out.insert(section, filtered);
    }
    out.pretty()
}

#[test]
fn redundant_sweep_is_byte_identical_across_workers() {
    let serial = RunBatch::new(&IDS, 1).unwrap().execute();
    let parallel = RunBatch::new(&IDS, 4).unwrap().execute();

    for (s, p) in serial.outcomes.iter().zip(&parallel.outcomes) {
        assert_eq!(s.spec, p.spec, "outcomes must stay in spec order");
        let (sr, pr) = (
            s.report.as_ref().expect("serial run failed"),
            p.report.as_ref().expect("parallel run failed"),
        );
        assert_eq!(sr.text, pr.text, "{}: text differs", s.spec.id);
        assert_eq!(
            sr.json.pretty(),
            pr.json.pretty(),
            "{}: JSON differs",
            s.spec.id
        );
        // Every maintenance counter and gauge — rebuild, scrub,
        // failover, redirect — must match byte for byte.
        assert_eq!(
            array_metrics(&s.metrics),
            array_metrics(&p.metrics),
            "{}: array.* metrics differ",
            s.spec.id
        );
    }

    // The gate must actually be covering live scrub/rebuild activity,
    // not vacuously comparing zeros.
    let redundant = serial
        .outcomes
        .iter()
        .find(|o| o.spec.id == "array-redundant")
        .expect("redundant sweep ran");
    for name in ["array.scrub.groups", "array.rebuild.blocks"] {
        assert!(
            redundant.metrics["counters"][name].as_u64().unwrap_or(0) > 0,
            "{name} must be live in the redundant sweep"
        );
    }
}
