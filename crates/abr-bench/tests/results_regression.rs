//! Committed-results regression: the engine hot path (calendar event
//! queue, SoA tables, lazy seeded payload store) is a pure *throughput*
//! rework — every result artifact must stay byte-identical. This
//! regenerates the two gate families in-process and compares against the
//! bytes committed under `results/`, so any future "optimization" that
//! perturbs simulation order or payload semantics fails here instead of
//! silently shifting the paper's numbers.
//!
//! If a change is *supposed* to alter results (a model fix, a new
//! metric), regenerate and commit `results/` in the same PR; this test
//! then certifies the new canon.

use abr_bench::engine::RunBatch;
use std::path::PathBuf;

fn committed(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../results")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("committed result {} unreadable: {e}", path.display()))
}

#[test]
fn table2_and_array_n2_match_committed_results() {
    let batch = RunBatch::new(&["table2", "array-n2"], 1).unwrap().execute();
    for outcome in &batch.outcomes {
        let report = outcome
            .report
            .as_ref()
            .unwrap_or_else(|e| panic!("{} failed: {e}", outcome.spec.id));
        let id = outcome.spec.id.as_str();
        // Report::save writes `pretty()` plus no trailing newline for
        // JSON and the raw text body for TXT; compare the same bytes.
        assert_eq!(
            report.json.pretty(),
            committed(&format!("{id}.json")),
            "{id}.json drifted from the committed bytes"
        );
        assert_eq!(
            report.text,
            committed(&format!("{id}.txt")),
            "{id}.txt drifted from the committed bytes"
        );
    }
}
