//! Serving-front-end determinism: admission decisions, DRR dispatch
//! order, and arrival processes are pure sim-time machinery, so a batch
//! containing the serve family must produce byte-identical reports AND
//! byte-identical `serve.*` metric snapshots whether it runs serially
//! or on four workers.
//!
//! The comparison is restricted to `serve.*` counters/gauges and the
//! `serve.*` high-resolution histograms: the registry also carries
//! wall-clock timer data (`wall.*`), which legitimately depends on host
//! scheduling.

use abr_bench::engine::RunBatch;
use abr_sim::json::JsonValue;

const IDS: [&str; 2] = ["serve-smoke", "serve"];

/// Pretty-print only the sim-deterministic `serve.*` entries from a
/// registry snapshot.
fn serve_metrics(snapshot: &JsonValue) -> String {
    let mut out = JsonValue::object();
    for section in ["counters", "gauges", "hires"] {
        let mut filtered = JsonValue::object();
        if let Some(entries) = snapshot[section].as_object() {
            for (name, value) in entries {
                if name.starts_with("serve.") {
                    filtered.insert(name.clone(), value.clone());
                }
            }
        }
        out.insert(section, filtered);
    }
    out.pretty()
}

#[test]
fn serve_family_is_byte_identical_across_workers() {
    let serial = RunBatch::new(&IDS, 1).unwrap().execute();
    let parallel = RunBatch::new(&IDS, 4).unwrap().execute();

    for (s, p) in serial.outcomes.iter().zip(&parallel.outcomes) {
        assert_eq!(s.spec, p.spec, "outcomes must stay in spec order");
        let (sr, pr) = (
            s.report.as_ref().expect("serial run failed"),
            p.report.as_ref().expect("parallel run failed"),
        );
        assert_eq!(sr.text, pr.text, "{}: text differs", s.spec.id);
        assert_eq!(
            sr.json.pretty(),
            pr.json.pretty(),
            "{}: JSON differs",
            s.spec.id
        );
        assert_eq!(
            serve_metrics(&s.metrics),
            serve_metrics(&p.metrics),
            "{}: serve.* metrics differ",
            s.spec.id
        );
        assert_eq!(
            s.day_series.pretty(),
            p.day_series.pretty(),
            "{}: day series differs",
            s.spec.id
        );
    }

    // The gate must cover live traffic, not vacuously compare zeros,
    // and the smoke cell must exercise the shed path.
    let smoke = serial
        .outcomes
        .iter()
        .find(|o| o.spec.id == "serve-smoke")
        .expect("smoke cell ran");
    for name in ["serve.arrivals", "serve.completed", "serve.shed_total"] {
        assert!(
            smoke.metrics["counters"][name].as_u64().unwrap_or(0) > 0,
            "{name} must be live in the smoke cell"
        );
    }
    assert!(
        smoke.metrics["hires"]["serve.request_us"]["quantiles"]["p999"]
            .as_u64()
            .unwrap_or(0)
            > 0,
        "p999 request latency must be reported"
    );
}
