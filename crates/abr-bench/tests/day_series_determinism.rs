//! Day-series determinism: the per-day metric time series and the run
//! report rendered from it are pure sim-time artifacts, so a batch must
//! produce byte-identical series, SLO verdicts, and report markdown
//! whether it runs serially or on four workers.
//!
//! The id set is chosen with disjoint day-vector cache keys (a
//! single-disk experiment and the redundant array sweep): when two runs
//! *share* day vectors through the in-process cache, whichever run
//! computes them first also does the driving — its registry sees the
//! work — and that order is scheduling. Disjoint keys keep every run's
//! series self-contained and hence `--jobs`-invariant.

use abr_bench::engine::RunBatch;
use abr_bench::runreport;

const IDS: [&str; 2] = ["table2", "array-redundant"];

#[test]
fn day_series_and_report_are_byte_identical_across_workers() {
    let serial = RunBatch::new(&IDS, 1).unwrap().execute();
    let parallel = RunBatch::new(&IDS, 4).unwrap().execute();

    for (s, p) in serial.outcomes.iter().zip(&parallel.outcomes) {
        assert_eq!(s.spec, p.spec, "outcomes must stay in spec order");
        assert_eq!(
            s.day_series.pretty(),
            p.day_series.pretty(),
            "{}: day series differs between --jobs 1 and --jobs 4",
            s.spec.id
        );
    }

    // The whole rendered report — tables, SLO verdicts, starvation
    // lines — must match byte for byte too. Rendering goes through the
    // full bench record, so this also pins the record's deterministic
    // subset.
    let (sm, pm) = (
        runreport::render_markdown(&serial.bench_json()).expect("serial report renders"),
        runreport::render_markdown(&parallel.bench_json()).expect("parallel report renders"),
    );
    assert_eq!(sm, pm, "run report differs between --jobs 1 and --jobs 4");

    // The gate must cover live data, not vacuously compare empties:
    // every run records one point per simulated day, with real latency
    // observations and an SLO verdict on each.
    for o in &serial.outcomes {
        let days = o.day_series.as_array().expect("series is an array");
        assert_eq!(
            days.len() as u64,
            o.meter.days,
            "{}: one point per simulated day",
            o.spec.id
        );
        assert!(!days.is_empty(), "{}: series must not be empty", o.spec.id);
        let with_latency = days
            .iter()
            .filter(|d| {
                d["hires"]["driver.service_us"]["count"]
                    .as_u64()
                    .unwrap_or(0)
                    > 0
            })
            .count();
        assert!(
            with_latency > 0,
            "{}: no day point carries service-latency observations",
            o.spec.id
        );
        assert!(
            days.iter().all(|d| d["slo"].as_array().is_some()),
            "{}: every day point must carry SLO verdicts",
            o.spec.id
        );
    }
    assert!(
        sm.contains("### Tail latency by day"),
        "report must contain at least one latency table"
    );
}
