//! End-to-end test of the `abrctl` control tool: the full paper workflow
//! (create, workload, analyze, rearrange, stats, replay, clean) driven
//! through the real binary against a disk image on disk.

use std::path::PathBuf;
use std::process::Command;

fn abrctl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_abrctl"))
}

fn run_ok(args: &[&str]) -> String {
    let out = abrctl().args(args).output().expect("spawn abrctl");
    assert!(
        out.status.success(),
        "abrctl {args:?} failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("abrctl-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn full_control_workflow() {
    let tmp = TempDir::new("workflow");
    let img = tmp.path("disk.img");
    let trace = tmp.path("day.jsonl");

    let out = run_ok(&["create", &img, "--disk", "toshiba"]);
    assert!(out.contains("48 reserved cylinders"), "{out}");

    let out = run_ok(&["info", &img]);
    assert!(out.contains("Toshiba MK156F"), "{out}");
    assert!(out.contains("0 entries"), "{out}");

    let out = run_ok(&[
        "workload",
        &img,
        "--profile",
        "tiny",
        "--minutes",
        "8",
        "--seed",
        "5",
        "--trace",
        &trace,
    ]);
    assert!(out.contains("requests"), "{out}");
    assert!(std::path::Path::new(&trace).exists());

    let out = run_ok(&["analyze", &img, "--top", "3"]);
    assert!(out.contains("top-100 blocks absorb"), "{out}");

    let out = run_ok(&["rearrange", &img, "--blocks", "200"]);
    assert!(out.contains("placed"), "{out}");

    let out = run_ok(&["info", &img]);
    assert!(out.contains("200 entries"), "{out}");

    let out = run_ok(&["stats", &img]);
    assert!(out.contains("seek"), "{out}");

    let out = run_ok(&["replay", &img, &trace, "--blocks", "200"]);
    assert!(out.contains("replayed"), "{out}");

    let out = run_ok(&["clean", &img]);
    assert!(out.contains("cleaned 200 blocks"), "{out}");

    let out = run_ok(&["info", &img]);
    assert!(out.contains("0 entries"), "{out}");
}

#[test]
fn errors_are_reported_cleanly() {
    let tmp = TempDir::new("errors");
    let img = tmp.path("missing.img");

    // Unknown command.
    let out = abrctl().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing image.
    let out = abrctl().args(["info", &img]).output().unwrap();
    assert!(!out.status.success());

    // Analyze before any workload ran.
    run_ok(&["create", &img, "--disk", "tiny", "--reserved", "5"]);
    let out = abrctl().args(["analyze", &img]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("run `abrctl workload` first"));
}

#[test]
fn workload_sessions_resume_across_invocations() {
    let tmp = TempDir::new("resume");
    let img = tmp.path("disk.img");
    run_ok(&["create", &img]);
    run_ok(&["workload", &img, "--profile", "tiny", "--minutes", "4"]);
    // Second run must resume (day 1) rather than rebuild.
    let out = abrctl()
        .args(["workload", &img, "--profile", "tiny", "--minutes", "4"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("resumed day 1"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // --fresh rebuilds.
    let out = abrctl()
        .args([
            "workload",
            &img,
            "--profile",
            "tiny",
            "--minutes",
            "4",
            "--fresh",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(!String::from_utf8_lossy(&out.stderr).contains("resumed"));
}

#[test]
fn array_status_rolls_up_member_health() {
    let tmp = TempDir::new("array");
    let good0 = tmp.path("m0.img");
    let good1 = tmp.path("m1.img");
    let junk = tmp.path("m2.img");
    run_ok(&["create", &good0, "--disk", "tiny", "--reserved", "5"]);
    run_ok(&["create", &good1, "--disk", "tiny", "--reserved", "5"]);
    std::fs::write(&junk, b"not a disk image").unwrap();

    // A broken member is reported as a FAILED row, not a fatal error:
    // the roll-up exists precisely for looking at a degraded array.
    let out = run_ok(&["array", &junk]);
    assert!(out.contains("disk  0"), "{out}");
    assert!(out.contains("FAILED to load"), "{out}");
    assert!(out.contains("0/1 disks healthy"), "{out}");
    assert!(out.contains("array: DEGRADED"), "{out}");

    // No members at all is a usage error.
    let out = abrctl().arg("array").output().unwrap();
    assert!(!out.status.success());

    // The healthy path needs image round-trips; skip it where the rest
    // of this suite already cannot load images (offline stub codecs).
    let loads = abrctl().args(["info", &good0]).output().unwrap();
    if !loads.status.success() {
        eprintln!("skipping healthy-member assertions: images not loadable here");
        return;
    }

    let out = run_ok(&["array", &good0, &good1, &junk]);
    assert!(out.contains("healthy"), "{out}");
    assert!(out.contains("FAILED to load"), "{out}");
    assert!(out.contains("2/3 disks healthy"), "{out}");
    assert!(out.contains("array: DEGRADED"), "{out}");

    // All-healthy array reports no degradation.
    let out = run_ok(&["array", &good0, &good1]);
    assert!(out.contains("2/2 disks healthy"), "{out}");
    assert!(!out.contains("DEGRADED"), "{out}");
}

#[test]
fn array_status_redundancy_changes_the_verdict() {
    let tmp = TempDir::new("array-red");
    let junk0 = tmp.path("m0.img");
    let junk1 = tmp.path("m1.img");
    std::fs::write(&junk0, b"not a disk image").unwrap();
    std::fs::write(&junk1, b"also not a disk image").unwrap();

    // Unprotected: an impaired member means possible data loss.
    let out = run_ok(&["array", &junk0]);
    assert!(out.contains("redundancy none"), "{out}");
    assert!(out.contains("array: DEGRADED"), "{out}");

    // One impaired member under single-fault protection is repairable:
    // reads fail over and a replacement re-silvers online.
    let out = run_ok(&["array", &junk0, "--redundancy", "mirror"]);
    assert!(out.contains("redundancy mirror"), "{out}");
    assert!(out.contains("repairable from redundancy"), "{out}");
    assert!(out.contains("array: REBUILDING-ELIGIBLE"), "{out}");
    assert!(!out.contains("array: DEGRADED"), "{out}");

    // Two impaired members exceed what one parity/copy can absorb.
    let out = run_ok(&["array", &junk0, &junk1, "--redundancy", "rotparity"]);
    assert!(out.contains("array: FAILED"), "{out}");
    assert!(out.contains("single-rotparity"), "{out}");

    // Unknown schemes are a usage error, not a silent default.
    let out = abrctl()
        .args(["array", &junk0, "--redundancy", "raid6"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn incremental_rearrange_via_cli() {
    let tmp = TempDir::new("incremental");
    let img = tmp.path("disk.img");
    run_ok(&["create", &img]);
    run_ok(&["workload", &img, "--profile", "tiny", "--minutes", "5"]);
    run_ok(&["rearrange", &img, "--blocks", "100"]);
    // Second rearrangement from the same counts: incremental should move
    // nothing (hot list identical).
    let out = run_ok(&["rearrange", &img, "--blocks", "100", "--incremental"]);
    assert!(out.contains("(0 disk ops"), "{out}");
}
