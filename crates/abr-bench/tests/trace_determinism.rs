//! Trace determinism: a traced batch must produce byte-identical JSONL
//! for any `--jobs` value, and the flight recorder's drop counting must
//! be exact even when a real run overflows the buffer.
//!
//! The batch mixes a real multi-day experiment (fig8) with an ablation,
//! mirroring `parallel_equivalence.rs`; two specs are enough to make a
//! 4-job batch actually use two workers (`workers = jobs.min(specs)`).

use abr_bench::engine::RunBatch;
use abr_core::{Experiment, ExperimentConfig};
use abr_disk::models;
use abr_sim::{JsonValue, SimDuration};
use abr_workload::WorkloadProfile;

const IDS: [&str; 2] = ["fig8", "ablate-rotation"];

fn traced(jobs: usize) -> abr_bench::engine::BatchResult {
    let mut batch = RunBatch::new(&IDS, jobs).unwrap();
    batch.set_trace(true);
    batch.execute()
}

/// Deterministic counters must match across worker counts; `wall.*`
/// profiling counters are real-time measurements and are exempt (they
/// only ever appear in BENCH output, never in results or traces).
fn sim_counters(metrics: &JsonValue) -> Vec<(String, u64)> {
    metrics["counters"]
        .as_object()
        .expect("snapshot has a counters object")
        .iter()
        .filter(|(name, _)| !name.starts_with("wall."))
        .map(|(name, v)| (name.clone(), v.as_u64().expect("counters are u64")))
        .collect()
}

#[test]
fn traced_batch_is_byte_identical_across_jobs() {
    let serial = traced(1);
    let parallel = traced(4);

    let (events, dropped) = serial.trace_totals();
    assert!(events > 0, "a traced fig8 run cannot produce zero events");
    assert_eq!(dropped, 0, "default capacity must hold the whole batch");

    assert_eq!(
        serial.trace_jsonl(),
        parallel.trace_jsonl(),
        "trace bytes must not depend on --jobs"
    );

    for (s, p) in serial.outcomes.iter().zip(&parallel.outcomes) {
        assert_eq!(s.spec, p.spec, "outcomes must stay in spec order");
        assert!(s.report.is_ok(), "{} failed", s.spec.id);
        assert!(p.report.is_ok(), "{} failed", p.spec.id);
        assert_eq!(
            sim_counters(&s.metrics),
            sim_counters(&p.metrics),
            "{}: sim-time metrics must not depend on scheduling",
            s.spec.id
        );
    }

    // Every line of the document is valid JSON: per-run headers first,
    // then one event object per line.
    let doc = serial.trace_jsonl();
    let mut headers = 0;
    for line in doc.lines() {
        let v = JsonValue::parse(line).expect("every trace line parses");
        if v["run"].as_str().is_some() {
            headers += 1;
        }
    }
    assert_eq!(headers, IDS.len(), "one header line per run, in order");
}

#[test]
fn overflow_drops_are_counted_exactly_in_a_real_run() {
    let mut profile = WorkloadProfile::tiny_test();
    profile.day_length = SimDuration::from_mins(20);
    let mut cfg = ExperimentConfig::new(models::toshiba_mk156f(), profile);
    cfg.cache_blocks = 192;
    cfg.seed = 12345;

    const CAPACITY: usize = 64;
    abr_obs::trace_start(CAPACITY);
    let mut e = Experiment::new(cfg); // setup + warmup: paused, not dropped
    let m = e.run_day();
    let buf = abr_obs::trace_take().expect("recorder present");

    // run_day performs no arranger traffic, so every event is a request
    // span: retained + dropped must equal the day's request count.
    assert!(
        m.all.n > CAPACITY as u64,
        "day must overflow the {CAPACITY}-event buffer (got {})",
        m.all.n
    );
    assert_eq!(buf.events.len(), CAPACITY, "keep-oldest fills to capacity");
    assert_eq!(
        buf.events.len() as u64 + buf.dropped,
        m.all.n,
        "dropped count must account for every overflowed event"
    );
}
