//! End-to-end throughput of the simulator: how fast a full measured day
//! runs, and what one rearrangement cycle costs.

use abr_core::{Experiment, ExperimentConfig};
use abr_disk::models;
use abr_sim::SimDuration;
use abr_workload::WorkloadProfile;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_day(c: &mut Criterion) {
    let mut g = c.benchmark_group("day_simulation");
    g.sample_size(10);
    g.bench_function("system_fs_1h_day", |b| {
        b.iter_batched(
            || {
                let mut profile = WorkloadProfile::system_fs();
                profile.day_length = SimDuration::from_hours(1);
                let mut cfg = ExperimentConfig::new(models::toshiba_mk156f(), profile);
                cfg.warmup_days = 0;
                Experiment::new(cfg)
            },
            |mut e| black_box(e.run_day().all.n),
            criterion::BatchSize::LargeInput,
        );
    });
    g.bench_function("rearrange_1017_blocks", |b| {
        b.iter_batched(
            || {
                let mut profile = WorkloadProfile::system_fs();
                profile.day_length = SimDuration::from_mins(30);
                let mut cfg = ExperimentConfig::new(models::toshiba_mk156f(), profile);
                cfg.warmup_days = 0;
                let mut e = Experiment::new(cfg);
                e.run_day();
                e
            },
            |mut e| black_box(e.rearrange_for_next_day(1017).blocks_placed),
            criterion::BatchSize::LargeInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_day);
criterion_main!(benches);
