//! Criterion micro-benchmarks for the driver's hot paths.
//!
//! The block-table lookup and the monitor record run on *every* request
//! in a real kernel, so their cost bounds the driver overhead the paper's
//! technique adds. The analyzer and placement run once per monitoring
//! period / per day but over thousands of entries.

use abr_core::analyzer::{BoundedAnalyzer, FullAnalyzer, HotBlock, ReferenceAnalyzer};
use abr_core::placement::{PolicyKind, SlotMap};
use abr_disk::disk::IoDir;
use abr_disk::{models, Disk, DiskLabel};
use abr_driver::blocktable::BlockTable;
use abr_driver::request::IoRequest;
use abr_driver::{AdaptiveDriver, DriverConfig, ReservedLayout, SchedulerKind};
use abr_sim::dist::Zipf;
use abr_sim::{SimRng, SimTime};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_block_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("block_table");
    for size in [100usize, 1018, 3500] {
        let mut table = BlockTable::new();
        for i in 0..size {
            table.insert(i as u64 * 16, i as u32);
        }
        g.bench_with_input(BenchmarkId::new("lookup_hit", size), &size, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 1) % size as u64;
                black_box(table.lookup(i * 16))
            });
        });
        g.bench_with_input(BenchmarkId::new("lookup_miss", size), &size, |b, _| {
            b.iter(|| black_box(table.lookup(u64::MAX - 5)));
        });
    }
    g.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler_dispatch");
    // Dispatch cost through the full driver with a queue of N requests.
    for &(kind, depth) in &[
        (SchedulerKind::Fcfs, 32usize),
        (SchedulerKind::Scan, 32),
        (SchedulerKind::Sstf, 32),
        (SchedulerKind::Scan, 256),
    ] {
        let id = format!("{}_{}", kind.name(), depth);
        g.bench_function(BenchmarkId::new("submit_drain", id), |b| {
            let model = models::toshiba_mk156f();
            let label = DiskLabel::whole_disk(model.geometry);
            let cfg = DriverConfig {
                scheduler: kind,
                ..DriverConfig::default()
            };
            let mut disk = Disk::new(model);
            AdaptiveDriver::format(&mut disk, &label, &cfg);
            let mut driver = AdaptiveDriver::attach(disk, cfg).unwrap();
            let mut rng = SimRng::new(1);
            let total_blocks = driver.label().virtual_geometry().total_sectors() / 16;
            let mut now = 0u64;
            b.iter(|| {
                for _ in 0..depth {
                    let blk = rng.below(total_blocks);
                    now += 1000;
                    driver
                        .submit(IoRequest::read(0, blk * 16, 16), SimTime::from_micros(now))
                        .unwrap();
                }
                black_box(driver.drain().len())
            });
        });
    }
    g.finish();
}

fn bench_analyzer(c: &mut Criterion) {
    let mut g = c.benchmark_group("analyzer");
    let zipf = Zipf::new(2000, 1.4);
    let mut rng = SimRng::new(2);
    let stream: Vec<u64> = (0..10_000).map(|_| zipf.sample(&mut rng) as u64).collect();
    g.bench_function("full_observe_10k", |b| {
        b.iter(|| {
            let mut a = FullAnalyzer::new();
            for &x in &stream {
                a.observe(x, 1);
            }
            black_box(a.tracked())
        });
    });
    g.bench_function("bounded_observe_10k_cap200", |b| {
        b.iter(|| {
            let mut a = BoundedAnalyzer::new(200);
            for &x in &stream {
                a.observe(x, 1);
            }
            black_box(a.tracked())
        });
    });
    let mut full = FullAnalyzer::new();
    for &x in &stream {
        full.observe(x, 1);
    }
    g.bench_function("hot_list_1018_of_2000", |b| {
        b.iter(|| black_box(full.hot_list(1018).len()));
    });
    g.finish();
}

fn bench_placement(c: &mut Criterion) {
    let mut g = c.benchmark_group("placement");
    let geometry = models::toshiba_mk156f().geometry;
    let label = DiskLabel::rearranged(geometry, 48);
    let layout = ReservedLayout::for_label(&label, 8192, 1020).unwrap();
    let slots = SlotMap::new(&layout, &geometry);
    let hot: Vec<HotBlock> = (0..1017u64)
        .map(|i| HotBlock {
            block: i * 37 % 16000,
            count: 2000 - i,
        })
        .collect();
    for kind in PolicyKind::all() {
        g.bench_function(kind.name(), |b| {
            let policy = kind.make(1);
            b.iter(|| black_box(policy.place(&hot, &slots).len()));
        });
    }
    g.bench_function("slot_map_build", |b| {
        b.iter(|| black_box(SlotMap::new(&layout, &geometry).n_slots()));
    });
    g.finish();
}

fn bench_disk_service(c: &mut Criterion) {
    let mut g = c.benchmark_group("disk_service");
    for model in [models::toshiba_mk156f(), models::fujitsu_m2266()] {
        let name = model.name.clone();
        g.bench_function(BenchmarkId::new("random_8k", name), |b| {
            let mut disk = Disk::new(model.clone());
            let total = disk.geometry().total_sectors() - 16;
            let mut rng = SimRng::new(3);
            let mut now = 0u64;
            b.iter(|| {
                now += 20_000;
                let s = rng.below(total / 16) * 16;
                black_box(disk.service(IoDir::Read, s, 16, SimTime::from_micros(now)))
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_block_table,
    bench_scheduler,
    bench_analyzer,
    bench_placement,
    bench_disk_service
);
criterion_main!(benches);
