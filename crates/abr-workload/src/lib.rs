//! # abr-workload — synthetic file-server workloads
//!
//! The paper measured a live departmental NFS file server (Sakarya) for
//! weeks. Those request streams are unavailable, so this crate generates
//! synthetic file-level workloads whose *disk-level* characteristics match
//! what the paper reports:
//!
//! * **system file system** (§5, §5.2): executables and libraries shared
//!   read-only by ~40 users on 14 workstations. Highly skewed — "fewer
//!   than 2000 blocks absorbed all of the requests, and the 100 hottest
//!   blocks absorbed about 90%" (§5.4); writes come only from i-node
//!   bookkeeping and are concentrated on a very small block set; arrivals
//!   are very bursty (§5.2).
//! * **users file system** (§5.3): home directories of 10–20 users,
//!   read/write. Less skew, writes from file creation and extension
//!   (which rearrangement cannot help), higher day-to-day variation.
//!
//! [`profile`] holds the tunable parameters with the paper-calibrated
//! presets; [`state`] owns the stateful generator that the experiment
//! harness drives op by op; [`trace`] provides a serializable block-level
//! trace format for record/replay.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod profile;
pub mod state;
pub mod trace;

pub use profile::{OpMix, WorkloadProfile};
pub use state::{Op, WorkloadState};
pub use trace::{TraceEvent, TraceLog};
