//! The stateful workload generator.
//!
//! [`WorkloadState`] owns the file population, the popularity assignment
//! (rank → file), and the bursty arrival process. The experiment harness
//! drives it: [`WorkloadState::next_op`] draws the next timed operation,
//! [`WorkloadState::apply`] executes it against the file system and
//! returns the disk requests it triggers. Between measured days,
//! [`WorkloadState::advance_day`] applies popularity drift.

use crate::profile::WorkloadProfile;
use abr_driver::request::IoRequest;
use abr_fs::fs::{DirHandle, FileHandle, FileSystem, FsError};
use abr_sim::arrival::OnOff;
use abr_sim::dist::{FileSizes, Weighted, Zipf};
use abr_sim::hash::FastMap;
use abr_sim::{SimRng, SimTime};

/// A file-level operation, resolved to concrete handles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Read an entire file.
    ReadWhole(FileHandle),
    /// Read `n_blocks` starting at block `start`.
    ReadRange {
        /// Target file.
        file: FileHandle,
        /// First block index.
        start: usize,
        /// Blocks to read.
        n_blocks: usize,
    },
    /// Overwrite `n_blocks` starting at block `start`.
    WriteRange {
        /// Target file.
        file: FileHandle,
        /// First block index.
        start: usize,
        /// Blocks to write.
        n_blocks: usize,
    },
    /// Create a file of `size` bytes in `dir`.
    Create {
        /// Parent directory.
        dir: DirHandle,
        /// Size in bytes.
        size: u64,
    },
    /// Append `bytes` to a file.
    Append {
        /// Target file.
        file: FileHandle,
        /// Bytes to append.
        bytes: u64,
    },
    /// Delete a file from its directory.
    Delete {
        /// Parent directory.
        dir: DirHandle,
        /// File to delete.
        file: FileHandle,
    },
}

/// The generator's per-file record.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
struct FileRec {
    handle: FileHandle,
    dir: DirHandle,
}

/// Stateful workload generator. See the module docs.
pub struct WorkloadState {
    profile: WorkloadProfile,
    files: Vec<FileRec>,
    /// `rank_to_file[rank]` = index into `files`. Rank 0 is hottest.
    rank_to_file: Vec<usize>,
    popularity: Zipf,
    sizes: FileSizes,
    mix: Weighted,
    arrivals: OnOff,
    dirs: Vec<DirHandle>,
    rng: SimRng,
    day: u64,
    /// Per-file-size Zipf over block indices (lazily built): page-in
    /// offsets within a file are skewed and *stable* across days (a
    /// binary faults the same startup/hot-path pages every day).
    offset_zipf: FastMap<usize, Zipf>,
}

impl std::fmt::Debug for WorkloadState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadState")
            .field("profile", &self.profile.name)
            .field("files", &self.files.len())
            .field("day", &self.day)
            .finish_non_exhaustive()
    }
}

impl WorkloadState {
    /// Build the file population on `fs` (directories spread across
    /// cylinder groups, then files), flush the resulting writes, and
    /// return the generator. The flush requests from setup are returned
    /// so the caller can push them through the driver before measurement
    /// begins (or discard them; setup is not part of any measured day).
    pub fn setup(
        profile: WorkloadProfile,
        fs: &mut FileSystem,
        rng: &mut SimRng,
    ) -> Result<(Self, Vec<IoRequest>), FsError> {
        let mut setup_reqs = Vec::new();
        let mut dirs = Vec::with_capacity(profile.n_dirs);
        for _ in 0..profile.n_dirs {
            let (d, reqs) = fs.mkdir()?;
            setup_reqs.extend(reqs);
            dirs.push(d);
        }
        let sizes = FileSizes::new(profile.file_min, profile.file_max, profile.size_alpha);
        let mut size_rng = rng.substream("file-sizes");
        let mut dir_rng = rng.substream("file-dirs");
        let mut files = Vec::with_capacity(profile.n_files);
        for _ in 0..profile.n_files {
            let dir = dirs[dir_rng.index(dirs.len())];
            let size = sizes.sample(&mut size_rng);
            let (handle, reqs) = fs.create(dir, size)?;
            setup_reqs.extend(reqs);
            files.push(FileRec { handle, dir });
        }
        setup_reqs.extend(fs.sync());

        // Age the file system: rounds of delete/recreate churn fragment
        // the free lists so block placement looks like months of
        // production use rather than a fresh `newfs` (see
        // `WorkloadProfile::aging_rounds`).
        let mut age_rng = rng.substream("aging");
        for _ in 0..profile.aging_rounds {
            let n_churn = ((files.len() as f64) * profile.aging_churn) as usize;
            for _ in 0..n_churn {
                let victim = age_rng.index(files.len());
                let rec = files.swap_remove(victim);
                setup_reqs.extend(fs.delete(rec.dir, rec.handle)?);
            }
            for _ in 0..n_churn {
                let dir = dirs[age_rng.index(dirs.len())];
                let size = sizes.sample(&mut age_rng);
                let (handle, reqs) = fs.create(dir, size)?;
                setup_reqs.extend(reqs);
                files.push(FileRec { handle, dir });
            }
            setup_reqs.extend(fs.sync());
        }

        // Popularity: hot ranks go preferentially to *small* files (the
        // most-executed binaries — shells, core utilities, libc stubs —
        // are small), with random jitter so the correlation is loose.
        // Creation order already scattered files over the disk, so hot
        // files end up far apart — the paper's starting condition.
        let mut perm_rng = rng.substream("popularity-perm");
        let mut keyed: Vec<(u64, usize)> = files
            .iter()
            .enumerate()
            .map(|(i, rec)| {
                let sz = fs.file_size(rec.handle).unwrap_or(0);
                // Log-uniform jitter over [1, 2048): a loose correlation —
                // small files are usually hotter, but plenty of mid-size
                // binaries rank high too, so the hot set spans hundreds
                // of blocks rather than collapsing into the cache.
                let jitter = (perm_rng.f64() * 2048f64.ln()).exp();
                ((sz as f64 * jitter) as u64, i)
            })
            .collect();
        keyed.sort_unstable();
        let rank_to_file: Vec<usize> = keyed.into_iter().map(|(_, i)| i).collect();

        let popularity = Zipf::new(files.len(), profile.popularity_s);
        let m = &profile.mix;
        let mix = Weighted::new(&[
            m.read_whole,
            m.read_range,
            m.write_range,
            m.create,
            m.append,
            m.delete,
        ]);
        let mut arrival_rng = rng.substream("arrivals");
        let arrivals = OnOff::new(profile.arrivals, &mut arrival_rng);
        Ok((
            WorkloadState {
                profile,
                files,
                rank_to_file,
                popularity,
                sizes,
                mix,
                arrivals,
                dirs,
                rng: arrival_rng,
                day: 0,
                offset_zipf: FastMap::default(),
            },
            setup_reqs,
        ))
    }

    /// The profile this generator runs.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Current day index (starts at 0, advanced by
    /// [`WorkloadState::advance_day`]).
    pub fn day(&self) -> u64 {
        self.day
    }

    /// Number of live files.
    pub fn n_files(&self) -> usize {
        self.files.len()
    }

    /// Draw the next operation strictly after `now`.
    pub fn next_op(&mut self, now: SimTime, fs: &FileSystem) -> (SimTime, Op) {
        let at = self.arrivals.next_after(now, &mut self.rng);
        let op = self.draw_op(fs);
        (at, op)
    }

    /// Pick a file by popularity rank.
    fn pick_file(&mut self) -> usize {
        let rank = self.popularity.sample(&mut self.rng);
        self.rank_to_file[rank.min(self.rank_to_file.len() - 1)]
    }

    /// Pick a file from the cold tail (victims for deletion).
    fn pick_cold_file(&mut self) -> usize {
        let n = self.rank_to_file.len();
        let tail_start = n - (n / 4).max(1);
        let rank = tail_start + self.rng.index(n - tail_start);
        self.rank_to_file[rank]
    }

    /// A stable, skewed block offset within a file: rank drawn from a
    /// Zipf over the file's blocks, mapped through a per-file permutation
    /// so each file has its own fixed set of hot pages.
    fn hot_offset(&mut self, file: FileHandle, total: usize) -> usize {
        let z = self
            .offset_zipf
            .entry(total)
            .or_insert_with(|| Zipf::new(total, 1.6));
        let rank = z.sample(&mut self.rng) as u64;
        // Stateless mix of (ino, rank): stable across days.
        abr_sim::rng::splitmix64(file.0 ^ rank.rotate_left(32)) as usize % total
    }

    fn draw_op(&mut self, fs: &FileSystem) -> Op {
        // Geometric number of blocks for range ops.
        fn geometric(rng: &mut SimRng, mean: f64) -> usize {
            let p = 1.0 / mean.max(1.0);
            let mut n = 1;
            while !rng.chance(p) && n < 64 {
                n += 1;
            }
            n
        }

        match self.mix.sample(&mut self.rng) {
            0 => {
                let i = self.pick_file();
                Op::ReadWhole(self.files[i].handle)
            }
            1 => {
                let i = self.pick_file();
                let f = self.files[i].handle;
                let total = fs.n_file_blocks(f).unwrap_or(0);
                if total == 0 {
                    return Op::ReadWhole(f);
                }
                let n = geometric(&mut self.rng, self.profile.mean_range_blocks).min(total);
                let start = self.hot_offset(f, total).min(total - n);
                Op::ReadRange {
                    file: f,
                    start,
                    n_blocks: n,
                }
            }
            2 => {
                let i = self.pick_file();
                let f = self.files[i].handle;
                let total = fs.n_file_blocks(f).unwrap_or(0);
                if total == 0 {
                    return Op::ReadWhole(f);
                }
                let n = geometric(&mut self.rng, self.profile.mean_range_blocks).min(total);
                let start = self.rng.index(total - n + 1);
                Op::WriteRange {
                    file: f,
                    start,
                    n_blocks: n,
                }
            }
            3 => {
                let dir = self.dirs[self.rng.index(self.dirs.len())];
                // New files are small (mail, objects, dotfiles): cap the
                // size so one create cannot dump a huge burst into the
                // next sync — consistent with the paper's low users-fs
                // waiting times.
                let size = self.sizes.sample(&mut self.rng).min(32 * 1024);
                Op::Create { dir, size }
            }
            4 => {
                let i = self.pick_file();
                let f = self.files[i].handle;
                // Cap growth: endlessly appending to hot files would make
                // the working set balloon across days and make on/off days
                // incomparable. Past the cap the op degrades to an
                // overwrite of the file's tail (log rotation, in effect).
                let total = fs.n_file_blocks(f).unwrap_or(0);
                if total >= 32 {
                    return Op::WriteRange {
                        file: f,
                        start: total - 1,
                        n_blocks: 1,
                    };
                }
                let bytes = (self.rng.below(4) + 1) * 1024;
                Op::Append { file: f, bytes }
            }
            _ => {
                let idx = self.pick_cold_file();
                let rec = self.files[idx];
                Op::Delete {
                    dir: rec.dir,
                    file: rec.handle,
                }
            }
        }
    }

    /// Execute an operation against the file system, returning the disk
    /// requests it triggers. Failed mutations on full/read-only file
    /// systems degrade to no-ops (returning no requests), so a generator
    /// never wedges an experiment.
    pub fn apply(&mut self, op: Op, fs: &mut FileSystem) -> Vec<IoRequest> {
        match op {
            Op::ReadWhole(f) => fs.read_file(f).unwrap_or_default(),
            Op::ReadRange {
                file,
                start,
                n_blocks,
            } => fs.read(file, start, n_blocks).unwrap_or_default(),
            Op::WriteRange {
                file,
                start,
                n_blocks,
            } => fs.write(file, start, n_blocks).unwrap_or_default(),
            Op::Create { dir, size } => match fs.create(dir, size) {
                Ok((handle, reqs)) => {
                    // The new file takes over a random cold rank so the
                    // popularity law is preserved. The rank's previous
                    // holder may become unreachable by future operations —
                    // modelling a file the users stop touching; it stays
                    // on disk (and in `files`) like any forgotten file.
                    let idx = self.files.len();
                    self.files.push(FileRec { handle, dir });
                    let n = self.rank_to_file.len();
                    let tail = n - (n / 4).max(1);
                    let victim_rank = tail + self.rng.index(n - tail);
                    self.rank_to_file[victim_rank] = idx;
                    reqs
                }
                Err(_) => Vec::new(),
            },
            Op::Append { file, bytes } => fs.append(file, bytes).unwrap_or_default(),
            Op::Delete { dir, file } => {
                match fs.delete(dir, file) {
                    Ok(reqs) => {
                        // Remap any ranks pointing at the deleted file to a
                        // random survivor. The dead FileRec stays in
                        // `files` (indices are stable identifiers);
                        // operations that still land on it degrade to
                        // NoSuchFile no-ops by design.
                        if let Some(pos) = self.files.iter().position(|r| r.handle == file) {
                            let replacement = self.rng.index(self.files.len());
                            for r in &mut self.rank_to_file {
                                if *r == pos {
                                    *r = replacement;
                                }
                            }
                        }
                        reqs
                    }
                    Err(_) => Vec::new(),
                }
            }
        }
    }

    /// Advance to the next day: reshuffle `daily_drift` of the popularity
    /// ranks ("day-to-day access patterns that change only slowly" for the
    /// system fs; faster for users — §5.3).
    pub fn advance_day(&mut self) {
        self.day += 1;
        let n = self.rank_to_file.len();
        let swaps = ((n as f64) * self.profile.daily_drift / 2.0).round() as usize;
        let mut r = self.rng.substream_idx("drift", self.day);
        for _ in 0..swaps {
            let a = r.index(n);
            let b = r.index(n);
            self.rank_to_file.swap(a, b);
        }
    }

    /// Snapshot the generator's persistent state (population, popularity
    /// assignment, day counter) for suspend/resume alongside a saved file
    /// system. The arrival process and RNG restart from a seed derived
    /// from `seed` and the day counter, so a resumed run is deterministic
    /// (though not bit-identical to an uninterrupted one).
    pub fn save_state(&self) -> serde_json::Value {
        serde_json::json!({
            "profile": self.profile,
            "files": self.files,
            "rank_to_file": self.rank_to_file,
            "dirs": self.dirs,
            "day": self.day,
        })
    }

    /// Restore a generator from [`WorkloadState::save_state`] output.
    pub fn load_state(state: &serde_json::Value, seed: u64) -> Result<Self, serde_json::Error> {
        let profile: WorkloadProfile = serde_json::from_value(state["profile"].clone())?;
        let files: Vec<FileRec> = serde_json::from_value(state["files"].clone())?;
        let day: u64 = serde_json::from_value(state["day"].clone())?;
        let m = &profile.mix;
        let mix = Weighted::new(&[
            m.read_whole,
            m.read_range,
            m.write_range,
            m.create,
            m.append,
            m.delete,
        ]);
        let sizes = FileSizes::new(profile.file_min, profile.file_max, profile.size_alpha);
        let root = SimRng::new(seed);
        let mut arrival_rng = root.substream_idx("resume", day);
        let arrivals = OnOff::new(profile.arrivals, &mut arrival_rng);
        Ok(WorkloadState {
            profile,
            files,
            rank_to_file: serde_json::from_value(state["rank_to_file"].clone())?,
            popularity: Zipf::new(
                serde_json::from_value::<Vec<usize>>(state["rank_to_file"].clone())?.len(),
                serde_json::from_value::<WorkloadProfile>(state["profile"].clone())?.popularity_s,
            ),
            sizes,
            mix,
            arrivals,
            dirs: serde_json::from_value(state["dirs"].clone())?,
            rng: arrival_rng,
            day,
            offset_zipf: FastMap::default(),
        })
    }

    /// The hottest `k` files (by current rank), for assertions and
    /// debugging.
    pub fn hottest_files(&self, k: usize) -> Vec<FileHandle> {
        self.rank_to_file
            .iter()
            .take(k)
            .map(|&i| self.files[i].handle)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_fs::fs::{FsConfig, MountMode};

    fn test_fs() -> FileSystem {
        let cfg = FsConfig {
            cache_blocks: 128,
            mode: MountMode::ReadWrite,
            ..FsConfig::default()
        };
        FileSystem::newfs(cfg, 240_000, 340)
    }

    fn setup() -> (WorkloadState, FileSystem) {
        let mut fs = test_fs();
        let mut rng = SimRng::new(42);
        let (ws, _setup_reqs) =
            WorkloadState::setup(WorkloadProfile::tiny_test(), &mut fs, &mut rng).unwrap();
        (ws, fs)
    }

    #[test]
    fn setup_creates_population() {
        let (ws, fs) = setup();
        assert_eq!(ws.n_files(), 150);
        assert_eq!(fs.n_dirs(), 60);
        assert_eq!(fs.dirty_blocks(), 0, "setup must leave the cache clean");
    }

    #[test]
    fn ops_advance_time_monotonically() {
        let (mut ws, fs) = setup();
        let mut now = SimTime::ZERO;
        for _ in 0..200 {
            let (at, _op) = ws.next_op(now, &fs);
            assert!(at > now);
            now = at;
        }
    }

    #[test]
    fn apply_never_panics_over_long_runs() {
        let (mut ws, mut fs) = setup();
        let mut now = SimTime::ZERO;
        let mut total_reqs = 0usize;
        for _ in 0..3000 {
            let (at, op) = ws.next_op(now, &fs);
            now = at;
            total_reqs += ws.apply(op, &mut fs).len();
        }
        assert!(total_reqs > 0, "workload should generate disk traffic");
    }

    #[test]
    fn popularity_is_skewed() {
        // Count per-file read ops; the hottest file must dominate.
        let (mut ws, mut fs) = setup();
        let mut counts = std::collections::HashMap::new();
        let mut now = SimTime::ZERO;
        for _ in 0..5000 {
            let (at, op) = ws.next_op(now, &fs);
            now = at;
            if let Op::ReadWhole(f) | Op::ReadRange { file: f, .. } = op {
                *counts.entry(f).or_insert(0u32) += 1;
            }
            ws.apply(op, &mut fs);
        }
        let mut sorted: Vec<u32> = counts.values().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let total: u32 = sorted.iter().sum();
        let top5: u32 = sorted.iter().take(5).sum();
        assert!(
            f64::from(top5) / f64::from(total) > 0.3,
            "top-5 files carry only {}/{}",
            top5,
            total
        );
    }

    #[test]
    fn drift_changes_hot_set_gradually() {
        let (mut ws, _fs) = setup();
        let before = ws.hottest_files(10);
        ws.advance_day();
        let after = ws.hottest_files(10);
        let kept = before.iter().filter(|f| after.contains(f)).count();
        assert!(kept >= 7, "drift too violent: kept {kept}/10");
        assert_eq!(ws.day(), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut fs = test_fs();
            let mut rng = SimRng::new(7);
            let (mut ws, _) =
                WorkloadState::setup(WorkloadProfile::tiny_test(), &mut fs, &mut rng).unwrap();
            let mut now = SimTime::ZERO;
            let mut log = Vec::new();
            for _ in 0..100 {
                let (at, op) = ws.next_op(now, &fs);
                now = at;
                log.push((at.as_micros(), format!("{op:?}")));
                ws.apply(op, &mut fs);
            }
            log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn aging_fragments_file_layout() {
        // Without aging a fresh FFS lays file blocks out at the exact
        // interleave gap; after churn rounds, allocations land in holes
        // and gaps widen — the production-disk layout the paper measured.
        let gap_stats = |rounds: u32| {
            let mut fs = test_fs();
            let mut rng = SimRng::new(11);
            let mut profile = WorkloadProfile::tiny_test();
            profile.aging_rounds = rounds;
            profile.n_files = 120;
            let (ws, _) = WorkloadState::setup(profile, &mut fs, &mut rng).unwrap();
            let mut irregular = 0u32;
            let mut total = 0u32;
            for f in ws.hottest_files(120) {
                if let Ok(blocks) = fs.file_blocks(f) {
                    for w in blocks.windows(2) {
                        total += 1;
                        if w[1] as i64 - w[0] as i64 != 2 {
                            irregular += 1;
                        }
                    }
                }
            }
            if total == 0 {
                0.0
            } else {
                f64::from(irregular) / f64::from(total)
            }
        };
        let fresh = gap_stats(0);
        let aged = gap_stats(4);
        // At tiny-profile scale the disk is mostly empty, so churn holes
        // are often refilled at the interleave spot; the fragmentation is
        // directional rather than dramatic (full-scale profiles churn
        // 4 rounds at 40% over a much fuller disk).
        assert!(
            aged > fresh + 0.03,
            "aging should fragment layout: fresh {fresh:.2}, aged {aged:.2}"
        );
    }

    #[test]
    fn hot_offsets_are_stable_across_days() {
        // The same file's page-in offsets concentrate on the same blocks
        // day after day (demand-paged binaries fault the same pages).
        let (mut ws, fs) = setup();
        let f = ws.hottest_files(1)[0];
        let total = fs.n_file_blocks(f).unwrap().max(4);
        // The rank->offset mapping is deterministic per file; empirical
        // sampling only needs enough draws that the top page is
        // unambiguous.
        let sample = |ws: &mut WorkloadState| {
            let mut counts = std::collections::HashMap::new();
            for _ in 0..3000 {
                let off = ws.hot_offset(f, total);
                *counts.entry(off).or_insert(0u32) += 1;
            }
            let mut v: Vec<(usize, u32)> = counts.into_iter().collect();
            v.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
            v[0].0
        };
        let before = sample(&mut ws);
        ws.advance_day();
        let after = sample(&mut ws);
        assert_eq!(before, after, "the hottest page must be stable across days");
    }

    #[test]
    fn suspend_resume_preserves_population_and_popularity() {
        let (mut ws, mut fs) = setup();
        // Run a little so state diverges from setup.
        let mut now = SimTime::ZERO;
        for _ in 0..300 {
            let (at, op) = ws.next_op(now, &fs);
            now = at;
            ws.apply(op, &mut fs);
        }
        ws.advance_day();
        let hot_before = ws.hottest_files(10);

        let state = ws.save_state();
        let mut back = WorkloadState::load_state(&state, 123).unwrap();
        assert_eq!(back.n_files(), ws.n_files());
        assert_eq!(back.day(), ws.day());
        assert_eq!(back.hottest_files(10), hot_before);
        // The resumed generator keeps producing valid operations.
        let mut now = SimTime::ZERO;
        for _ in 0..200 {
            let (at, op) = back.next_op(now, &fs);
            now = at;
            back.apply(op, &mut fs);
        }
    }

    #[test]
    fn create_and_delete_keep_state_consistent() {
        let (mut ws, mut fs) = setup();
        let mut now = SimTime::ZERO;
        for _ in 0..2000 {
            let (at, op) = ws.next_op(now, &fs);
            now = at;
            ws.apply(op, &mut fs);
            // Every rank must point at a valid file index.
            for &i in &ws.rank_to_file {
                assert!(i < ws.files.len());
            }
        }
    }
}
