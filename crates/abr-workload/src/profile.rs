//! Workload profiles: tunable parameters and the paper-calibrated presets.

use abr_sim::arrival::OnOffParams;
use abr_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Relative frequencies of the file-level operation kinds. Normalized at
/// draw time; entries may be zero.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpMix {
    /// Read a whole file (executable load, library page-in).
    pub read_whole: f64,
    /// Read a sub-range of a file.
    pub read_range: f64,
    /// Overwrite a sub-range of an existing file.
    pub write_range: f64,
    /// Create a new file.
    pub create: f64,
    /// Append to an existing file (file extension).
    pub append: f64,
    /// Delete a file.
    pub delete: f64,
}

impl OpMix {
    /// Sum of the weights.
    pub fn total(&self) -> f64 {
        self.read_whole
            + self.read_range
            + self.write_range
            + self.create
            + self.append
            + self.delete
    }
}

/// Parameters of a synthetic workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Profile name for reports.
    pub name: String,
    /// Number of directories the files spread over.
    pub n_dirs: usize,
    /// Number of files created at setup.
    pub n_files: usize,
    /// Smallest file, bytes.
    pub file_min: u64,
    /// Largest file, bytes.
    pub file_max: u64,
    /// File-size tail exponent (bigger = more small files).
    pub size_alpha: f64,
    /// File-popularity Zipf exponent. Popularity is by *rank*: the rank-0
    /// file is hottest.
    pub popularity_s: f64,
    /// Operation mix.
    pub mix: OpMix,
    /// Bursty arrival process parameters.
    pub arrivals: OnOffParams,
    /// Fraction of the popularity ranks reshuffled between days (0 =
    /// perfectly stable day to day, 1 = a fresh workload every day).
    pub daily_drift: f64,
    /// Mean blocks in a partial (range) read/write, geometric.
    pub mean_range_blocks: f64,
    /// Working day length (the paper measured 7am–10pm).
    pub day_length: SimDuration,
    /// File-system aging: churn rounds run at setup. Each round deletes
    /// `aging_churn` of the files and recreates as many, fragmenting the
    /// free lists the way months of production use would. A fresh FFS
    /// lays files out contiguously; the paper measured a *production*
    /// file system, where file blocks are scattered — which is exactly
    /// what makes its off-day seek distances long.
    pub aging_rounds: u32,
    /// Fraction of files churned per aging round.
    pub aging_churn: f64,
    /// Whether user *data* writes go through to disk at operation time
    /// (NFS2 synchronous writes) rather than riding the periodic sync.
    pub nfs_write_through: bool,
    /// Effective server buffer-cache share for this file system, in
    /// blocks. The paper's server ran several file systems, local users
    /// and 14 NFS clients against one dynamically-sized buffer cache, so
    /// the effective share per file system was far below physical memory.
    /// Calibrated per profile to reproduce the measured disk-level
    /// request distributions.
    pub cache_blocks: usize,
}

impl WorkloadProfile {
    /// The *system* file system: shared executables and libraries,
    /// mounted read-only by clients. Reads dominate; the only writes the
    /// disk sees are i-node timestamp updates flushed by the periodic
    /// update daemon. Popularity is pinned so the disk-level request
    /// distribution matches §5.4 (top-100 blocks absorb ~90 % of
    /// requests over < 2000 active blocks).
    pub fn system_fs() -> Self {
        WorkloadProfile {
            name: "system".to_string(),
            // A real /usr tree has hundreds of directories; FFS spreads
            // them round-robin over every cylinder group, which is what
            // scatters hot files across the whole disk surface.
            n_dirs: 160,
            n_files: 850,
            file_min: 2 * 1024,
            file_max: 1 << 20, // 1 MB (large binaries)
            size_alpha: 1.3,
            popularity_s: 2.4,
            // Executables and libraries are demand-paged: most server
            // reads are single-block page-ins at essentially random file
            // offsets, interleaved across binaries — not sequential
            // whole-file reads. Whole-file reads (cp, grep over sources)
            // are the minority.
            mix: OpMix {
                read_whole: 0.30,
                read_range: 0.70,
                write_range: 0.0,
                create: 0.0,
                append: 0.0,
                delete: 0.0,
            },
            arrivals: OnOffParams {
                mean_on: SimDuration::from_secs(2),
                mean_off: SimDuration::from_secs(26),
                on_rate_per_sec: 25.0,
            },
            daily_drift: 0.04,
            mean_range_blocks: 2.0,
            day_length: SimDuration::from_hours(15),
            aging_rounds: 4,
            aging_churn: 0.4,
            nfs_write_through: true,
            cache_blocks: 48,
        }
    }

    /// The *users* file system: 10–20 home directories, read/write.
    /// Less skew, writes from new-file creation and file extension, more
    /// day-to-day variation (§5.3).
    pub fn users_fs() -> Self {
        WorkloadProfile {
            name: "users".to_string(),
            n_dirs: 80, // 20 home directories plus user subdirectories
            n_files: 1000,
            file_min: 512,
            file_max: 1 << 20,
            size_alpha: 1.2,
            popularity_s: 1.7,
            mix: OpMix {
                read_whole: 0.32,
                read_range: 0.40,
                write_range: 0.12,
                create: 0.04,
                append: 0.08,
                delete: 0.04,
            },
            arrivals: OnOffParams {
                mean_on: SimDuration::from_millis(800),
                mean_off: SimDuration::from_secs(12),
                on_rate_per_sec: 6.0,
            },
            daily_drift: 0.12,
            mean_range_blocks: 2.0,
            day_length: SimDuration::from_hours(15),
            aging_rounds: 3,
            aging_churn: 0.4,
            nfs_write_through: true,
            cache_blocks: 150,
        }
    }

    /// A scaled-down profile for fast unit and integration tests.
    pub fn tiny_test() -> Self {
        WorkloadProfile {
            name: "tiny".to_string(),
            n_dirs: 60,
            n_files: 150,
            file_min: 1024,
            file_max: 64 * 1024,
            size_alpha: 1.1,
            popularity_s: 1.8,
            mix: OpMix {
                read_whole: 0.5,
                read_range: 0.3,
                write_range: 0.1,
                create: 0.03,
                append: 0.04,
                delete: 0.03,
            },
            arrivals: OnOffParams {
                mean_on: SimDuration::from_millis(300),
                mean_off: SimDuration::from_secs(2),
                on_rate_per_sec: 40.0,
            },
            daily_drift: 0.1,
            mean_range_blocks: 2.0,
            day_length: SimDuration::from_mins(10),
            aging_rounds: 2,
            aging_churn: 0.35,
            nfs_write_through: false,
            cache_blocks: 192,
        }
    }

    /// Whether the profile ever mutates files (needs a read-write mount).
    pub fn is_mutating(&self) -> bool {
        self.mix.write_range > 0.0
            || self.mix.create > 0.0
            || self.mix.append > 0.0
            || self.mix.delete > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        for p in [
            WorkloadProfile::system_fs(),
            WorkloadProfile::users_fs(),
            WorkloadProfile::tiny_test(),
        ] {
            assert!(p.n_files > 0);
            assert!(p.file_min < p.file_max);
            assert!(p.mix.total() > 0.99);
            assert!(p.daily_drift >= 0.0 && p.daily_drift <= 1.0);
            assert!(p.arrivals.mean_rate_per_sec() > 0.0);
        }
    }

    #[test]
    fn system_fs_is_read_only_workload() {
        let p = WorkloadProfile::system_fs();
        assert!(!p.is_mutating());
        assert_eq!(p.mix.create, 0.0);
    }

    #[test]
    fn users_fs_mutates() {
        assert!(WorkloadProfile::users_fs().is_mutating());
    }

    #[test]
    fn users_fs_drifts_more_than_system_fs() {
        assert!(WorkloadProfile::users_fs().daily_drift > WorkloadProfile::system_fs().daily_drift);
    }

    #[test]
    fn users_fs_less_skewed() {
        assert!(
            WorkloadProfile::users_fs().popularity_s < WorkloadProfile::system_fs().popularity_s
        );
    }

    #[test]
    fn serde_roundtrip() {
        let p = WorkloadProfile::system_fs();
        let json = serde_json::to_string(&p).unwrap();
        let back: WorkloadProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back.name, "system");
        assert_eq!(back.n_files, p.n_files);
    }
}
