//! Block-level trace record/replay.
//!
//! The paper's own prior work ([Akyürek 93]) was trace-driven; this
//! module provides the equivalent capability for the reproduction: a
//! serializable log of the block-level requests a workload produced, so
//! experiments can be replayed exactly (e.g. to compare placement
//! policies on the *identical* request stream) and shipped as artifacts.

use abr_disk::disk::IoDir;
use abr_driver::request::IoRequest;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};

/// One logged request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Submission time, microseconds since day start.
    pub at_us: u64,
    /// Read or write.
    pub dir: IoDir,
    /// Partition index.
    pub partition: usize,
    /// Starting sector within the partition.
    pub sector: u64,
    /// Length in sectors.
    pub n_sectors: u32,
}

impl TraceEvent {
    /// Build a logged event from a request about to be submitted.
    pub fn of(req: &IoRequest, at_us: u64) -> Self {
        TraceEvent {
            at_us,
            dir: req.dir,
            partition: req.partition,
            sector: req.sector_in_partition,
            n_sectors: req.n_sectors,
        }
    }

    /// Reconstruct a submittable request (writes carry zero payloads —
    /// traces capture addresses and sizes, not data).
    pub fn to_request(self) -> IoRequest {
        match self.dir {
            IoDir::Read => IoRequest::read(self.partition, self.sector, self.n_sectors),
            IoDir::Write => IoRequest::write_zeroes(self.partition, self.sector, self.n_sectors),
        }
    }
}

/// An in-memory trace log with JSON-lines persistence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
}

impl TraceLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event. Events must be appended in non-decreasing time
    /// order.
    ///
    /// # Panics
    /// Panics on out-of-order appends.
    pub fn push(&mut self, e: TraceEvent) {
        if let Some(last) = self.events.last() {
            assert!(e.at_us >= last.at_us, "trace events out of order");
        }
        self.events.push(e);
    }

    /// The logged events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serialize as JSON lines.
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        for e in &self.events {
            serde_json::to_writer(&mut w, e)?;
            w.write_all(b"\n")?;
        }
        Ok(())
    }

    /// Parse from JSON lines.
    pub fn read_jsonl<R: BufRead>(r: R) -> std::io::Result<TraceLog> {
        let mut log = TraceLog::new();
        for line in r.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let e: TraceEvent = serde_json::from_str(&line)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            log.push(e);
        }
        Ok(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_us: u64, sector: u64) -> TraceEvent {
        TraceEvent {
            at_us,
            dir: IoDir::Read,
            partition: 0,
            sector,
            n_sectors: 16,
        }
    }

    #[test]
    fn roundtrip_jsonl() {
        let mut log = TraceLog::new();
        log.push(ev(0, 100));
        log.push(ev(500, 200));
        log.push(TraceEvent {
            at_us: 900,
            dir: IoDir::Write,
            partition: 1,
            sector: 32,
            n_sectors: 2,
        });
        let mut buf = Vec::new();
        log.write_jsonl(&mut buf).unwrap();
        let back = TraceLog::read_jsonl(&buf[..]).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn rejects_out_of_order() {
        let mut log = TraceLog::new();
        log.push(ev(100, 1));
        log.push(ev(50, 2));
    }

    #[test]
    fn event_of_request_roundtrip() {
        let req = IoRequest::read(2, 1234, 8);
        let e = TraceEvent::of(&req, 42);
        assert_eq!(e.at_us, 42);
        let back = e.to_request();
        assert_eq!(back.partition, 2);
        assert_eq!(back.sector_in_partition, 1234);
        assert_eq!(back.n_sectors, 8);
    }

    #[test]
    fn write_events_replay_with_zero_payload() {
        let e = TraceEvent {
            at_us: 0,
            dir: IoDir::Write,
            partition: 0,
            sector: 16,
            n_sectors: 4,
        };
        let req = e.to_request();
        assert_eq!(req.data.len(), 4 * 512);
    }

    #[test]
    fn read_jsonl_skips_blank_lines() {
        let text = "\n\n";
        let log = TraceLog::read_jsonl(text.as_bytes()).unwrap();
        assert!(log.is_empty());
    }
}
