//! Serving-run configuration.

use abr_array::{Redundancy, StripePolicy};
use abr_core::recovery::MaintenanceConfig;
use abr_disk::fault::FaultPlan;
use abr_disk::models::DiskModel;
use abr_driver::SchedulerKind;
use abr_sim::SimDuration;

/// Shape of each client's open-loop arrival process. Every client's
/// long-run rate is the aggregate rate divided by the client count;
/// the kind decides how those arrivals cluster in time.
#[derive(Debug, Clone, Copy)]
pub enum ArrivalKind {
    /// Memoryless arrivals (baseline).
    Poisson,
    /// ON/OFF bursts: while ON the client issues at `burst` times its
    /// long-run rate; ON periods last `mean_on` on average and the OFF
    /// gaps are sized so the long-run rate still matches. §5.2 of the
    /// paper: "the request arrival pattern was very bursty".
    Bursty {
        /// ON-period rate as a multiple of the long-run rate (> 1).
        burst: f64,
        /// Mean ON-period length.
        mean_on: SimDuration,
    },
}

/// Configuration of a serving run: the volume underneath, the client
/// population on top, and the admission/fairness knobs in between.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Member disk model.
    pub disk: DiskModel,
    /// Number of member disks.
    pub n_disks: usize,
    /// How volume blocks are laid out over the members.
    pub stripe: StripePolicy,
    /// Redundancy scheme woven into the stripe map.
    pub redundancy: Redundancy,
    /// Rebuild/scrub pacing (consulted for redundant schemes).
    pub maintenance: MaintenanceConfig,
    /// Optional per-disk fault plans, indexed by disk.
    pub fault_plans: Vec<Option<FaultPlan>>,
    /// Member disk scheduler.
    pub scheduler: SchedulerKind,
    /// Reserved cylinders per member; `> 0` runs the adaptive protocol
    /// (per-disk monitors + between-epoch rearrangement).
    pub reserved_cylinders: u32,
    /// Hot blocks each member places between epochs (adaptive only).
    pub place_blocks: usize,
    /// How often each member's request table is read into its analyzer
    /// (adaptive only; the paper used two minutes).
    pub monitor_period: SimDuration,

    /// Number of simulated clients.
    pub n_clients: usize,
    /// Aggregate long-run arrival rate over all clients, requests/s.
    pub aggregate_rate_per_sec: f64,
    /// Per-client arrival process shape.
    pub arrivals: ArrivalKind,
    /// Fraction of requests that are reads (the rest write).
    pub read_fraction: f64,
    /// Working-set size in file-system blocks; client block popularity
    /// is Zipf over this set, scattered across the volume.
    pub working_set_blocks: usize,
    /// Zipf exponent of block popularity.
    pub zipf_exponent: f64,

    /// Hard bound on the shared accept queue; arrivals beyond it shed.
    pub accept_queue_cap: usize,
    /// Per-client token-bucket refill rate, requests/s.
    pub bucket_rate_per_sec: f64,
    /// Per-client token-bucket capacity, whole requests.
    pub bucket_burst: u32,
    /// DRR credit per ring visit, in sectors.
    pub drr_quantum: u32,
    /// Requests the front end keeps in flight at the volume at once.
    pub max_inflight: usize,

    /// Length of one serving epoch (the day-series granularity).
    pub epoch: SimDuration,
    /// Number of epochs [`crate::ServeExperiment::run`] serves.
    pub epochs: usize,
    /// Master seed; clients draw from indexed substreams of it.
    pub seed: u64,
}

impl ServeConfig {
    /// A small single-disk baseline: 16 Poisson clients, moderate
    /// load, no reserved region. Start here and override fields.
    pub fn new(disk: DiskModel) -> Self {
        ServeConfig {
            disk,
            n_disks: 1,
            stripe: StripePolicy::Striped { chunk_blocks: 8 },
            redundancy: Redundancy::None,
            maintenance: MaintenanceConfig::default(),
            fault_plans: Vec::new(),
            scheduler: SchedulerKind::Scan,
            reserved_cylinders: 0,
            place_blocks: 0,
            monitor_period: SimDuration::from_mins(2),
            n_clients: 16,
            aggregate_rate_per_sec: 15.0,
            arrivals: ArrivalKind::Poisson,
            read_fraction: 0.7,
            working_set_blocks: 2048,
            zipf_exponent: 1.1,
            accept_queue_cap: 256,
            bucket_rate_per_sec: 4.0,
            bucket_burst: 16,
            drr_quantum: 16,
            max_inflight: 16,
            epoch: SimDuration::from_mins(10),
            epochs: 1,
            seed: 0x5E12_7E00,
        }
    }

    /// Long-run arrival rate of one client.
    pub fn per_client_rate(&self) -> f64 {
        self.aggregate_rate_per_sec / self.n_clients as f64
    }
}
