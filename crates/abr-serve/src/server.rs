//! The serving harness: open-loop clients over an [`ArrayVolume`].
//!
//! One instance is a single-threaded discrete-event simulation of a
//! block server: per-client arrival generators feed the admission path
//! (token bucket, then the bounded accept queue), a DRR scan dispatches
//! accepted requests to the volume, and completions flow back to the
//! clients. The event loop merges arrivals, volume completions, monitor
//! reads, and array maintenance into one time-ordered stream with fixed
//! tie-breaking, so a configuration maps to exactly one execution.
//!
//! Epochs play the role the measured day plays in the paper harnesses:
//! each [`ServeExperiment::run_epoch`] serves one epoch, drains, and
//! records a day-series point; with a reserved region configured,
//! [`ServeExperiment::rearrange`] runs the paper's overnight protocol
//! between epochs — per-member hot lists from the epoch's monitor
//! reads, placed into each member's reserved cylinders.

use crate::admission::TokenBucket;
use crate::config::{ArrivalKind, ServeConfig};
use crate::drr::Drr;
use abr_array::{ArrayHealth, ArrayVolume, VolRequestId};
use abr_core::analyzer::FullAnalyzer;
use abr_core::arranger::{BlockArranger, RearrangeReport};
use abr_core::daemon::RearrangementDaemon;
use abr_core::{run_meter_add, PolicyKind};
use abr_disk::fault::{FaultInjector, FaultPlan};
use abr_disk::{Disk, DiskLabel};
use abr_driver::{AdaptiveDriver, DriverConfig, IoRequest, Ioctl};
use abr_obs::registry::{CounterId, GaugeId, HiresId};
use abr_obs::with_registry;
use abr_sim::arrival::{OnOff, OnOffParams, Poisson};
use abr_sim::dist::Zipf;
use abr_sim::{EventQueue, SimDuration, SimRng, SimTime};
use std::collections::{BTreeMap, VecDeque};

/// Sectors per file-system block (8 KB blocks of 512-byte sectors);
/// every client request is exactly one block, so it never crosses a
/// block boundary and maps onto one member disk.
const SECTORS_PER_BLOCK: u32 = 16;

/// `serve.*` registry handles, resolved once at construction.
struct ServeObs {
    arrivals: CounterId,
    accepted: CounterId,
    shed: CounterId,
    throttled: CounterId,
    completed: CounterId,
    errors: CounterId,
    clients: GaugeId,
    queue_depth: GaugeId,
    queue_depth_max: GaugeId,
    inflight: GaugeId,
    request_us: HiresId,
    queue_us: HiresId,
}

impl ServeObs {
    fn resolve() -> ServeObs {
        with_registry(|r| ServeObs {
            arrivals: r.counter("serve.arrivals"),
            accepted: r.counter("serve.accepted"),
            shed: r.counter("serve.shed_total"),
            throttled: r.counter("serve.throttled_total"),
            completed: r.counter("serve.completed"),
            errors: r.counter("serve.errors"),
            clients: r.gauge("serve.clients"),
            queue_depth: r.gauge("serve.queue_depth"),
            queue_depth_max: r.gauge("serve.queue_depth_max"),
            inflight: r.gauge("serve.inflight"),
            request_us: r.hires("serve.request_us"),
            queue_us: r.hires("serve.queue_us"),
        })
    }
}

/// One client's arrival process.
enum ArrivalGen {
    Poisson(Poisson),
    Bursty(OnOff),
}

/// An accepted request waiting in its client's queue for dispatch.
struct Queued {
    arrived: SimTime,
    sector: u64,
    write: bool,
}

/// One simulated client: generators, bucket, and its accept queue.
struct Client {
    gen: ArrivalGen,
    arrival_rng: SimRng,
    shape_rng: SimRng,
    bucket: TokenBucket,
    queue: VecDeque<Queued>,
    completions: u64,
}

impl Client {
    fn next_arrival(&mut self, now: SimTime) -> SimTime {
        match &mut self.gen {
            ArrivalGen::Poisson(p) => p.next_after(now, &mut self.arrival_rng),
            ArrivalGen::Bursty(o) => o.next_after(now, &mut self.arrival_rng),
        }
    }
}

/// A request in flight at the volume.
struct Pending {
    client: usize,
    arrived: SimTime,
}

/// Counters for one epoch (deltas, not lifetime totals).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochStats {
    /// Requests the clients offered.
    pub arrivals: u64,
    /// Requests past both admission gates.
    pub accepted: u64,
    /// Requests refused because the accept queue was full.
    pub shed: u64,
    /// Requests refused by their client's token bucket.
    pub throttled: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests that failed (submit reject or completion error).
    pub errors: u64,
}

/// Lifetime totals of a serving run.
#[derive(Debug, Clone, Default)]
pub struct ServeSummary {
    /// Requests the clients offered.
    pub arrivals: u64,
    /// Requests past both admission gates.
    pub accepted: u64,
    /// Requests refused because the accept queue was full.
    pub shed: u64,
    /// Requests refused by their client's token bucket.
    pub throttled: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests that failed (submit reject or completion error).
    pub errors: u64,
    /// Requests still in flight when the run ended (a degraded member
    /// that never completed them — bounded by `max_inflight`).
    pub stranded: u64,
    /// Deepest the accept queue ever got (bounded by the cap).
    pub queue_depth_max: u64,
    /// Blocks sitting in reserved regions at the end of the run.
    pub placed: u32,
    /// Per-client completion counts — the fairness evidence.
    pub per_client_completions: Vec<u64>,
}

impl ServeSummary {
    /// Max/min ratio of per-client completions (∞ when some client
    /// completed nothing); ≤ 2 is the acceptance bar under DRR.
    pub fn fairness_ratio(&self) -> f64 {
        let max = self
            .per_client_completions
            .iter()
            .copied()
            .max()
            .unwrap_or(0);
        let min = self
            .per_client_completions
            .iter()
            .copied()
            .min()
            .unwrap_or(0);
        if min == 0 {
            if max == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            max as f64 / min as f64
        }
    }
}

/// The assembled block server: volume, clients, admission, dispatch.
pub struct ServeExperiment {
    config: ServeConfig,
    volume: ArrayVolume,
    clients: Vec<Client>,
    drr: Drr,
    arrivals: EventQueue<usize>,
    /// Total accepted-but-undispatched requests across clients.
    backlog: usize,
    inflight: BTreeMap<VolRequestId, Pending>,
    daemons: Vec<RearrangementDaemon>,
    clock: SimTime,
    epoch_index: u64,
    obs: ServeObs,
    totals: ServeSummary,
    epoch_stats: EpochStats,
    queue_depth_max: usize,
    /// Blocks in the volume's data address space.
    total_blocks: u64,
    /// Rank→block scatter stride, coprime with `total_blocks`.
    stride: u64,
    zipf: Zipf,
    placed: u32,
    rearrange_failures: u64,
    /// Member format, kept to build hot-spare replacement drives.
    label: DiskLabel,
    driver_cfg: DriverConfig,
    replaced: Vec<bool>,
}

impl std::fmt::Debug for ServeExperiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeExperiment")
            .field("disk", &self.config.disk.name)
            .field("n_disks", &self.config.n_disks)
            .field("n_clients", &self.config.n_clients)
            .field("epoch", &self.epoch_index)
            .finish_non_exhaustive()
    }
}

impl ServeExperiment {
    /// Build the stack: format the members, assemble the volume, seed
    /// the client population, and install any fault injectors.
    ///
    /// # Panics
    /// Panics when the configuration is degenerate (no clients, no
    /// capacity, a working set larger than the volume).
    pub fn new(config: ServeConfig) -> ServeExperiment {
        let _unmeasured = abr_obs::trace_pause();
        assert!(config.n_clients > 0, "a server needs clients");
        assert!(config.accept_queue_cap > 0, "accept queue needs capacity");
        assert!(config.max_inflight > 0, "need at least one dispatch slot");
        assert!(
            (0.0..=1.0).contains(&config.read_fraction),
            "read fraction is a probability"
        );
        let model = config.disk.clone();
        let label = if config.reserved_cylinders > 0 {
            DiskLabel::rearranged_aligned(
                model.geometry,
                config.reserved_cylinders,
                SECTORS_PER_BLOCK,
            )
        } else {
            DiskLabel::whole_disk(model.geometry)
        };
        let driver_cfg = DriverConfig {
            block_size: 8192,
            scheduler: config.scheduler,
            monitor_capacity: 1 << 20,
            table_max_entries: 8192,
            ..DriverConfig::default()
        };
        let members: Vec<AdaptiveDriver> = (0..config.n_disks)
            .map(|_| {
                let mut disk = Disk::new(model.clone());
                AdaptiveDriver::format(&mut disk, &label, &driver_cfg);
                let mut d =
                    AdaptiveDriver::attach(disk, driver_cfg).expect("fresh format attaches");
                // The front end tracks timing only; no payload delivery.
                d.set_deliver_read_data(false);
                d
            })
            .collect();
        let mut volume = ArrayVolume::with_redundancy(
            members,
            config.stripe,
            config.redundancy,
            config.maintenance,
        );

        let total_blocks = volume.vol_sectors() / u64::from(SECTORS_PER_BLOCK);
        assert!(
            (config.working_set_blocks as u64) <= total_blocks,
            "working set exceeds the volume ({} > {total_blocks} blocks)",
            config.working_set_blocks
        );
        // Scatter Zipf ranks across the whole volume so the hot set is
        // spread out until rearrangement clusters it: block(r) =
        // r * stride mod total, with the stride forced coprime so the
        // map is injective.
        let mut stride: u64 = 7919;
        while gcd(stride, total_blocks) != 1 {
            stride += 1;
        }
        let zipf = Zipf::new(config.working_set_blocks, config.zipf_exponent);

        // One rearrangement daemon per member when a reserved region
        // exists. Raw block traffic has no file-system interleave, so
        // the organ-pipe arrangement uses interleave 1.
        let daemons: Vec<RearrangementDaemon> = if config.reserved_cylinders > 0 {
            (0..config.n_disks)
                .map(|_| {
                    RearrangementDaemon::new(
                        Box::new(FullAnalyzer::new()),
                        BlockArranger::new(PolicyKind::OrganPipe.make(1)),
                        config.monitor_period,
                    )
                })
                .collect()
        } else {
            Vec::new()
        };

        // Zero every member's monitors so epoch 1 starts clean.
        for i in 0..config.n_disks {
            volume
                .disk_mut(i)
                .ioctl(Ioctl::ReadStats, SimTime::ZERO)
                .expect("stats read on a fresh member");
            volume
                .disk_mut(i)
                .ioctl(Ioctl::ReadRequestTable, SimTime::ZERO)
                .expect("table read on a fresh member");
        }

        // The client population: indexed arrival/shape substreams, so
        // adding clients never perturbs existing ones.
        let root = SimRng::new(config.seed);
        let per_client = config.per_client_rate();
        let clients: Vec<Client> = (0..config.n_clients)
            .map(|i| {
                let mut arrival_rng = root.substream_idx("client", i as u64);
                let gen = match config.arrivals {
                    ArrivalKind::Poisson => ArrivalGen::Poisson(Poisson::per_sec(per_client)),
                    ArrivalKind::Bursty { burst, mean_on } => {
                        assert!(burst > 1.0, "burst factor must exceed 1");
                        let params = OnOffParams {
                            mean_on,
                            // off = on * (burst - 1) keeps the long-run
                            // rate at `per_client`.
                            mean_off: SimDuration::from_micros(
                                (mean_on.as_micros() as f64 * (burst - 1.0)) as u64,
                            ),
                            on_rate_per_sec: per_client * burst,
                        };
                        ArrivalGen::Bursty(OnOff::new(params, &mut arrival_rng))
                    }
                };
                Client {
                    gen,
                    arrival_rng,
                    shape_rng: root.substream_idx("req", i as u64),
                    bucket: TokenBucket::new(config.bucket_rate_per_sec, config.bucket_burst),
                    queue: VecDeque::new(),
                    completions: 0,
                }
            })
            .collect();

        let obs = ServeObs::resolve();
        with_registry(|r| r.set_gauge(obs.clients, config.n_clients as i64));

        let n_disks = config.n_disks;
        let n_clients = config.n_clients;
        let drr_quantum = u64::from(config.drr_quantum);
        let mut e = ServeExperiment {
            config,
            volume,
            clients,
            drr: Drr::new(n_clients, drr_quantum),
            arrivals: EventQueue::new(),
            backlog: 0,
            inflight: BTreeMap::new(),
            daemons,
            clock: SimTime::ZERO,
            epoch_index: 0,
            obs,
            totals: ServeSummary {
                per_client_completions: vec![0; n_clients],
                ..ServeSummary::default()
            },
            epoch_stats: EpochStats::default(),
            queue_depth_max: 0,
            total_blocks,
            stride,
            zipf,
            placed: 0,
            rearrange_failures: 0,
            label,
            driver_cfg,
            replaced: vec![false; n_disks],
        };
        e.prime_arrivals();
        for i in 0..e.config.n_disks {
            if let Some(plan) = e.config.fault_plans.get(i).copied().flatten() {
                e.set_injector(i, plan);
            }
        }
        e
    }

    /// Install (or replace) disk `i`'s fault plan. Disk 0 draws from
    /// the same `"faults"` substream as a single disk; disk `i > 0`
    /// gets an independent indexed substream (the abr-array scheme).
    pub fn install_fault_plan(&mut self, i: usize, plan: FaultPlan) {
        if self.config.fault_plans.len() <= i {
            self.config.fault_plans.resize(i + 1, None);
        }
        self.config.fault_plans[i] = Some(plan);
        self.set_injector(i, plan);
    }

    fn set_injector(&mut self, i: usize, plan: FaultPlan) {
        let rng = if i == 0 {
            SimRng::new(self.config.seed).substream("faults")
        } else {
            SimRng::new(self.config.seed).substream_idx("faults", i as u64)
        };
        self.volume
            .disk_mut(i)
            .disk_mut()
            .set_injector(Some(FaultInjector::new(plan, rng)));
    }

    /// Schedule every client's first arrival after the current clock.
    fn prime_arrivals(&mut self) {
        self.arrivals = EventQueue::new();
        let now = self.clock;
        for c in 0..self.clients.len() {
            let at = self.clients[c].next_arrival(now);
            self.arrivals.schedule(at, c);
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The current simulated clock.
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// The volume (inspection in tests and benches).
    pub fn volume(&self) -> &ArrayVolume {
        &self.volume
    }

    /// The volume, mutably.
    pub fn volume_mut(&mut self) -> &mut ArrayVolume {
        &mut self.volume
    }

    /// Snapshot array health (and publish the `array.*` gauges).
    pub fn health(&mut self) -> ArrayHealth {
        self.volume.health()
    }

    /// Blocks currently placed across all reserved areas.
    pub fn placed(&self) -> u32 {
        self.placed
    }

    /// Overnight rearrangement passes that failed and were skipped.
    pub fn rearrange_failures(&self) -> u64 {
        self.rearrange_failures
    }

    /// Map a Zipf rank to the first sector of its scattered block.
    fn rank_to_sector(&self, rank: usize) -> u64 {
        let block = (rank as u64).wrapping_mul(self.stride) % self.total_blocks;
        block * u64::from(SECTORS_PER_BLOCK)
    }

    /// One client arrival: generate the request shape, then run the
    /// admission path (bucket → bounded queue → accept).
    fn on_arrival(&mut self, c: usize, now: SimTime) {
        self.epoch_stats.arrivals += 1;
        with_registry(|r| r.inc(self.obs.arrivals, 1));
        let rank = {
            let client = &mut self.clients[c];
            self.zipf.sample(&mut client.shape_rng)
        };
        let sector = self.rank_to_sector(rank);
        let write = {
            let client = &mut self.clients[c];
            !client.shape_rng.chance(self.config.read_fraction)
        };
        if !self.clients[c].bucket.try_take(now) {
            self.epoch_stats.throttled += 1;
            with_registry(|r| r.inc(self.obs.throttled, 1));
            return;
        }
        if self.backlog >= self.config.accept_queue_cap {
            self.epoch_stats.shed += 1;
            with_registry(|r| r.inc(self.obs.shed, 1));
            return;
        }
        self.clients[c].queue.push_back(Queued {
            arrived: now,
            sector,
            write,
        });
        self.backlog += 1;
        self.queue_depth_max = self.queue_depth_max.max(self.backlog);
        self.epoch_stats.accepted += 1;
        with_registry(|r| {
            r.inc(self.obs.accepted, 1);
            r.set_gauge(self.obs.queue_depth_max, self.queue_depth_max as i64);
        });
        self.drr.activate(c);
        self.pump(now);
    }

    /// One volume completion at `now`.
    fn on_completion(&mut self, now: SimTime) {
        if let Some(done) = self.volume.complete_next(now) {
            if let Some(p) = self.inflight.remove(&done.id) {
                let latency = (done.completed - p.arrived).as_micros();
                with_registry(|r| r.observe_hires(self.obs.request_us, latency));
                if done.error.is_some() {
                    self.epoch_stats.errors += 1;
                    with_registry(|r| r.inc(self.obs.errors, 1));
                } else {
                    self.epoch_stats.completed += 1;
                    self.clients[p.client].completions += 1;
                    with_registry(|r| r.inc(self.obs.completed, 1));
                }
            }
        }
        self.pump(now);
    }

    /// Fill free dispatch slots from the accept queues via DRR.
    fn pump(&mut self, now: SimTime) {
        while self.inflight.len() < self.config.max_inflight && self.backlog > 0 {
            let clients = &self.clients;
            let Some(c) = self.drr.next(|c| {
                clients[c]
                    .queue
                    .front()
                    .map(|_| u64::from(SECTORS_PER_BLOCK))
            }) else {
                break;
            };
            let q = self.clients[c]
                .queue
                .pop_front()
                .expect("DRR picked a client with queued work");
            self.backlog -= 1;
            let waited = (now - q.arrived).as_micros();
            with_registry(|r| r.observe_hires(self.obs.queue_us, waited));
            let req = if q.write {
                IoRequest::write_zeroes(0, q.sector, SECTORS_PER_BLOCK)
            } else {
                IoRequest::read(0, q.sector, SECTORS_PER_BLOCK)
            };
            match self.volume.submit(req, now) {
                Ok(id) => {
                    self.inflight.insert(
                        id,
                        Pending {
                            client: c,
                            arrived: q.arrived,
                        },
                    );
                }
                Err(_) => {
                    // Rejected before reaching any member queue (e.g. a
                    // dead unredundant member): an explicit failure.
                    self.epoch_stats.errors += 1;
                    with_registry(|r| r.inc(self.obs.errors, 1));
                }
            }
        }
        with_registry(|r| {
            r.set_gauge(self.obs.queue_depth, self.backlog as i64);
            r.set_gauge(self.obs.inflight, self.inflight.len() as i64);
        });
    }

    /// Read every member's request table into its daemon.
    fn collect_all(&mut self, now: SimTime) {
        for i in 0..self.daemons.len() {
            self.daemons[i].collect(self.volume.disk_mut(i), now);
        }
    }

    /// Serve one epoch, drain, and record a day-series point. Returns
    /// the epoch's admission/service counters.
    pub fn run_epoch(&mut self) -> EpochStats {
        let _t = abr_obs::time_scope("event_loop");
        self.epoch_stats = EpochStats::default();
        let epoch_start = self.clock;
        let epoch_end = epoch_start + self.config.epoch;
        let adaptive = !self.daemons.is_empty();
        let mut next_monitor = if adaptive {
            epoch_start + self.config.monitor_period
        } else {
            SimTime::MAX
        };
        let maint_period = self.config.maintenance.period;
        let mut next_maint = if self.volume.has_maintenance() {
            epoch_start + maint_period
        } else {
            SimTime::MAX
        };

        loop {
            let next_arrival = self.arrivals.peek_time().unwrap_or(SimTime::MAX);
            let next_completion = self.volume.next_completion().unwrap_or(SimTime::MAX);
            let t = next_arrival
                .min(next_completion)
                .min(next_monitor)
                .min(next_maint);
            if t > epoch_end {
                break;
            }
            self.clock = t;
            if t == next_completion {
                self.on_completion(t);
            } else if t == next_maint {
                self.install_replacements(t);
                self.volume.maintenance_tick(t);
                next_maint = t + maint_period;
            } else if t == next_arrival {
                let (_, c) = self.arrivals.pop().expect("peeked non-empty");
                self.on_arrival(c, t);
                let at = self.clients[c].next_arrival(t);
                self.arrivals.schedule(at, c);
            } else {
                self.collect_all(t);
                next_monitor = t + self.config.monitor_period;
            }
        }

        // Epoch end: stop admitting, drain the backlog and in-flight
        // work. A member that strands requests (dead, unredundant)
        // stops producing completions; whatever it stranded stays in
        // `inflight` — bounded by `max_inflight` — and is reported.
        let mut t = epoch_end;
        while let Some(ct) = self.volume.next_completion() {
            t = ct;
            self.on_completion(ct);
        }
        self.clock = t.max(epoch_end);
        if adaptive {
            self.collect_all(self.clock);
        }
        // Flush each member's batched driver observations so the day
        // point below sees `driver.*` histograms up to date.
        for i in 0..self.config.n_disks {
            let _ = self.volume.disk_mut(i).ioctl(Ioctl::ReadStats, self.clock);
        }
        self.volume.health();

        self.totals.arrivals += self.epoch_stats.arrivals;
        self.totals.accepted += self.epoch_stats.accepted;
        self.totals.shed += self.epoch_stats.shed;
        self.totals.throttled += self.epoch_stats.throttled;
        self.totals.completed += self.epoch_stats.completed;
        self.totals.errors += self.epoch_stats.errors;

        // `run_meter_add` also closes out the day point in the metric
        // series, so each epoch is one day-series entry.
        run_meter_add(self.clock - epoch_start);
        self.epoch_index += 1;
        self.epoch_stats
    }

    /// The overnight protocol between epochs (adaptive members only):
    /// each member places its `place_blocks` hottest blocks, the clock
    /// jumps the movement gap, and clients re-prime. A no-op without a
    /// reserved region.
    pub fn rearrange(&mut self) -> RearrangeReport {
        let mut total = RearrangeReport::default();
        if self.daemons.is_empty() {
            return total;
        }
        let n = self.config.place_blocks;
        for i in 0..self.config.n_disks {
            let hot = self.daemons[i].hot_list(n);
            match self.daemons[i].end_day_with(self.volume.disk_mut(i), &hot, n, self.clock) {
                Ok(report) => {
                    total.blocks_placed += report.blocks_placed;
                    total.blocks_failed += report.blocks_failed;
                    total.io_ops += report.io_ops;
                    total.busy = total.busy.max(report.busy);
                }
                Err(_) => {
                    // The pass failed outright; the on-disk placement
                    // is still consistent. Skip, keep the placement.
                    self.rearrange_failures += 1;
                    self.daemons[i].end_day_keep_placement();
                }
            }
        }
        self.placed = (0..self.config.n_disks)
            .map(|i| self.volume.disk(i).block_table().len() as u32)
            .sum();
        self.clock += total.busy + SimDuration::from_mins(1);
        // The movement polluted member stats; clear them so the next
        // epoch starts clean, then restart the arrival processes from
        // the new clock (clients pause over the movement window).
        for i in 0..self.config.n_disks {
            let _ = self.volume.disk_mut(i).ioctl(Ioctl::ReadStats, self.clock);
        }
        self.prime_arrivals();
        total
    }

    /// Serve `config.epochs` epochs with rearrangement between them
    /// (when a reserved region is configured) and return the totals.
    pub fn run(&mut self) -> ServeSummary {
        for e in 0..self.config.epochs {
            self.run_epoch();
            if e + 1 < self.config.epochs {
                self.rearrange();
            }
        }
        self.summary()
    }

    /// Lifetime totals so far.
    pub fn summary(&self) -> ServeSummary {
        let mut s = self.totals.clone();
        s.stranded = self.inflight.len() as u64;
        s.queue_depth_max = self.queue_depth_max as u64;
        s.placed = self.placed;
        s.per_client_completions = self.clients.iter().map(|c| c.completions).collect();
        s
    }

    /// Install scheduled hot-spare replacements (redundant volumes):
    /// once a member has died, its replacement has arrived, and its
    /// queue has drained, swap in a freshly formatted drive.
    fn install_replacements(&mut self, now: SimTime) {
        if !self.volume.redundancy().is_redundant() {
            return;
        }
        for i in 0..self.config.n_disks {
            if self.replaced[i] {
                continue;
            }
            let Some(plan) = self.config.fault_plans.get(i).copied().flatten() else {
                continue;
            };
            let Some(at) = plan.replacement_at() else {
                continue;
            };
            if now < at || !self.volume.disk(i).is_idle() {
                continue;
            }
            let died = self.volume.disk(i).disk().injector().is_some_and(|inj| {
                inj.is_failed() || inj.plan().disk_death_at.is_some_and(|t| now >= t)
            });
            if !died {
                continue;
            }
            let mut disk = Disk::new(self.config.disk.clone());
            AdaptiveDriver::format(&mut disk, &self.label, &self.driver_cfg);
            let mut fresh =
                AdaptiveDriver::attach(disk, self.driver_cfg).expect("fresh format attaches");
            fresh.set_deliver_read_data(false);
            self.volume.replace_disk(i, fresh);
            self.replaced[i] = true;
        }
    }
}

/// Greatest common divisor (Euclid).
fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_disk::models;
    use abr_sim::SimDuration;

    fn tiny_config() -> ServeConfig {
        let mut c = ServeConfig::new(models::tiny_test_disk());
        c.n_clients = 4;
        c.aggregate_rate_per_sec = 8.0;
        c.bucket_rate_per_sec = 8.0;
        c.bucket_burst = 16;
        c.working_set_blocks = 64;
        c.epoch = SimDuration::from_secs(30);
        c.accept_queue_cap = 32;
        c.max_inflight = 4;
        c
    }

    #[test]
    fn serves_requests_and_accounts_exactly() {
        abr_obs::registry_clear();
        abr_obs::day_series_reset();
        let mut e = ServeExperiment::new(tiny_config());
        let s = e.run();
        assert!(s.arrivals > 100, "open-loop clients offered load");
        assert_eq!(
            s.arrivals,
            s.accepted + s.shed + s.throttled,
            "every arrival is accepted, shed, or throttled"
        );
        assert_eq!(
            s.accepted,
            s.completed + s.errors + s.stranded,
            "every accepted request completes, errors, or strands (backlog drained)"
        );
        assert_eq!(s.errors, 0);
        assert_eq!(s.stranded, 0);
        assert!(s.queue_depth_max <= 32);
    }

    #[test]
    fn overload_sheds_with_bounded_queue() {
        abr_obs::registry_clear();
        abr_obs::day_series_reset();
        let mut c = tiny_config();
        // Far beyond the tiny disk's service rate, with generous
        // buckets so the bound — not the buckets — does the shedding.
        c.aggregate_rate_per_sec = 2000.0;
        c.bucket_rate_per_sec = 600.0;
        c.bucket_burst = 64;
        c.accept_queue_cap = 24;
        c.epoch = SimDuration::from_secs(20);
        let mut e = ServeExperiment::new(c);
        let s = e.run();
        assert!(s.shed > 0, "overload must shed");
        assert!(s.queue_depth_max <= 24, "accept queue exceeded its bound");
        assert!(s.completed > 0, "the server still made progress");
        // The registry carries the same story.
        let snap = abr_obs::registry_snapshot();
        assert_eq!(snap["counters"]["serve.shed_total"].as_u64(), Some(s.shed));
        assert!(
            snap["hires"]["serve.request_us"]["count"]
                .as_u64()
                .unwrap_or(0)
                > 0
        );
    }

    #[test]
    fn token_bucket_throttles_hot_clients() {
        abr_obs::registry_clear();
        abr_obs::day_series_reset();
        let mut c = tiny_config();
        // Offered rate far above the per-client bucket refill.
        c.aggregate_rate_per_sec = 400.0;
        c.bucket_rate_per_sec = 2.0;
        c.bucket_burst = 4;
        let mut e = ServeExperiment::new(c);
        let s = e.run();
        assert!(s.throttled > 0, "dry buckets must throttle");
        // Bucket admission is bounded by refill + burst over the epoch.
        let ceiling = (30.0 * 2.0 + 4.0) * 4.0;
        assert!(
            (s.accepted + s.shed) as f64 <= ceiling + 1.0,
            "bucket ceiling exceeded: {} > {ceiling}",
            s.accepted + s.shed
        );
    }

    #[test]
    fn drr_keeps_backlogged_clients_fair() {
        abr_obs::registry_clear();
        abr_obs::day_series_reset();
        let mut c = tiny_config();
        c.aggregate_rate_per_sec = 800.0;
        c.bucket_rate_per_sec = 250.0;
        c.bucket_burst = 32;
        c.accept_queue_cap = 64;
        c.epoch = SimDuration::from_secs(20);
        let mut e = ServeExperiment::new(c);
        let s = e.run();
        assert!(s.completed > 50);
        let ratio = s.fairness_ratio();
        assert!(ratio <= 2.0, "per-client completion ratio {ratio} > 2");
    }

    #[test]
    fn identical_configs_reproduce_bit_identical_summaries() {
        abr_obs::registry_clear();
        abr_obs::day_series_reset();
        let run = || {
            abr_obs::registry_clear();
            abr_obs::day_series_reset();
            let mut e = ServeExperiment::new(tiny_config());
            let s = e.run();
            // Wall-clock `wall.*` counters are measurement noise, not
            // results; drop their lines before the byte-compare.
            let snap: String = abr_obs::registry_snapshot()
                .pretty()
                .lines()
                .filter(|l| !l.contains("\"wall."))
                .collect::<Vec<_>>()
                .join("\n");
            (
                s.arrivals,
                s.accepted,
                s.shed,
                s.throttled,
                s.completed,
                s.per_client_completions.clone(),
                snap,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn adaptive_members_place_blocks_between_epochs() {
        abr_obs::registry_clear();
        abr_obs::day_series_reset();
        let mut c = tiny_config();
        c.reserved_cylinders = 10;
        c.place_blocks = 32;
        c.epochs = 2;
        c.monitor_period = SimDuration::from_secs(10);
        let mut e = ServeExperiment::new(c);
        let s = e.run();
        assert!(s.placed > 0, "no blocks reached the reserved region");
        assert_eq!(s.errors, 0);
        assert_eq!(abr_obs::day_series_len(), 2, "one day point per epoch");
    }
}
