//! # abr-serve — a concurrent request front end over adaptive volumes
//!
//! The paper measures one spindle under a replayed trace. This crate
//! turns the reproduction into something shaped like a *service*: N
//! simulated clients generate open-loop block I/O (seeded Poisson or
//! bursty ON/OFF arrival processes), and a front end decides — per
//! request, in simulated time — whether to accept, throttle, or shed
//! the work before it reaches an [`abr_array::ArrayVolume`].
//!
//! The front end is three mechanisms deep, applied in order:
//!
//! 1. **Token-bucket backpressure, per client** ([`TokenBucket`]): a
//!    client whose bucket is dry has its request *throttled* — refused
//!    at the door so a misbehaving client cannot flood the shared
//!    accept queue. Refill arithmetic is exact integer micro-tokens,
//!    so admission decisions are bit-reproducible.
//! 2. **Bounded admission** : requests that pass their bucket enter a
//!    shared accept queue with a hard capacity. When the volume cannot
//!    keep up — overload, or a degraded array serving reads from a
//!    survivor — the queue hits its bound and further requests are
//!    *shed* with explicit accounting, instead of growing an unbounded
//!    backlog. Memory is O(capacity) no matter the arrival rate.
//! 3. **Deficit round-robin dispatch** ([`Drr`]): accepted requests
//!    drain to the volume through a DRR scan over the per-client
//!    queues, so one hot client cannot starve the rest of the
//!    dispatch slots. Service shares stay proportional even when every
//!    queue is permanently backlogged.
//!
//! Everything is deterministic: single-threaded, seeded substreams per
//! client, no wall-clock reads — the same configuration produces the
//! same `serve.*` metrics byte for byte at any `--jobs` value.
//!
//! Observability: the front end publishes `serve.*` counters
//! (`arrivals`, `accepted`, `shed_total`, `throttled_total`,
//! `completed`, `errors`), queue-depth gauges, and two high-resolution
//! histograms — `serve.request_us` (admission to completion) and
//! `serve.queue_us` (admission to dispatch) — into the
//! [`abr_obs`] registry, and records a day-series point per epoch, so
//! `abrctl report` renders serving runs like any other.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod config;
pub mod drr;
pub mod server;

pub use admission::TokenBucket;
pub use config::{ArrivalKind, ServeConfig};
pub use drr::Drr;
pub use server::{EpochStats, ServeExperiment, ServeSummary};
