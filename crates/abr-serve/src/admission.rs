//! Per-client token-bucket backpressure.
//!
//! A bucket holds up to `burst` whole tokens and refills continuously
//! at `rate_per_sec`. Each admitted request costs one token; a client
//! whose bucket is dry is throttled at the door. All arithmetic is
//! exact integer micro-tokens with a carried sub-micro-token remainder,
//! so a refill split across many small time steps admits exactly the
//! same requests as one big step — determinism does not depend on how
//! often the bucket is polled.

use abr_sim::SimTime;

/// Micro-tokens per token.
const MICRO: u64 = 1_000_000;

/// A continuously refilling token bucket over simulated time.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Refill rate in micro-tokens per simulated second.
    rate_micro_per_sec: u64,
    /// Capacity in micro-tokens.
    cap_micro: u64,
    /// Current level in micro-tokens.
    tokens_micro: u64,
    /// Sub-micro-token refill remainder (units of 1e-6 micro-tokens),
    /// carried so truncation never loses credit.
    carry: u64,
    /// Last refill instant.
    last: SimTime,
}

impl TokenBucket {
    /// A bucket refilling `rate_per_sec` tokens per second with a
    /// capacity of `burst` tokens, starting full.
    ///
    /// # Panics
    /// Panics if the rate is not positive or the burst is zero.
    pub fn new(rate_per_sec: f64, burst: u32) -> Self {
        assert!(rate_per_sec > 0.0, "token rate must be positive");
        assert!(burst > 0, "burst must be at least one token");
        // The f64 -> integer conversion happens once here; every
        // subsequent refill is pure integer arithmetic.
        let rate_micro_per_sec = (rate_per_sec * MICRO as f64).round() as u64;
        let cap_micro = u64::from(burst) * MICRO;
        TokenBucket {
            rate_micro_per_sec: rate_micro_per_sec.max(1),
            cap_micro,
            tokens_micro: cap_micro,
            carry: 0,
            last: SimTime::ZERO,
        }
    }

    /// Credit the refill accrued since the last poll.
    fn refill(&mut self, now: SimTime) {
        if now <= self.last {
            return;
        }
        let dt_us = (now - self.last).as_micros();
        self.last = now;
        // dt_us * rate is micro-tokens scaled by 1e6 (one factor of 1e6
        // from micro-seconds); divide back out, carrying the remainder.
        let scaled =
            u128::from(dt_us) * u128::from(self.rate_micro_per_sec) + u128::from(self.carry);
        let add = (scaled / u128::from(MICRO)) as u64;
        self.tokens_micro = self.tokens_micro.saturating_add(add);
        if self.tokens_micro >= self.cap_micro {
            // A full bucket accrues nothing, remainder included.
            self.tokens_micro = self.cap_micro;
            self.carry = 0;
        } else {
            self.carry = (scaled % u128::from(MICRO)) as u64;
        }
    }

    /// Try to take one token at `now`. Returns `false` (and takes
    /// nothing) when the bucket is dry — the caller throttles.
    pub fn try_take(&mut self, now: SimTime) -> bool {
        self.refill(now);
        if self.tokens_micro >= MICRO {
            self.tokens_micro -= MICRO;
            true
        } else {
            false
        }
    }

    /// Current level in whole tokens (inspection).
    pub fn tokens(&self) -> u64 {
        self.tokens_micro / MICRO
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_sim::SimDuration;

    #[test]
    fn starts_full_and_drains() {
        let mut b = TokenBucket::new(10.0, 4);
        let t = SimTime::ZERO;
        assert_eq!(b.tokens(), 4);
        for _ in 0..4 {
            assert!(b.try_take(t));
        }
        assert!(!b.try_take(t), "dry bucket must refuse");
    }

    #[test]
    fn refills_at_rate() {
        let mut b = TokenBucket::new(10.0, 100);
        let t0 = SimTime::ZERO;
        for _ in 0..100 {
            assert!(b.try_take(t0));
        }
        // 10 tokens/s: after 500 ms exactly 5 tokens are back.
        let t1 = t0 + SimDuration::from_millis(500);
        for _ in 0..5 {
            assert!(b.try_take(t1));
        }
        assert!(!b.try_take(t1));
    }

    #[test]
    fn caps_at_burst() {
        let mut b = TokenBucket::new(1000.0, 3);
        assert!(b.try_take(SimTime::ZERO));
        // An hour of refill still caps at the burst.
        let later = SimTime::ZERO + SimDuration::from_hours(1);
        b.refill(later);
        assert_eq!(b.tokens(), 3);
    }

    #[test]
    fn polling_granularity_does_not_change_admission() {
        // Refilling in 1 us steps must credit exactly what one big step
        // does: the carry keeps fractional refill exact.
        let mut fine = TokenBucket::new(3.7, 50);
        let mut coarse = TokenBucket::new(3.7, 50);
        for _ in 0..50 {
            assert!(fine.try_take(SimTime::ZERO));
            assert!(coarse.try_take(SimTime::ZERO));
        }
        let end = SimTime::from_micros(1_337_421);
        for us in 1..=1_337_421u64 {
            fine.refill(SimTime::from_micros(us));
        }
        coarse.refill(end);
        assert_eq!(fine.tokens_micro, coarse.tokens_micro);
        assert_eq!(fine.carry, coarse.carry);
    }

    #[test]
    fn fractional_rates_accrue() {
        // 0.5 tokens/s: two seconds buys exactly one token.
        let mut b = TokenBucket::new(0.5, 1);
        assert!(b.try_take(SimTime::ZERO));
        assert!(!b.try_take(SimTime::ZERO + SimDuration::from_millis(1999)));
        assert!(b.try_take(SimTime::ZERO + SimDuration::from_secs(2)));
    }
}
