//! Deficit round-robin over per-client queues.
//!
//! Classic DRR (Shreedhar & Varghese): active clients sit in a ring;
//! each visit credits the client one quantum of deficit, and the client
//! dispatches head-of-line requests while its deficit covers their
//! cost. A client that drains its queue leaves the ring and forfeits
//! its deficit, so credit cannot be hoarded across idle periods. With
//! per-request costs bounded by a few quanta this gives each backlogged
//! client an equal long-run share of dispatch slots regardless of how
//! unequal the *offered* loads are — the fairness property the serve
//! harness asserts.
//!
//! The ring is a `VecDeque` of client indices; activation order (and
//! therefore scan order) is a pure function of the event sequence, so
//! dispatch decisions are deterministic.

use std::collections::VecDeque;

/// A deficit round-robin scheduler over `n` client queues.
///
/// The scheduler does not own the queues; callers report occupancy via
/// [`Drr::activate`] and answer cost queries in [`Drr::next`].
#[derive(Debug, Clone)]
pub struct Drr {
    quantum: u64,
    deficit: Vec<u64>,
    in_ring: Vec<bool>,
    ring: VecDeque<usize>,
}

impl Drr {
    /// A scheduler over `n` clients crediting `quantum` cost units per
    /// ring visit.
    ///
    /// # Panics
    /// Panics if the quantum is zero (the ring scan would never
    /// accumulate credit).
    pub fn new(n: usize, quantum: u64) -> Self {
        assert!(quantum > 0, "DRR quantum must be positive");
        Drr {
            quantum,
            deficit: vec![0; n],
            in_ring: vec![false; n],
            ring: VecDeque::new(),
        }
    }

    /// Note that client `c` has queued work. Idempotent; newly active
    /// clients join the tail of the ring with zero deficit.
    pub fn activate(&mut self, c: usize) {
        if !self.in_ring[c] {
            self.in_ring[c] = true;
            self.ring.push_back(c);
        }
    }

    /// Pick the client whose head-of-line request dispatches next.
    ///
    /// `head_cost(c)` returns the cost of client `c`'s head request, or
    /// `None` when its queue is empty (the client then leaves the ring
    /// and its deficit resets). Returns `None` once the ring is empty.
    /// The chosen client's deficit is charged; the caller must actually
    /// dispatch the head request it reported.
    pub fn next(&mut self, mut head_cost: impl FnMut(usize) -> Option<u64>) -> Option<usize> {
        while let Some(&c) = self.ring.front() {
            match head_cost(c) {
                None => {
                    // Drained: leave the ring, forfeit the deficit.
                    self.ring.pop_front();
                    self.in_ring[c] = false;
                    self.deficit[c] = 0;
                }
                Some(cost) => {
                    if self.deficit[c] >= cost {
                        self.deficit[c] -= cost;
                        return Some(c);
                    }
                    // Not enough credit: grant a quantum and move on.
                    // Each full lap adds one quantum, so any bounded
                    // cost is eventually covered.
                    self.deficit[c] += self.quantum;
                    self.ring.rotate_left(1);
                }
            }
        }
        None
    }

    /// Number of clients currently holding queued work.
    pub fn active(&self) -> usize {
        self.ring.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// Drive the scheduler over explicit queues until everything
    /// drains; returns dispatch order.
    fn drain(drr: &mut Drr, queues: &mut [VecDeque<u64>]) -> Vec<usize> {
        let mut order = Vec::new();
        loop {
            let picked = drr.next(|c| queues[c].front().copied());
            match picked {
                Some(c) => {
                    queues[c].pop_front();
                    order.push(c);
                }
                None => return order,
            }
        }
    }

    #[test]
    fn equal_queues_interleave() {
        let mut drr = Drr::new(2, 1);
        let mut queues = vec![VecDeque::from(vec![1, 1, 1]), VecDeque::from(vec![1, 1, 1])];
        drr.activate(0);
        drr.activate(1);
        let order = drain(&mut drr, &mut queues);
        assert_eq!(order, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn hot_client_cannot_starve_the_rest() {
        // Client 0 offers 100 requests, clients 1..4 offer 10 each. In
        // the first 40 dispatches every backlogged client gets an equal
        // share — the hot client does not run ahead.
        let mut drr = Drr::new(4, 1);
        let mut queues = vec![
            VecDeque::from(vec![1; 100]),
            VecDeque::from(vec![1; 10]),
            VecDeque::from(vec![1; 10]),
            VecDeque::from(vec![1; 10]),
        ];
        for c in 0..4 {
            drr.activate(c);
        }
        let order = drain(&mut drr, &mut queues);
        let first40 = &order[..40];
        for c in 0..4 {
            let share = first40.iter().filter(|&&x| x == c).count();
            assert_eq!(share, 10, "client {c} got {share}/40 early dispatches");
        }
        assert_eq!(order.len(), 130);
    }

    #[test]
    fn large_costs_accumulate_credit_across_laps() {
        // Cost 5 with quantum 2: three laps of credit are needed per
        // dispatch, but progress is still made and stays fair.
        let mut drr = Drr::new(2, 2);
        let mut queues = vec![VecDeque::from(vec![5, 5]), VecDeque::from(vec![5, 5])];
        drr.activate(0);
        drr.activate(1);
        let order = drain(&mut drr, &mut queues);
        assert_eq!(order.len(), 4);
        assert_eq!(order.iter().filter(|&&c| c == 0).count(), 2);
    }

    #[test]
    fn drained_client_forfeits_deficit() {
        let mut drr = Drr::new(1, 10);
        let mut queues = vec![VecDeque::from(vec![1])];
        drr.activate(0);
        drain(&mut drr, &mut queues);
        assert_eq!(drr.active(), 0);
        assert_eq!(drr.deficit[0], 0, "idle client must not hoard credit");
    }

    #[test]
    fn reactivation_rejoins_at_tail() {
        let mut drr = Drr::new(3, 1);
        drr.activate(1);
        drr.activate(1); // idempotent
        drr.activate(0);
        assert_eq!(drr.ring, VecDeque::from(vec![1, 0]));
    }
}
