//! The block table (§4.1.2).
//!
//! "When a block is copied into the reserved space, its old and new
//! physical block addresses are entered into the table. If an entry for
//! the requested block is found in the block table, its new physical
//! address is used to retrieve (or update) the data. A copy of the block
//! table is also stored on the disk (at the beginning of the reserved
//! area) ... the table also contains a dirty bit for each block entry ...
//! all blocks are marked as dirty when \[the\] memory-resident copy of the
//! table is recreated after a failure."
//!
//! The in-memory table is a pair of dense index arrays keyed by the
//! block's *original physical* starting sector (forward) and by the
//! reserved-area slot (reverse); each forward cell packs the slot and the
//! dirty bit into one word. Sector addresses and slot indices on real
//! disks are small, so both directions are O(1) array reads on the
//! request hot path — out-of-range keys (only reachable through a
//! corrupt-but-checksum-valid on-disk table) spill to ordered maps. The
//! on-disk form is a compact binary record with a checksum, written into
//! the table region at the head of the reserved area.

use crate::layout::ReservedLayout;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One block-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Entry {
    /// Reserved-area slot index holding the copy.
    pub slot: u32,
    /// Whether the copy has been written since it was placed (and so must
    /// be copied back before the slot is reused).
    pub dirty: bool,
}

/// Errors from decoding the on-disk table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// Magic mismatch — no table present.
    BadMagic,
    /// Checksum mismatch — torn or corrupt table write.
    BadChecksum,
    /// More entries than the table region can hold.
    TooLarge,
    /// Structurally valid but internally inconsistent (duplicate block or
    /// slot entries).
    Inconsistent,
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::BadMagic => write!(f, "no block table on disk (bad magic)"),
            TableError::BadChecksum => write!(f, "corrupt block table (bad checksum)"),
            TableError::TooLarge => write!(f, "block table too large for table region"),
            TableError::Inconsistent => write!(f, "inconsistent block table entries"),
        }
    }
}

impl std::error::Error for TableError {}

const TABLE_MAGIC: u64 = 0x4142_5254_4142_4c45; // "ABRTABLE"

/// Forward cells for original sectors below this index live in the flat
/// array; larger keys (no real disk in the models is this big) spill.
const FWD_DENSE_SECTORS: u64 = 1 << 20;
/// Reverse cells for slots below this index live in the flat array.
const REV_DENSE_SLOTS: u32 = 1 << 20;
/// Sentinel marking an empty cell in either dense array. A packed
/// forward cell only uses the low 33 bits, so it can never collide; an
/// original sector of `u64::MAX` is rejected at decode time.
const ABSENT: u64 = u64::MAX;

/// The block table: original physical block address → reserved slot.
#[derive(Debug, Clone, Default)]
pub struct BlockTable {
    /// orig sector → packed `slot | dirty << 32`, [`ABSENT`] when empty.
    /// Grown lazily to the largest mapped sector.
    fwd: Vec<u64>,
    fwd_spill: BTreeMap<u64, u64>,
    /// slot → orig sector, [`ABSENT`] when empty.
    rev: Vec<u64>,
    rev_spill: BTreeMap<u32, u64>,
    len: usize,
}

fn pack(e: Entry) -> u64 {
    u64::from(e.slot) | (u64::from(e.dirty) << 32)
}

fn unpack(cell: u64) -> Entry {
    Entry {
        slot: (cell & 0xFFFF_FFFF) as u32,
        dirty: cell & (1 << 32) != 0,
    }
}

impl BlockTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rearranged blocks.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no blocks are rearranged.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn fwd_cell(&self, orig_sector: u64) -> Option<u64> {
        if orig_sector < FWD_DENSE_SECTORS {
            match self.fwd.get(orig_sector as usize) {
                Some(&c) if c != ABSENT => Some(c),
                _ => None,
            }
        } else {
            self.fwd_spill.get(&orig_sector).copied()
        }
    }

    fn fwd_put(&mut self, orig_sector: u64, cell: u64) -> Option<u64> {
        if orig_sector < FWD_DENSE_SECTORS {
            let idx = orig_sector as usize;
            if idx >= self.fwd.len() {
                self.fwd.resize(idx + 1, ABSENT);
            }
            let old = self.fwd[idx];
            self.fwd[idx] = cell;
            (old != ABSENT).then_some(old)
        } else {
            self.fwd_spill.insert(orig_sector, cell)
        }
    }

    fn fwd_take(&mut self, orig_sector: u64) -> Option<u64> {
        if orig_sector < FWD_DENSE_SECTORS {
            match self.fwd.get_mut(orig_sector as usize) {
                Some(c) if *c != ABSENT => Some(std::mem::replace(c, ABSENT)),
                _ => None,
            }
        } else {
            self.fwd_spill.remove(&orig_sector)
        }
    }

    fn rev_put(&mut self, slot: u32, orig_sector: u64) {
        if slot < REV_DENSE_SLOTS {
            let idx = slot as usize;
            if idx >= self.rev.len() {
                self.rev.resize(idx + 1, ABSENT);
            }
            self.rev[idx] = orig_sector;
        } else {
            self.rev_spill.insert(slot, orig_sector);
        }
    }

    fn rev_clear(&mut self, slot: u32) {
        if slot < REV_DENSE_SLOTS {
            if let Some(c) = self.rev.get_mut(slot as usize) {
                *c = ABSENT;
            }
        } else {
            self.rev_spill.remove(&slot);
        }
    }

    /// Look up a block by its original physical starting sector.
    pub fn lookup(&self, orig_sector: u64) -> Option<Entry> {
        self.fwd_cell(orig_sector).map(unpack)
    }

    /// The original block occupying `slot`, if any.
    pub fn occupant(&self, slot: u32) -> Option<u64> {
        if slot < REV_DENSE_SLOTS {
            match self.rev.get(slot as usize) {
                Some(&c) if c != ABSENT => Some(c),
                _ => None,
            }
        } else {
            self.rev_spill.get(&slot).copied()
        }
    }

    /// Insert a mapping (clean). Replaces any previous mapping for the
    /// same block.
    ///
    /// # Panics
    /// Panics if the slot is already occupied by a *different* block —
    /// the arranger must clean before re-copying.
    pub fn insert(&mut self, orig_sector: u64, slot: u32) {
        if let Some(occ) = self.occupant(slot) {
            assert_eq!(occ, orig_sector, "slot {slot} already occupied");
        }
        match self.fwd_put(orig_sector, pack(Entry { slot, dirty: false })) {
            Some(old) => self.rev_clear(unpack(old).slot),
            None => self.len += 1,
        }
        self.rev_put(slot, orig_sector);
    }

    /// Remove the mapping for a block, returning its entry.
    pub fn remove(&mut self, orig_sector: u64) -> Option<Entry> {
        let e = unpack(self.fwd_take(orig_sector)?);
        self.rev_clear(e.slot);
        self.len -= 1;
        Some(e)
    }

    /// Set the dirty bit for a block (called when a write is redirected
    /// into the reserved area).
    pub fn mark_dirty(&mut self, orig_sector: u64) {
        if orig_sector < FWD_DENSE_SECTORS {
            if let Some(c) = self.fwd.get_mut(orig_sector as usize) {
                if *c != ABSENT {
                    *c |= 1 << 32;
                }
            }
        } else if let Some(c) = self.fwd_spill.get_mut(&orig_sector) {
            *c |= 1 << 32;
        }
    }

    /// Mark every entry dirty — the conservative recovery rule applied
    /// when the in-memory table is recreated after a failure (§4.1.2).
    pub fn mark_all_dirty(&mut self) {
        for c in &mut self.fwd {
            if *c != ABSENT {
                *c |= 1 << 32;
            }
        }
        for c in self.fwd_spill.values_mut() {
            *c |= 1 << 32;
        }
    }

    /// Iterate `(orig_sector, entry)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Entry)> + '_ {
        self.fwd
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c != ABSENT)
            .map(|(s, &c)| (s as u64, unpack(c)))
            .chain(self.fwd_spill.iter().map(|(&s, &c)| (s, unpack(c))))
    }

    /// All entries sorted by slot (deterministic order for cleaning).
    /// The reverse array is already slot-ordered, so this is a single
    /// in-order scan — no sort.
    pub fn entries_by_slot(&self) -> Vec<(u64, Entry)> {
        let mut v = Vec::with_capacity(self.len);
        let slots = self
            .rev
            .iter()
            .enumerate()
            .filter(|&(_, &orig)| orig != ABSENT)
            .map(|(slot, &orig)| (slot as u32, orig))
            .chain(self.rev_spill.iter().map(|(&s, &o)| (s, o)));
        for (slot, orig) in slots {
            let dirty = self.lookup(orig).map(|e| e.dirty).unwrap_or(false);
            v.push((orig, Entry { slot, dirty }));
        }
        v
    }

    /// Check that the forward (block → slot) and reverse (slot → block)
    /// maps are mutually inverse — the bijection the whole redirect
    /// path depends on. Sanitize builds only.
    #[cfg(feature = "sanitize")]
    pub fn check_bijection(&self) -> Result<(), String> {
        let reverse = self
            .rev
            .iter()
            .enumerate()
            .filter(|&(_, &orig)| orig != ABSENT)
            .map(|(slot, &orig)| (slot as u64, orig))
            .chain(self.rev_spill.iter().map(|(&s, &o)| (u64::from(s), o)));
        abr_lint::sanitize::check_bijection(
            self.iter().map(|(b, e)| (b, u64::from(e.slot))),
            reverse,
        )
    }

    /// Panic if the table is not a bijection. Sanitize builds only.
    #[cfg(feature = "sanitize")]
    #[track_caller]
    pub fn assert_bijection(&self) {
        if let Err(e) = self.check_bijection() {
            panic!("block table bijection violated: {e}");
        }
    }

    /// Deliberately desynchronize the reverse map — a test hook proving
    /// the sanitizer trips. Sanitize builds only.
    #[cfg(feature = "sanitize")]
    pub fn corrupt_slot_for_sanitizer_test(&mut self, slot: u32, orig_sector: u64) {
        self.rev_put(slot, orig_sector);
    }

    /// The raw on-disk record: magic, count, entries, checksum — no
    /// padding.
    fn encode_record(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16 + self.len * 17 + 8);
        buf.extend_from_slice(&TABLE_MAGIC.to_le_bytes());
        buf.extend_from_slice(&(self.len as u64).to_le_bytes());
        for (orig, e) in self.entries_by_slot() {
            buf.extend_from_slice(&orig.to_le_bytes());
            buf.extend_from_slice(&e.slot.to_le_bytes());
            buf.extend_from_slice(&[0u8; 4]); // reserved/padding
            buf.push(u8::from(e.dirty));
        }
        let sum = fletcher64(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Serialize to the on-disk form. The result is padded to fill
    /// `layout.table_sectors` sectors exactly.
    ///
    /// Returns [`TableError::TooLarge`] if the entries do not fit.
    pub fn encode(&self, layout: &ReservedLayout) -> Result<Vec<u8>, TableError> {
        let capacity = layout.table_sectors as usize * abr_disk::SECTOR_SIZE;
        let need = 16 + self.len * 17 + 8;
        if need > capacity {
            return Err(TableError::TooLarge);
        }
        let mut buf = self.encode_record();
        buf.resize(capacity, 0);
        Ok(buf)
    }

    /// Serialize for the table region with **two redundant copies** when
    /// the region is big enough: the record is duplicated into the two
    /// sector-aligned halves of the region, so a torn write or a media
    /// error that destroys one copy still leaves the other decodable (see
    /// [`BlockTable::decode_region`]). Falls back to the single-copy
    /// [`BlockTable::encode`] layout when the record does not fit in half
    /// the region, so capacity semantics are unchanged.
    ///
    /// The output is always exactly `layout.table_sectors` sectors — the
    /// caller issues one region-sized write either way, keeping service
    /// timing identical to the single-copy format.
    pub fn encode_region(&self, layout: &ReservedLayout) -> Result<Vec<u8>, TableError> {
        let capacity = layout.table_sectors as usize * abr_disk::SECTOR_SIZE;
        let half = (layout.table_sectors as usize / 2) * abr_disk::SECTOR_SIZE;
        let record = self.encode_record();
        if record.len() > capacity {
            return Err(TableError::TooLarge);
        }
        if layout.table_sectors < 2 || record.len() > half {
            let mut buf = record;
            buf.resize(capacity, 0);
            return Ok(buf);
        }
        let mut buf = record;
        buf.resize(half, 0);
        let copy_a = buf.clone();
        buf.extend_from_slice(&copy_a);
        buf.resize(capacity, 0);
        Ok(buf)
    }

    /// Decode a full table region, trying the redundant copies written by
    /// [`BlockTable::encode_region`]: copy A (first half), then copy B
    /// (second half), then the whole region as a legacy single-copy
    /// record. Returns the first copy that passes magic + checksum; if
    /// none does, returns the legacy decode's error.
    pub fn decode_region(bytes: &[u8]) -> Result<BlockTable, TableError> {
        let half = (bytes.len() / abr_disk::SECTOR_SIZE / 2) * abr_disk::SECTOR_SIZE;
        if half >= 24 {
            if let Ok(t) = BlockTable::decode(&bytes[..half]) {
                return Ok(t);
            }
            if let Ok(t) = BlockTable::decode(&bytes[half..]) {
                return Ok(t);
            }
        }
        BlockTable::decode(bytes)
    }

    /// Decode the on-disk form. Validates magic and checksum. Trailing
    /// bytes beyond the checksum are ignored (the region is zero-padded).
    pub fn decode(bytes: &[u8]) -> Result<BlockTable, TableError> {
        if bytes.len() < 24 {
            return Err(TableError::BadMagic);
        }
        let magic = u64::from_le_bytes(bytes[0..8].try_into().expect("8"));
        if magic != TABLE_MAGIC {
            return Err(TableError::BadMagic);
        }
        // The entry count is untrusted on-disk data: reject regions whose
        // claimed body would overflow or overrun the buffer *before* any
        // slicing, so corruption surfaces as `TableError`, never a panic.
        let n = u64::from_le_bytes(bytes[8..16].try_into().expect("8"));
        let n = usize::try_from(n).map_err(|_| TableError::TooLarge)?;
        let body_end = n
            .checked_mul(17)
            .and_then(|b| b.checked_add(16))
            .ok_or(TableError::TooLarge)?;
        if body_end.checked_add(8).ok_or(TableError::TooLarge)? > bytes.len() {
            return Err(TableError::TooLarge);
        }
        let stored = u64::from_le_bytes(bytes[body_end..body_end + 8].try_into().expect("8"));
        if fletcher64(&bytes[..body_end]) != stored {
            return Err(TableError::BadChecksum);
        }
        let mut t = BlockTable::new();
        for i in 0..n {
            let off = 16 + i * 17;
            let orig = u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8"));
            let slot = u32::from_le_bytes(bytes[off + 8..off + 12].try_into().expect("4"));
            let dirty = bytes[off + 16] != 0;
            // A checksum-valid table should never be inconsistent, but a
            // buggy writer must surface as an error, not a panic. An
            // original sector of u64::MAX is no real disk address and
            // collides with the dense arrays' empty sentinel.
            if orig == ABSENT || t.lookup(orig).is_some() || t.occupant(slot).is_some() {
                return Err(TableError::Inconsistent);
            }
            t.insert(orig, slot);
            if dirty {
                t.mark_dirty(orig);
            }
        }
        Ok(t)
    }
}

use abr_disk::image::fletcher64;

#[cfg(test)]
mod tests {
    use super::*;
    use abr_disk::{models, DiskLabel};

    fn layout() -> ReservedLayout {
        let g = models::toshiba_mk156f().geometry;
        let label = DiskLabel::rearranged(g, 48);
        ReservedLayout::for_label(&label, 8192, 1020).unwrap()
    }

    #[test]
    fn insert_lookup_remove() {
        let mut t = BlockTable::new();
        t.insert(1000, 5);
        assert_eq!(
            t.lookup(1000),
            Some(Entry {
                slot: 5,
                dirty: false
            })
        );
        assert_eq!(t.occupant(5), Some(1000));
        assert_eq!(t.len(), 1);
        let e = t.remove(1000).unwrap();
        assert_eq!(e.slot, 5);
        assert!(t.is_empty());
        assert_eq!(t.occupant(5), None);
    }

    #[test]
    fn dirty_bit_lifecycle() {
        let mut t = BlockTable::new();
        t.insert(64, 0);
        assert!(!t.lookup(64).unwrap().dirty);
        t.mark_dirty(64);
        assert!(t.lookup(64).unwrap().dirty);
        // Marking an absent block is a no-op.
        t.mark_dirty(9999);
    }

    #[test]
    fn mark_all_dirty_for_recovery() {
        let mut t = BlockTable::new();
        t.insert(16, 0);
        t.insert(32, 1);
        t.mark_all_dirty();
        assert!(t.iter().all(|(_, e)| e.dirty));
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn slot_conflict_panics() {
        let mut t = BlockTable::new();
        t.insert(16, 3);
        t.insert(32, 3);
    }

    #[test]
    fn reinsert_same_block_moves_slot() {
        let mut t = BlockTable::new();
        t.insert(16, 3);
        t.insert(16, 7);
        assert_eq!(t.lookup(16).unwrap().slot, 7);
        assert_eq!(t.occupant(3), None);
        assert_eq!(t.occupant(7), Some(16));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let l = layout();
        let mut t = BlockTable::new();
        for i in 0..500u64 {
            t.insert(i * 16, i as u32);
            if i % 3 == 0 {
                t.mark_dirty(i * 16);
            }
        }
        let bytes = t.encode(&l).unwrap();
        assert_eq!(bytes.len(), l.table_sectors as usize * 512);
        let back = BlockTable::decode(&bytes).unwrap();
        assert_eq!(back.len(), 500);
        for i in 0..500u64 {
            let e = back.lookup(i * 16).unwrap();
            assert_eq!(e.slot, i as u32);
            assert_eq!(e.dirty, i % 3 == 0);
        }
    }

    #[test]
    fn decode_empty_region_is_bad_magic() {
        let zeros = vec![0u8; 4096];
        assert_eq!(
            BlockTable::decode(&zeros).unwrap_err(),
            TableError::BadMagic
        );
    }

    #[test]
    fn decode_detects_corruption() {
        let l = layout();
        let mut t = BlockTable::new();
        t.insert(16, 0);
        let mut bytes = t.encode(&l).unwrap();
        bytes[20] ^= 1;
        assert_eq!(
            BlockTable::decode(&bytes).unwrap_err(),
            TableError::BadChecksum
        );
    }

    #[test]
    fn encode_rejects_overflow() {
        let g = models::toshiba_mk156f().geometry;
        let label = DiskLabel::rearranged(g, 48);
        // Deliberately tiny table region (max_entries = 1 -> 1 block).
        let l = ReservedLayout::for_label(&label, 8192, 1).unwrap();
        let mut t = BlockTable::new();
        for i in 0..1000u64 {
            t.insert(i * 16, i as u32);
        }
        assert_eq!(t.encode(&l).unwrap_err(), TableError::TooLarge);
    }

    fn tables_equal(a: &BlockTable, b: &BlockTable) -> bool {
        a.entries_by_slot() == b.entries_by_slot()
    }

    #[test]
    fn decode_rejects_truncated_entry_region() {
        let l = layout();
        let mut t = BlockTable::new();
        for i in 0..64u64 {
            t.insert(i * 16, i as u32);
        }
        let bytes = t.encode(&l).unwrap();
        // Cut the buffer inside the entry body: must be a TableError, not
        // a slice panic.
        for cut in [17usize, 24, 100, 16 + 64 * 17 + 7] {
            assert_eq!(
                BlockTable::decode(&bytes[..cut]).unwrap_err(),
                if cut < 24 {
                    TableError::BadMagic
                } else {
                    TableError::TooLarge
                },
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn decode_rejects_absurd_entry_count() {
        // A header claiming u64::MAX entries must not overflow the length
        // arithmetic.
        let mut bytes = vec![0u8; 4096];
        bytes[0..8].copy_from_slice(&TABLE_MAGIC.to_le_bytes());
        bytes[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            BlockTable::decode(&bytes).unwrap_err(),
            TableError::TooLarge
        );
    }

    #[test]
    fn bit_flip_fuzz_never_misdecodes() {
        let l = layout();
        let mut t = BlockTable::new();
        for i in 0..5u64 {
            t.insert(i * 16, i as u32);
            if i % 2 == 0 {
                t.mark_dirty(i * 16);
            }
        }
        let bytes = t.encode(&l).unwrap();
        let record_len = 16 + 5 * 17 + 8;
        // Flip every bit of the live record: decode must error or yield
        // the identical table (a flip can never silently change content).
        for byte in 0..record_len {
            for bit in 0..8 {
                let mut m = bytes.clone();
                m[byte] ^= 1 << bit;
                match BlockTable::decode(&m) {
                    Err(_) => {}
                    Ok(back) => assert!(
                        tables_equal(&t, &back),
                        "bit flip at {byte}:{bit} mis-decoded"
                    ),
                }
            }
        }
    }

    #[test]
    fn region_roundtrip_with_dual_copies() {
        let l = layout();
        let mut t = BlockTable::new();
        for i in 0..200u64 {
            t.insert(i * 16, i as u32);
        }
        let bytes = t.encode_region(&l).unwrap();
        assert_eq!(bytes.len(), l.table_sectors as usize * 512);
        let half = (l.table_sectors as usize / 2) * 512;
        assert_eq!(&bytes[..half], &bytes[half..2 * half], "copies differ");
        let back = BlockTable::decode_region(&bytes).unwrap();
        assert!(tables_equal(&t, &back));
    }

    #[test]
    fn region_survives_one_destroyed_copy() {
        let l = layout();
        let mut t = BlockTable::new();
        for i in 0..100u64 {
            t.insert(i * 16, i as u32);
        }
        let bytes = t.encode_region(&l).unwrap();
        let half = (l.table_sectors as usize / 2) * 512;

        let mut torn_a = bytes.clone();
        for b in &mut torn_a[..half] {
            *b = 0xAA;
        }
        let back = BlockTable::decode_region(&torn_a).unwrap();
        assert!(tables_equal(&t, &back), "copy B should rescue");

        let mut torn_b = bytes.clone();
        for b in &mut torn_b[half..] {
            *b = 0xAA;
        }
        let back = BlockTable::decode_region(&torn_b).unwrap();
        assert!(tables_equal(&t, &back), "copy A should rescue");

        let mut both = bytes;
        both.fill(0xAA);
        assert!(BlockTable::decode_region(&both).is_err());
    }

    #[test]
    fn legacy_single_copy_region_still_decodes() {
        let l = layout();
        let mut t = BlockTable::new();
        for i in 0..50u64 {
            t.insert(i * 16, i as u32);
        }
        let legacy = t.encode(&l).unwrap();
        let back = BlockTable::decode_region(&legacy).unwrap();
        assert!(tables_equal(&t, &back));
    }

    #[test]
    fn region_falls_back_to_single_copy_when_half_too_small() {
        let g = models::toshiba_mk156f().geometry;
        let label = DiskLabel::rearranged(g, 48);
        // max_entries = 1 -> a 1-block (16-sector) table region, so one
        // copy can use at most 8 sectors. 300 entries need ~5.1 KB: they
        // fit the full region but not half of it.
        let l = ReservedLayout::for_label(&label, 8192, 1).unwrap();
        let mut t = BlockTable::new();
        for i in 0..300u64 {
            t.insert(i * 16, i as u32);
        }
        let region = t.encode_region(&l).unwrap();
        let single = t.encode(&l).unwrap();
        assert_eq!(region, single, "must fall back to the legacy layout");
        assert!(tables_equal(
            &t,
            &BlockTable::decode_region(&region).unwrap()
        ));
    }

    #[test]
    fn entries_by_slot_sorted() {
        let mut t = BlockTable::new();
        t.insert(160, 9);
        t.insert(320, 2);
        t.insert(480, 5);
        let slots: Vec<u32> = t.entries_by_slot().iter().map(|(_, e)| e.slot).collect();
        assert_eq!(slots, vec![2, 5, 9]);
    }
}
