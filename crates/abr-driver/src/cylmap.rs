//! Whole-disk cylinder permutation — the [Vongsathorn & Carson 1990]
//! baseline.
//!
//! The paper's Related Work (§1.1) contrasts block rearrangement with
//! adaptive *cylinder* rearrangement: "disk cylinders are dynamically
//! rearranged using the organ pipe heuristic, according to observed data
//! access frequencies." This module provides that mechanism so the
//! comparison can be run head-to-head: a bijective map from virtual
//! cylinders to physical cylinders, installed by an ioctl that physically
//! relocates the data (buffering whole cylinders in host memory, as the
//! original system did).
//!
//! Differences from block rearrangement, by construction:
//! * *everything* moves (the layout of cold data is not preserved);
//! * granularity is a whole cylinder, so cold blocks ride along with hot
//!   ones;
//! * there is no reserved space — the disk is fully occupied by the
//!   permuted cylinders.

use serde::{Deserialize, Serialize};

/// A bijective virtual-cylinder → physical-cylinder map.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CylinderMap {
    map: Vec<u32>,
}

impl CylinderMap {
    /// The identity map over `n` cylinders.
    pub fn identity(n: u32) -> Self {
        CylinderMap {
            map: (0..n).collect(),
        }
    }

    /// Build from an explicit permutation.
    ///
    /// # Panics
    /// Panics if `map` is not a permutation of `0..map.len()`.
    pub fn new(map: Vec<u32>) -> Self {
        let mut seen = vec![false; map.len()];
        for &m in &map {
            assert!(
                (m as usize) < map.len() && !seen[m as usize],
                "not a permutation"
            );
            seen[m as usize] = true;
        }
        // Sanitize builds cross-check with the shared helper so the
        // permutation invariant is enforced by the same code the other
        // maps use.
        #[cfg(feature = "sanitize")]
        if let Err(e) = abr_lint::sanitize::check_permutation(
            map.iter().map(|&m| u64::from(m)),
            map.len() as u64,
        ) {
            panic!("cylinder map is not a permutation: {e}");
        }
        CylinderMap { map }
    }

    /// Number of cylinders covered.
    pub fn len(&self) -> u32 {
        abr_sim::narrow::u32_from_usize(self.map.len())
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Physical cylinder for a virtual cylinder.
    ///
    /// # Panics
    /// Debug-asserts the cylinder is in range.
    #[inline]
    pub fn physical(&self, virtual_cyl: u32) -> u32 {
        debug_assert!((virtual_cyl as usize) < self.map.len());
        self.map[virtual_cyl as usize]
    }

    /// Whether this is the identity permutation.
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(i, &m)| i == m as usize)
    }

    /// Cylinders whose physical home differs between `self` and `next`
    /// (the set that must physically move when switching maps).
    pub fn moved_cylinders(&self, next: &CylinderMap) -> Vec<u32> {
        assert_eq!(self.len(), next.len(), "maps over different disks");
        (0..self.len())
            .filter(|&v| self.physical(v) != next.physical(v))
            .collect()
    }

    /// Build the organ-pipe permutation for per-virtual-cylinder access
    /// counts: the most-referenced cylinder goes to the middle physical
    /// cylinder, the next to its neighbours, alternating outward —
    /// Vongsathorn & Carson's daily arrangement. Cylinder 0 is pinned in
    /// place (it holds the disk label).
    pub fn organ_pipe(counts: &[u64]) -> Self {
        let n = abr_sim::narrow::u32_from_usize(counts.len());
        if n <= 1 {
            return CylinderMap::identity(n);
        }
        // Virtual cylinders 1.. ranked by count descending (ties:
        // cylinder order, deterministically). Cylinder 0 stays put.
        let mut ranked: Vec<u32> = (1..n).collect();
        ranked.sort_by_key(|&v| (std::cmp::Reverse(counts[v as usize]), v));
        // Physical fill order over cylinders 1..: middle, then
        // alternating neighbours.
        let middle = n / 2;
        let mut fill = Vec::with_capacity(n as usize - 1);
        fill.push(middle);
        for d in 1..=n {
            if middle >= d && middle - d >= 1 {
                fill.push(middle - d);
            }
            if middle + d < n {
                fill.push(middle + d);
            }
            if fill.len() >= n as usize - 1 {
                break;
            }
        }
        let mut map = vec![0u32; n as usize];
        for (v, p) in ranked.into_iter().zip(fill) {
            map[v as usize] = p;
        }
        CylinderMap::new(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_maps_to_self() {
        let m = CylinderMap::identity(10);
        assert!(m.is_identity());
        for c in 0..10 {
            assert_eq!(m.physical(c), c);
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn rejects_duplicates() {
        CylinderMap::new(vec![0, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn rejects_out_of_range() {
        CylinderMap::new(vec![0, 3]);
    }

    #[test]
    fn organ_pipe_puts_hottest_in_middle() {
        // Counts: cylinder 7 hottest, then 2, then 4.
        let mut counts = vec![0u64; 11];
        counts[7] = 100;
        counts[2] = 50;
        counts[4] = 25;
        let m = CylinderMap::organ_pipe(&counts);
        assert_eq!(m.physical(7), 5); // middle of 11
                                      // Next two flank the middle.
        let p2 = m.physical(2);
        let p4 = m.physical(4);
        assert!(p2 == 4 || p2 == 6);
        assert!(p4 == 4 || p4 == 6);
        assert_ne!(p2, p4);
        // Cylinder 0 (the label) is pinned.
        assert_eq!(m.physical(0), 0);
        // Still a permutation.
        let mut all: Vec<u32> = (0..11).map(|v| m.physical(v)).collect();
        all.sort_unstable();
        assert_eq!(all, (0..11).collect::<Vec<_>>());
    }

    #[test]
    fn organ_pipe_uniform_counts_deterministic() {
        let a = CylinderMap::organ_pipe(&[5; 20]);
        let b = CylinderMap::organ_pipe(&[5; 20]);
        assert_eq!(a, b);
    }

    #[test]
    fn moved_cylinders_diff() {
        let a = CylinderMap::identity(5);
        let b = CylinderMap::new(vec![0, 2, 1, 3, 4]);
        assert_eq!(a.moved_cylinders(&b), vec![1, 2]);
        assert!(a.moved_cylinders(&a).is_empty());
    }
}
