//! I/O request types and block addressing.
//!
//! The file system calls the driver's strategy routine with a logical
//! device (partition) number and a logical block address within it
//! (§3.2). The driver translates that to a *virtual* disk sector, then to
//! a *physical* sector (skipping the hidden reserved cylinders), then —
//! if the block has been rearranged — to its reserved-area copy.

pub use abr_disk::disk::IoDir;
use abr_sim::SimTime;
use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// Opaque identifier of a submitted request, unique within one driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RequestId(pub u64);

/// A block-device request as the file system hands it to `strategy`.
#[derive(Debug, Clone)]
pub struct IoRequest {
    /// Read or write.
    pub dir: IoDir,
    /// Partition (logical device) index in the disk label.
    pub partition: usize,
    /// Starting sector *within the partition* (the FS addresses the
    /// partition as a flat array; fragments make sub-block offsets legal).
    pub sector_in_partition: u64,
    /// Transfer length in sectors. Must not cross a file-system block
    /// boundary (the FS never asks for more than one block per request;
    /// larger raw requests are split by [`crate::physio`]).
    pub n_sectors: u32,
    /// Payload for writes (`n_sectors * SECTOR_SIZE` bytes); empty for
    /// reads and for seeded writes (see [`IoRequest::write_seeded`]).
    pub data: Bytes,
    /// For seeded writes, the deterministic generator seed the payload
    /// is synthesized from at the moment it hits the media — the request
    /// carries 8 bytes instead of a materialized block. `None` for reads
    /// and explicit-data writes.
    pub payload_seed: Option<u64>,
}

/// Synthesize the deterministic payload stream for `seed` into `buf`
/// (the same stream for the same seed, regardless of buffer length).
///
/// The stream is counter-based ([`abr_disk::store::fill_seeded`]), so a
/// torn-write prefix of the buffer equals the same-length prefix of the
/// stream, and the store can hold seeded sectors lazily as `(seed, word)`
/// markers.
///
/// # Panics
/// Panics if `buf.len()` is not a multiple of 8.
pub fn fill_seeded_payload(seed: u64, buf: &mut [u8]) {
    abr_disk::store::fill_seeded(seed, 0, buf);
}

impl IoRequest {
    /// A read request.
    pub fn read(partition: usize, sector_in_partition: u64, n_sectors: u32) -> Self {
        IoRequest {
            dir: IoDir::Read,
            partition,
            sector_in_partition,
            n_sectors,
            data: Bytes::new(),
            payload_seed: None,
        }
    }

    /// A write request carrying data.
    ///
    /// # Panics
    /// Panics if the payload length does not match `n_sectors`.
    pub fn write(partition: usize, sector_in_partition: u64, n_sectors: u32, data: Bytes) -> Self {
        assert_eq!(
            data.len(),
            n_sectors as usize * abr_disk::SECTOR_SIZE,
            "write payload does not match transfer length"
        );
        IoRequest {
            dir: IoDir::Write,
            partition,
            sector_in_partition,
            n_sectors,
            data,
            payload_seed: None,
        }
    }

    /// A write whose payload is synthesized from `seed` only when it
    /// reaches the media (see [`fill_seeded_payload`]): the hot
    /// submit→dispatch path carries no block-sized allocation at all.
    pub fn write_seeded(
        partition: usize,
        sector_in_partition: u64,
        n_sectors: u32,
        seed: u64,
    ) -> Self {
        IoRequest {
            dir: IoDir::Write,
            partition,
            sector_in_partition,
            n_sectors,
            data: Bytes::new(),
            payload_seed: Some(seed),
        }
    }

    /// The write payload, materializing a seeded request's stream. Used
    /// where the bytes themselves are needed before the media write
    /// (parity deltas, mirror pending images).
    pub fn payload(&self) -> Bytes {
        match self.payload_seed {
            Some(seed) => {
                let mut buf = vec![0u8; self.n_sectors as usize * abr_disk::SECTOR_SIZE];
                fill_seeded_payload(seed, &mut buf);
                Bytes::from(buf)
            }
            None => self.data.clone(),
        }
    }

    /// A write of zero-filled sectors (for tests and formatting).
    pub fn write_zeroes(partition: usize, sector_in_partition: u64, n_sectors: u32) -> Self {
        IoRequest::write(
            partition,
            sector_in_partition,
            n_sectors,
            Bytes::from(vec![0u8; n_sectors as usize * abr_disk::SECTOR_SIZE]),
        )
    }
}

/// The physical `(sector, n_sectors)` segments of one request, stored
/// inline. Requests are block-bounded and a block spans at most two
/// cylinder pieces under a cylinder map, so two fixed slots cover every
/// case — no heap allocation per request.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Segments {
    buf: [(u64, u32); 2],
    len: u8,
}

impl Segments {
    /// The common single-segment case.
    pub fn one(sector: u64, n_sectors: u32) -> Self {
        Segments {
            buf: [(sector, n_sectors), (0, 0)],
            len: 1,
        }
    }

    /// An empty list to push into.
    pub fn new() -> Self {
        Segments::default()
    }

    /// Append a segment.
    ///
    /// # Panics
    /// Panics on a third segment — a block-bounded request cannot
    /// straddle more than one cylinder boundary.
    pub fn push(&mut self, sector: u64, n_sectors: u32) {
        assert!(
            self.len < 2,
            "block-bounded request resolved to more than two segments"
        );
        self.buf[self.len as usize] = (sector, n_sectors);
        self.len += 1;
    }
}

impl std::ops::Deref for Segments {
    type Target = [(u64, u32)];

    fn deref(&self) -> &[(u64, u32)] {
        &self.buf[..self.len as usize]
    }
}

/// A request sitting in the driver's queue, carrying resolved addresses.
///
/// A request usually resolves to one contiguous physical segment; under a
/// cylinder map, a block straddling a cylinder boundary resolves to two.
#[derive(Debug, Clone)]
pub(crate) struct Queued {
    pub id: RequestId,
    pub req: IoRequest,
    /// Physical `(sector, n_sectors)` segments, in request order.
    pub segments: Segments,
    /// Cylinder of the first segment (for scheduling).
    pub target_cylinder: u32,
    /// When `strategy` received it.
    pub arrived: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_has_no_payload() {
        let r = IoRequest::read(0, 100, 16);
        assert!(r.data.is_empty());
        assert!(r.dir.is_read());
    }

    #[test]
    fn write_payload_length_checked() {
        let data = Bytes::from(vec![0xAB; 2 * abr_disk::SECTOR_SIZE]);
        let w = IoRequest::write(1, 50, 2, data);
        assert_eq!(w.n_sectors, 2);
        assert_eq!(w.data.len(), 1024);
    }

    #[test]
    #[should_panic(expected = "payload does not match")]
    fn write_payload_mismatch_panics() {
        let _ = IoRequest::write(0, 0, 3, Bytes::from(vec![0u8; 512]));
    }

    #[test]
    fn write_zeroes_helper() {
        let w = IoRequest::write_zeroes(0, 0, 4);
        assert_eq!(w.data.len(), 4 * 512);
        assert!(w.data.iter().all(|&b| b == 0));
    }
}
