//! The raw-interface request splitter (§4.1.2).
//!
//! "Through the raw interface, it is possible that requests larger than
//! the block size will be forwarded to the driver. This raises the
//! possibility that part of the requested data may have been rearranged
//! and part may not. To accommodate such requests, the driver's physio
//! routine was modified to break large requests into block-sized
//! subrequests."

/// Split a `(sector, n_sectors)` transfer into pieces that never cross a
/// boundary of the `sectors_per_block`-sector block grid. Returns
/// `(start_sector, n_sectors)` pieces in ascending order.
///
/// # Panics
/// Panics if `n_sectors` is zero or `sectors_per_block` is zero.
pub fn split(sector: u64, n_sectors: u32, sectors_per_block: u32) -> Vec<(u64, u32)> {
    assert!(n_sectors > 0, "empty transfer");
    assert!(sectors_per_block > 0, "zero block size");
    let spb = u64::from(sectors_per_block);
    let end = sector + u64::from(n_sectors);
    let mut pieces = Vec::new();
    let mut cur = sector;
    while cur < end {
        let block_end = (cur / spb + 1) * spb;
        let piece_end = block_end.min(end);
        pieces.push((cur, (piece_end - cur) as u32));
        cur = piece_end;
    }
    pieces
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_single_block_is_one_piece() {
        assert_eq!(split(16, 16, 16), vec![(16, 16)]);
    }

    #[test]
    fn sub_block_request_untouched() {
        assert_eq!(split(3, 4, 16), vec![(3, 4)]);
    }

    #[test]
    fn unaligned_large_request_splits_at_boundaries() {
        // Blocks of 8: [5..8) [8..16) [16..24) [24..25).
        assert_eq!(split(5, 20, 8), vec![(5, 3), (8, 8), (16, 8), (24, 1)]);
    }

    #[test]
    fn pieces_cover_exactly_the_range() {
        for (start, n, spb) in [(0u64, 100u32, 16u32), (7, 33, 8), (15, 2, 16), (1, 1, 4)] {
            let pieces = split(start, n, spb);
            let mut cur = start;
            for (s, len) in &pieces {
                assert_eq!(*s, cur, "gap or overlap");
                assert!(*len > 0);
                // No piece crosses a block boundary.
                assert!(s % u64::from(spb) + u64::from(*len) <= u64::from(spb));
                cur += u64::from(*len);
            }
            assert_eq!(cur, start + u64::from(n));
        }
    }

    #[test]
    #[should_panic(expected = "empty transfer")]
    fn empty_transfer_panics() {
        split(0, 0, 16);
    }
}
