//! # abr-driver — the adaptive disk device driver
//!
//! A faithful model of the modified SunOS 4.1.1 SCSI disk driver of
//! §4 of *Adaptive Block Rearrangement* (Akyürek & Salem):
//!
//! * [`request`] — I/O request types and block addressing.
//! * [`layout`] — layout of the reserved area: the on-disk block table
//!   region followed by packed block slots (§4.1.1).
//! * [`blocktable`] — the *block table* mapping original physical block
//!   addresses to their reserved-area copies, with dirty bits and an
//!   on-disk copy for recovery (§4.1.2).
//! * [`sched`] — disk queueing policies: FCFS, SCAN (the stock SunOS
//!   policy), C-SCAN and SSTF.
//! * [`monitor`] — the request monitor (a bounded in-kernel table of
//!   recent requests, §4.1.4) and the performance monitor (seek-distance
//!   distributions in arrival and scheduled order, service and queueing
//!   time distributions, separately for reads and writes, §4.1.5).
//! * [`driver`] — the driver itself: attach, strategy, the dispatch /
//!   interrupt completion engine, and the ioctl entry points
//!   (`DKIOCBCOPY`, `DKIOCCLEAN`, monitor reads, §4.1.3).
//! * [`physio`] — the raw (character) interface, splitting large requests
//!   into block-sized subrequests (§4.1.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocktable;
pub mod cylmap;
pub mod driver;
pub mod layout;
pub mod monitor;
pub mod physio;
pub mod request;
pub mod sched;

pub use blocktable::BlockTable;
pub use driver::{AdaptiveDriver, Completion, DriverConfig, DriverError, Ioctl, IoctlReply};
pub use layout::ReservedLayout;
pub use monitor::{PerfMonitor, PerfSnapshot, RequestMonitor, RequestRecord};
pub use request::{IoRequest, RequestId};
pub use sched::SchedulerKind;
