//! The adaptive device driver (§4).
//!
//! [`AdaptiveDriver`] models the modified SunOS SCSI driver:
//!
//! * **attach** — reads the disk label from sector 0; if the label marks a
//!   rearranged disk, reads the block table from the head of the reserved
//!   area and conservatively marks every entry dirty (the recovery rule of
//!   §4.1.2).
//! * **strategy** — translates (partition, sector) to a physical address,
//!   redirects through the block table, records the request in the
//!   monitors, and enqueues it. If the disk is idle the request is
//!   dispatched immediately.
//! * **interrupt/completion engine** — [`AdaptiveDriver::next_completion`]
//!   and [`AdaptiveDriver::complete_next`] drive the queue: each
//!   completion dispatches the next request chosen by the configured
//!   queueing policy.
//! * **ioctl** — `DKIOCBCOPY` / `DKIOCCLEAN` block movement (§4.1.3) plus
//!   the monitor read-and-clear calls (§4.1.4–4.1.5).

use crate::blocktable::{BlockTable, TableError};
use crate::cylmap::CylinderMap;
use crate::layout::ReservedLayout;
use crate::monitor::{PerfMonitor, PerfSnapshot, RequestMonitor, RequestRecord};
use crate::request::{IoDir, IoRequest, Queued, RequestId, Segments};
use crate::sched::{Scheduler, SchedulerKind};
use abr_disk::disk::ServiceBreakdown;
use abr_disk::fault::{DiskError, DiskFault};
use abr_disk::label::LabelError;
use abr_disk::{Disk, DiskLabel, SECTOR_SIZE};
use abr_obs::{record_with, with_registry, CounterId, MoveKind, ObsEvent, RequestSpan};
use abr_sim::{SimDuration, SimTime};
use bytes::Bytes;
use std::collections::BTreeSet;
use std::fmt;

/// Driver configuration.
#[derive(Debug, Clone, Copy)]
pub struct DriverConfig {
    /// File-system block size in bytes (8192 in the paper).
    pub block_size: u32,
    /// Queueing policy (SCAN in the measured system).
    pub scheduler: SchedulerKind,
    /// Capacity of the request monitor table.
    pub monitor_capacity: usize,
    /// Maximum block-table entries (sizes the on-disk table region).
    pub table_max_entries: u32,
    /// Queue age (strategy receipt → dispatch) at or above which a
    /// dispatch counts as starved, feeding the `driver.starved_total`
    /// counter and `driver.queue_age_max_us` gauge (aging/fairness
    /// instrumentation for scheduler work).
    pub starvation_age: SimDuration,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            block_size: 8192,
            scheduler: SchedulerKind::Scan,
            monitor_capacity: 65_536,
            table_max_entries: 4096,
            starvation_age: crate::monitor::DEFAULT_STARVATION_AGE,
        }
    }
}

/// Driver errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriverError {
    /// The disk label failed to decode.
    Label(LabelError),
    /// The on-disk block table failed to decode.
    Table(TableError),
    /// Block movement requested on a disk not initialized for
    /// rearrangement.
    NotRearranged,
    /// Partition index out of range.
    BadPartition,
    /// Request outside its partition.
    OutOfPartition,
    /// A block-interface request crossed a file-system block boundary.
    CrossesBlockBoundary,
    /// Block movement attempted while requests are outstanding.
    Busy,
    /// Reserved-area slot index out of range.
    BadSlot,
    /// Slot already holds a different block.
    SlotOccupied,
    /// Partition not aligned to the file-system block grid.
    UnalignedPartition,
    /// Reserved-area boundary not aligned to the block grid.
    UnalignedReservedArea,
    /// Eviction requested for a block that is not in the reserved area.
    NotResident,
    /// Cylinder shuffling requested on a disk with a reserved area (the
    /// two remapping modes are mutually exclusive).
    IncompatibleMode,
    /// The cylinder map does not cover the disk's cylinders, or moves
    /// the label cylinder.
    BadCylinderMap,
    /// A request with zero sectors.
    EmptyTransfer,
    /// A disk operation failed (after the driver's bounded retries).
    Disk {
        /// The fault class the disk reported.
        fault: DiskFault,
        /// First sector of the failed operation.
        sector: u64,
    },
    /// Block movement into a quarantined (blacklisted) reserved slot.
    SlotQuarantined,
    /// The most recent data for this block was lost to a hard error (its
    /// dirty reserved copy became unreadable before it was copied home).
    DataLoss,
    /// The driver is in degraded pass-through mode (the on-disk block
    /// table was unreadable); block movement is disabled.
    Degraded,
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::Label(e) => write!(f, "label: {e}"),
            DriverError::Table(e) => write!(f, "block table: {e}"),
            DriverError::NotRearranged => write!(f, "disk not initialized for rearrangement"),
            DriverError::BadPartition => write!(f, "no such partition"),
            DriverError::OutOfPartition => write!(f, "request outside partition"),
            DriverError::CrossesBlockBoundary => {
                write!(f, "request crosses a file-system block boundary")
            }
            DriverError::Busy => write!(f, "driver busy; block movement needs an idle device"),
            DriverError::BadSlot => write!(f, "reserved slot out of range"),
            DriverError::SlotOccupied => write!(f, "reserved slot occupied"),
            DriverError::UnalignedPartition => write!(f, "partition not block-aligned"),
            DriverError::UnalignedReservedArea => {
                write!(f, "reserved area not block-aligned")
            }
            DriverError::NotResident => write!(f, "block not in the reserved area"),
            DriverError::IncompatibleMode => {
                write!(
                    f,
                    "cylinder shuffling and a reserved area are mutually exclusive"
                )
            }
            DriverError::BadCylinderMap => write!(f, "cylinder map does not match the disk"),
            DriverError::EmptyTransfer => write!(f, "zero-length transfer"),
            DriverError::Disk { fault, sector } => {
                write!(f, "disk error ({fault:?}) at sector {sector}")
            }
            DriverError::SlotQuarantined => {
                write!(f, "reserved slot quarantined after a media error")
            }
            DriverError::DataLoss => {
                write!(f, "block data lost to a hard error (no valid copy remains)")
            }
            DriverError::Degraded => {
                write!(
                    f,
                    "driver degraded to pass-through mode; remapping disabled"
                )
            }
        }
    }
}

impl std::error::Error for DriverError {}

impl From<DiskError> for DriverError {
    fn from(e: DiskError) -> Self {
        DriverError::Disk {
            fault: e.fault,
            sector: e.sector,
        }
    }
}

impl From<LabelError> for DriverError {
    fn from(e: LabelError) -> Self {
        DriverError::Label(e)
    }
}

impl From<TableError> for DriverError {
    fn from(e: TableError) -> Self {
        DriverError::Table(e)
    }
}

/// A finished request, as returned to the caller at interrupt time.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The request's id.
    pub id: RequestId,
    /// Direction.
    pub dir: IoDir,
    /// Data read from disk (empty for writes).
    pub data: Bytes,
    /// When strategy received the request.
    pub arrived: SimTime,
    /// When it was dispatched to the disk.
    pub dispatched: SimTime,
    /// When the disk completed it.
    pub completed: SimTime,
    /// Mechanical timing decomposition.
    pub breakdown: ServiceBreakdown,
    /// Why the request failed, if it did. `None` for a successful
    /// transfer; on failure, reads carry no data and writes may have
    /// partially persisted (torn).
    pub error: Option<DriverError>,
}

impl Completion {
    /// Whether the request succeeded.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
    /// Queueing time (strategy receipt → dispatch).
    pub fn queueing(&self) -> SimDuration {
        self.dispatched - self.arrived
    }

    /// Service time (dispatch → completion).
    pub fn service(&self) -> SimDuration {
        self.completed - self.dispatched
    }

    /// Response time (receipt → completion).
    pub fn response(&self) -> SimDuration {
        self.completed - self.arrived
    }
}

/// The driver's special-purpose entry points (§4.1.3–4.1.5).
#[derive(Debug, Clone)]
pub enum Ioctl {
    /// `DKIOCBCOPY`: copy virtual block `block` into reserved slot `slot`.
    BCopy {
        /// Virtual block number (virtual sector / sectors-per-block).
        block: u64,
        /// Destination slot in the reserved area.
        slot: u32,
    },
    /// `DKIOCCLEAN`: empty the reserved area, copying dirty blocks home.
    Clean,
    /// `DKIOCBEVICT` (extension): move a single block out of the reserved
    /// area, identified by its original physical sector. Enables
    /// incremental rearrangement without a full clean.
    BEvict {
        /// Original physical sector of the block (the table key).
        orig: u64,
    },
    /// Install a whole-disk cylinder permutation, physically relocating
    /// every cylinder whose home changes (the Vongsathorn & Carson
    /// baseline; see [`crate::cylmap`]). Only valid on a disk without a
    /// reserved area. The map lives in driver memory for the session (a
    /// production shuffler would persist it in the label); cylinder 0 is
    /// pinned so the label never moves.
    ShuffleCylinders {
        /// The new virtual→physical cylinder permutation.
        map: CylinderMap,
    },
    /// Read and clear the request monitor table.
    ReadRequestTable,
    /// Read and clear the performance monitor.
    ReadStats,
    /// Read performance statistics without clearing.
    PeekStats,
}

/// Replies from [`AdaptiveDriver::ioctl`].
#[derive(Debug, Clone)]
pub enum IoctlReply {
    /// Block movement done: I/O operations issued and time consumed.
    Moved {
        /// Number of disk operations performed.
        ops: u32,
        /// Total simulated time the operations took.
        busy: SimDuration,
    },
    /// Request-table contents and the count of dropped (unrecorded)
    /// requests.
    RequestTable {
        /// Recorded requests since the last read.
        records: Vec<RequestRecord>,
        /// Requests that arrived while the table was full.
        dropped: u64,
    },
    /// Performance statistics snapshot.
    Stats(Box<PerfSnapshot>),
}

struct Active {
    queued: Queued,
    dispatched: SimTime,
    breakdown: ServiceBreakdown,
    completes: SimTime,
    error: Option<DriverError>,
    /// Span scratch carried from dispatch to completion so the trace
    /// layer can emit one complete lifecycle record per request.
    seek_cylinders: u32,
    queue_depth: u32,
    in_reserved: bool,
    retries: u32,
}

/// Static unified-registry handles for the driver's own counters
/// (resolved once at attach; see `abr_obs::registry`).
#[derive(Debug, Clone, Copy)]
struct DriverObs {
    submitted: CounterId,
    completed: CounterId,
    failed: CounterId,
    move_ops: CounterId,
    move_busy_us: CounterId,
}

impl DriverObs {
    fn resolve() -> Self {
        with_registry(|r| DriverObs {
            submitted: r.counter("driver.submitted"),
            completed: r.counter("driver.completed"),
            failed: r.counter("driver.failed"),
            move_ops: r.counter("driver.move.ops"),
            move_busy_us: r.counter("driver.move.busy_us"),
        })
    }
}

/// Per-request registry increments buffered locally and mirrored in one
/// pass at the day-boundary `ReadStats` ioctl, so submit/complete (the
/// two hottest driver entry points) never take the registry borrow.
#[derive(Debug, Clone, Copy, Default)]
struct PendingDriverObs {
    submitted: u64,
    completed: u64,
    failed: u64,
}

/// The adaptive disk device driver.
///
/// ```
/// use abr_disk::{models, Disk, DiskLabel};
/// use abr_driver::{AdaptiveDriver, DriverConfig, Ioctl};
/// use abr_driver::request::IoRequest;
/// use abr_sim::SimTime;
///
/// // Format a disk with a reserved region and attach.
/// let model = models::tiny_test_disk();
/// let label = DiskLabel::rearranged_aligned(model.geometry, 10, 8);
/// let config = DriverConfig { block_size: 4096, ..DriverConfig::default() };
/// let mut disk = Disk::new(model);
/// AdaptiveDriver::format(&mut disk, &label, &config);
/// let mut driver = AdaptiveDriver::attach(disk, config).unwrap();
///
/// // Copy virtual block 3 into reserved slot 0, then read through the
/// // remapping.
/// driver.ioctl(Ioctl::BCopy { block: 3, slot: 0 }, SimTime::ZERO).unwrap();
/// driver.submit(IoRequest::read(0, 3 * 8, 8), SimTime::from_micros(10_000_000)).unwrap();
/// let done = driver.drain();
/// assert_eq!(done.len(), 1);
/// ```
pub struct AdaptiveDriver {
    // NOTE: not Debug because the scheduler is a trait object; see the
    // manual impl below.
    disk: Disk,
    label: DiskLabel,
    layout: Option<ReservedLayout>,
    config: DriverConfig,
    table: BlockTable,
    queue: Vec<Queued>,
    scheduler: Box<dyn Scheduler>,
    active: Option<Active>,
    req_mon: RequestMonitor,
    perf: PerfMonitor,
    /// Whole-disk cylinder permutation (the Vongsathorn & Carson
    /// baseline). Mutually exclusive with a reserved area.
    cyl_map: Option<CylinderMap>,
    /// Pre-remap cylinder of the last *arrived* request (FCFS baseline).
    last_arrival_cyl: Option<u32>,
    /// Target cylinder of the last *dispatched* request (the driver's
    /// address-based view of head position; footnote 4 of the paper —
    /// the driver cannot see track-buffer hits).
    last_dispatch_cyl: Option<u32>,
    next_id: u64,
    /// Pass-through mode: set at attach when the on-disk block table is
    /// unreadable. Remapping is disabled and every request is served at
    /// its original address (no silent corruption from a guessed table).
    degraded: bool,
    /// Reserved slots blacklisted after hard media errors.
    quarantined: BTreeSet<u32>,
    /// Original sectors of blocks whose latest data was lost (dirty
    /// reserved copy destroyed). Reads fail with [`DriverError::DataLoss`]
    /// until a full-block write refreshes the block.
    lost: BTreeSet<u64>,
    /// Retries absorbed while servicing the current foreground request
    /// (zeroed at dispatch; copied into the span at completion).
    retry_scratch: u32,
    /// Reused index buffer for the arrived-subset scheduler view (cleared
    /// per dispatch; keeps the hot path allocation-free).
    eligible_scratch: Vec<usize>,
    /// Whether [`AdaptiveDriver::complete_next`] copies read data out of
    /// the store into the [`Completion`]. Simulation loops that discard
    /// completions turn this off to skip a block-sized allocation and
    /// copy per read.
    deliver_read_data: bool,
    /// Position of this driver within a multi-disk array (0 for a
    /// standalone disk). Stamped onto every emitted request span so
    /// array traces carry a per-disk label dimension.
    disk_index: u32,
    /// Unified-registry counter handles.
    obs: DriverObs,
    /// Buffered registry mirroring (flushed at `ReadStats`).
    obs_pending: PendingDriverObs,
}

impl fmt::Debug for AdaptiveDriver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdaptiveDriver")
            .field("disk", &self.disk.model().name)
            .field("rearranged", &self.label.is_rearranged())
            .field("table_entries", &self.table.len())
            .field("queued", &self.queue.len())
            .field("active", &self.active.is_some())
            .finish_non_exhaustive()
    }
}

impl AdaptiveDriver {
    /// Write a label (and, for rearranged disks, an empty block table)
    /// onto a fresh disk — the `newfs`-time initialization of §4.1.1.
    pub fn format(disk: &mut Disk, label: &DiskLabel, config: &DriverConfig) {
        let enc = label.encode();
        disk.store_mut().write(0, &enc);
        if let Some(layout) =
            ReservedLayout::for_label(label, config.block_size, config.table_max_entries)
        {
            let table = BlockTable::new();
            let bytes = table.encode_region(&layout).expect("empty table fits");
            disk.store_mut().write(layout.start_sector, &bytes);
        }
    }

    /// Attach to a disk: read the label from sector 0 and, for a
    /// rearranged disk, the block table from the reserved area. Every
    /// table entry is conservatively marked dirty ("all blocks are marked
    /// as dirty when \[the\] memory-resident copy of the table is recreated"
    /// — §4.1.2), so no update can be lost to a crash.
    pub fn attach(disk: Disk, config: DriverConfig) -> Result<Self, DriverError> {
        assert!(
            config.block_size > 0 && config.block_size.is_multiple_of(SECTOR_SIZE as u32),
            "block size must be a positive multiple of the sector size"
        );
        let label_sector = disk.store().read_sector(0);
        let label = DiskLabel::decode(&label_sector)?;
        let layout = ReservedLayout::for_label(&label, config.block_size, config.table_max_entries);
        let spb = u64::from(config.block_size / SECTOR_SIZE as u32);
        if let Some(l) = &layout {
            // The mapping discontinuity at the front of the reserved area
            // must fall on a block boundary (see ReservedArea::centered_aligned).
            if l.start_sector % spb != 0 {
                return Err(DriverError::UnalignedReservedArea);
            }
        }
        for p in &label.partitions {
            if p.start_sector % spb != 0 {
                return Err(DriverError::UnalignedPartition);
            }
        }
        let mut table = BlockTable::new();
        let mut degraded = false;
        if let Some(l) = &layout {
            let mut buf = vec![0u8; l.table_sectors as usize * SECTOR_SIZE];
            disk.store().read(l.start_sector, &mut buf);
            // Both redundant copies (and the legacy layout) are tried; if
            // none decodes, fall into pass-through mode rather than
            // refusing to attach or guessing a mapping: every request is
            // served at its original address, which is always correct for
            // clean blocks and never silently wrong for dirty ones (their
            // reserved copies are unreachable either way).
            match BlockTable::decode_region(&buf) {
                Ok(t) => {
                    table = t;
                    table.mark_all_dirty();
                }
                Err(_) => degraded = true,
            }
        }
        Ok(AdaptiveDriver {
            disk,
            label,
            layout,
            scheduler: config.scheduler.make(),
            table,
            queue: Vec::new(),
            active: None,
            req_mon: RequestMonitor::new(config.monitor_capacity),
            perf: PerfMonitor::with_starvation_age(config.starvation_age),
            cyl_map: None,
            last_arrival_cyl: None,
            last_dispatch_cyl: None,
            next_id: 0,
            degraded,
            quarantined: BTreeSet::new(),
            lost: BTreeSet::new(),
            retry_scratch: 0,
            eligible_scratch: Vec::new(),
            deliver_read_data: true,
            disk_index: 0,
            obs: DriverObs::resolve(),
            obs_pending: PendingDriverObs::default(),
            config,
        })
    }

    /// Label this driver with its position in a multi-disk array; the
    /// index is stamped onto every request span it emits. Standalone
    /// drivers keep the default of 0 (omitted from serialized spans).
    pub fn set_disk_index(&mut self, index: u32) {
        self.disk_index = index;
    }

    /// This driver's position within its array (0 when standalone).
    pub fn disk_index(&self) -> u32 {
        self.disk_index
    }

    /// The request monitor (diagnostics like `abrctl monitor-dump`; the
    /// ioctl path reads and clears it instead).
    pub fn request_monitor(&self) -> &RequestMonitor {
        &self.req_mon
    }

    /// Whether the driver attached in degraded pass-through mode (the
    /// on-disk block table was unreadable; remapping is disabled).
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Reserved slots blacklisted after hard media errors.
    pub fn quarantined_slots(&self) -> impl Iterator<Item = u32> + '_ {
        self.quarantined.iter().copied()
    }

    /// Blocks (by original physical sector) whose latest data was lost.
    pub fn lost_blocks(&self) -> impl Iterator<Item = u64> + '_ {
        self.lost.iter().copied()
    }

    /// Mutable access to the underlying disk (to install a fault
    /// injector or revive a powered-off disk).
    pub fn disk_mut(&mut self) -> &mut Disk {
        &mut self.disk
    }

    /// The disk label read at attach time.
    pub fn label(&self) -> &DiskLabel {
        &self.label
    }

    /// The reserved-area layout, if the disk is rearranged.
    pub fn layout(&self) -> Option<&ReservedLayout> {
        self.layout.as_ref()
    }

    /// Sectors per file-system block.
    pub fn sectors_per_block(&self) -> u32 {
        self.config.block_size / SECTOR_SIZE as u32
    }

    /// The block table (the current rearrangement state).
    pub fn block_table(&self) -> &BlockTable {
        &self.table
    }

    /// Immutable access to the underlying disk.
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// Number of queued (not yet dispatched) requests.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the driver has no queued or active request.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.active.is_none()
    }

    /// Resolve a (partition, sector) pair to an absolute virtual sector.
    fn to_virtual(&self, partition: usize, sector: u64, n: u32) -> Result<u64, DriverError> {
        let p = self
            .label
            .partitions
            .get(partition)
            .ok_or(DriverError::BadPartition)?;
        if sector + u64::from(n) > p.n_sectors {
            return Err(DriverError::OutOfPartition);
        }
        Ok(p.start_sector + sector)
    }

    /// Translate an absolute virtual sector range to its final physical
    /// segments, consulting the block table and the cylinder map, and
    /// note write-dirtying. Usually one segment; a cylinder map can split
    /// a boundary-straddling block into two.
    fn resolve(&mut self, vsector: u64, n: u32, dir: IoDir) -> Segments {
        if !dir.is_read() {
            let spb = u64::from(self.sectors_per_block());
            let orig_phys = self.label.virtual_to_physical(vsector - (vsector % spb));
            if self.layout.is_some() && self.table.lookup(orig_phys).is_some() {
                self.table.mark_dirty(orig_phys);
            }
        }
        self.resolve_at(vsector, n)
    }

    /// Side-effect-free translation of an absolute virtual sector range
    /// to physical segments — the same mapping [`Self::resolve`]
    /// applies, minus the write-dirtying. Maintenance readers (array
    /// scrub and rebuild) use this to locate a block's current bytes
    /// without perturbing the block table.
    fn resolve_at(&self, vsector: u64, n: u32) -> Segments {
        let spb = u64::from(self.sectors_per_block());
        let vblock_start = vsector - (vsector % spb);
        let offset = vsector - vblock_start;
        let orig_phys = self.label.virtual_to_physical(vblock_start);
        if let (Some(layout), Some(entry)) = (&self.layout, self.table.lookup(orig_phys)) {
            let target = layout.slot_sector(entry.slot) + offset;
            return Segments::one(target, n);
        }
        let p = orig_phys + offset;
        match &self.cyl_map {
            None => Segments::one(p, n),
            Some(map) => {
                // Split at physical cylinder boundaries and map each
                // piece through the permutation.
                let g = self.label.physical;
                let spc = g.sectors_per_cylinder();
                let mut out = Segments::new();
                let mut cur = p;
                let end = p + u64::from(n);
                while cur < end {
                    let cyl = g.cylinder_of(cur);
                    let cyl_end = g.cylinder_start(cyl) + spc;
                    let piece_end = cyl_end.min(end);
                    let within = cur - g.cylinder_start(cyl);
                    let mapped = g.cylinder_start(map.physical(cyl)) + within;
                    out.push(mapped, (piece_end - cur) as u32);
                    cur = piece_end;
                }
                out
            }
        }
    }

    /// The strategy routine: validate, translate, monitor, enqueue, and
    /// dispatch if the disk is idle. Returns the request id.
    ///
    /// Like the real SunOS block interface, nothing stops a caller from
    /// writing over the disk label at the front of partition 0 — that is
    /// how disks were relabelled. The file system never allocates block 0
    /// (it is the superblock's home), so well-behaved stacks are safe.
    pub fn submit(&mut self, req: IoRequest, now: SimTime) -> Result<RequestId, DriverError> {
        if req.n_sectors == 0 {
            return Err(DriverError::EmptyTransfer);
        }
        let spb = u64::from(self.sectors_per_block());
        let vsector = self.to_virtual(req.partition, req.sector_in_partition, req.n_sectors)?;
        if (vsector % spb) + u64::from(req.n_sectors) > spb {
            return Err(DriverError::CrossesBlockBoundary);
        }

        // FCFS/no-rearrangement baseline distance, from pre-remap
        // addresses in arrival order.
        let pre_remap_phys = self.label.virtual_to_physical(vsector - (vsector % spb));
        let pre_cyl = self.label.physical.cylinder_of(pre_remap_phys);
        if let Some(prev) = self.last_arrival_cyl {
            self.perf
                .record_arrival_seek(req.dir, u64::from(pre_cyl.abs_diff(prev)));
        }
        self.last_arrival_cyl = Some(pre_cyl);

        self.obs_pending.submitted += 1;

        // Request monitor sees the stable virtual block number.
        self.req_mon.record(RequestRecord {
            block: vsector / spb,
            n_sectors: req.n_sectors,
            dir: req.dir,
        });

        let segments = self.resolve(vsector, req.n_sectors, req.dir);
        let id = RequestId(self.next_id);
        self.next_id += 1;
        self.queue.push(Queued {
            id,
            target_cylinder: self.label.physical.cylinder_of(segments[0].0),
            segments,
            arrived: now,
            req,
        });
        if self.active.is_none() {
            self.dispatch_next(now);
        }
        Ok(id)
    }

    /// Raw (character-device) interface: a request of any size and
    /// alignment, split by physio into block-bounded subrequests
    /// (§4.1.2). Returns the ids of all subrequests.
    pub fn submit_raw(
        &mut self,
        dir: IoDir,
        partition: usize,
        sector: u64,
        n_sectors: u32,
        now: SimTime,
    ) -> Result<Vec<RequestId>, DriverError> {
        let pieces = crate::physio::split(sector, n_sectors, self.sectors_per_block());
        pieces
            .into_iter()
            .map(|(s, n)| {
                let req = match dir {
                    IoDir::Read => IoRequest::read(partition, s, n),
                    IoDir::Write => IoRequest::write_zeroes(partition, s, n),
                };
                self.submit(req, now)
            })
            .collect()
    }

    /// The physical `(sector, n_sectors)` segments a request at
    /// `sector_in_partition` of `partition` would be serviced from
    /// right now, under the current block table and cylinder map.
    /// Validates like [`Self::submit`] but queues nothing and dirties
    /// nothing — maintenance code (array scrub) uses it to test whether
    /// a block's current home overlaps an injected defect.
    pub fn physical_segments(
        &self,
        partition: usize,
        sector_in_partition: u64,
        n_sectors: u32,
    ) -> Result<Vec<(u64, u32)>, DriverError> {
        if n_sectors == 0 {
            return Err(DriverError::EmptyTransfer);
        }
        let spb = u64::from(self.sectors_per_block());
        let vsector = self.to_virtual(partition, sector_in_partition, n_sectors)?;
        if (vsector % spb) + u64::from(n_sectors) > spb {
            return Err(DriverError::CrossesBlockBoundary);
        }
        Ok(self.resolve_at(vsector, n_sectors).to_vec())
    }

    /// Read a range's current contents straight from the backing store,
    /// bypassing the queue and the simulated clock (no time passes, no
    /// head movement). Reads of a lost block fail with
    /// [`DriverError::DataLoss`] exactly like a queued read would.
    ///
    /// The array layer uses this to compute mirror and parity payloads
    /// at submit time and to fetch survivor data during rebuild — the
    /// simulator's stand-in for data already resident in the buffer
    /// cache (the timed disk reads are issued separately as real
    /// requests).
    pub fn peek(
        &self,
        partition: usize,
        sector_in_partition: u64,
        n_sectors: u32,
    ) -> Result<Bytes, DriverError> {
        let segments = self.physical_segments(partition, sector_in_partition, n_sectors)?;
        let spb = u64::from(self.sectors_per_block());
        let vsector = self.to_virtual(partition, sector_in_partition, n_sectors)?;
        let home_phys = self.label.virtual_to_physical(vsector - (vsector % spb));
        if self.lost.contains(&home_phys) {
            return Err(DriverError::DataLoss);
        }
        let mut buf = vec![0u8; n_sectors as usize * SECTOR_SIZE];
        let mut off = 0usize;
        for &(sector, n) in &segments {
            let bytes = n as usize * SECTOR_SIZE;
            self.disk.store().read(sector, &mut buf[off..off + bytes]);
            off += bytes;
        }
        Ok(Bytes::from(buf))
    }

    /// Whether the block containing `sector_in_partition` has lost its
    /// freshest copy to a hard error (a timed read of it would fail
    /// with [`DriverError::DataLoss`]). Out-of-range addresses report
    /// `false`.
    pub fn block_is_lost(&self, partition: usize, sector_in_partition: u64) -> bool {
        let spb = u64::from(self.sectors_per_block());
        match self.to_virtual(partition, sector_in_partition, 1) {
            Ok(vsector) => {
                let home = self.label.virtual_to_physical(vsector - (vsector % spb));
                self.lost.contains(&home)
            }
            Err(_) => false,
        }
    }

    /// Pick and dispatch the next queued request.
    ///
    /// Only requests that have already arrived (`arrived <= now`) are
    /// candidates; callers that enqueue future-dated requests in a batch
    /// (tests, trace replay) would otherwise let the scheduler dispatch a
    /// request before it exists. If every queued request is still in the
    /// future, the earliest one is dispatched *at its arrival time* —
    /// the disk was idle until then.
    fn dispatch_next(&mut self, now: SimTime) {
        debug_assert!(self.active.is_none());
        if self.queue.is_empty() {
            return;
        }
        // The driver's address-based head position: the cylinder of the
        // last dispatched target (what a real driver uses for scheduling).
        let head = self
            .last_dispatch_cyl
            .unwrap_or_else(|| self.disk.head_cylinder());
        // Reused scratch: no per-dispatch allocation, no request clones —
        // the scheduler reads the arrived subset through an index view.
        let mut eligible = std::mem::take(&mut self.eligible_scratch);
        eligible.clear();
        eligible.extend(
            self.queue
                .iter()
                .enumerate()
                .filter(|(_, q)| q.arrived <= now)
                .map(|(i, _)| i),
        );
        let (idx, now) = if eligible.is_empty() {
            // Idle until the earliest arrival; service starts then.
            let idx = self
                .queue
                .iter()
                .enumerate()
                .min_by_key(|(i, q)| (q.arrived, *i))
                .map(|(i, _)| i)
                .expect("non-empty queue");
            let at = self.queue[idx].arrived;
            (idx, at)
        } else {
            (self.scheduler.pick(&self.queue, &eligible, head), now)
        };
        self.eligible_scratch = eligible;
        let q = self.queue.remove(idx);
        let queue_depth = self.queue.len() as u32;

        // Address-based scheduled seek distance (what the paper's monitor
        // records; it cannot see track-buffer hits).
        let seek_cylinders = q.target_cylinder.abs_diff(head);
        let addr_dist = u64::from(seek_cylinders);
        let in_reserved = self
            .label
            .reserved
            .map(|r| r.contains_cylinder(q.target_cylinder))
            .unwrap_or(false);
        self.perf
            .record_dispatch(q.req.dir, addr_dist, now - q.arrived, in_reserved);
        self.last_dispatch_cyl = Some(q.target_cylinder);

        // Reads of a lost block (dirty reserved copy destroyed by a hard
        // error) must fail loudly, never fall back to the stale home copy.
        let spb = u64::from(self.sectors_per_block());
        let vsector =
            self.label.partitions[q.req.partition].start_sector + q.req.sector_in_partition;
        let home_phys = self.label.virtual_to_physical(vsector - (vsector % spb));
        if q.req.dir.is_read() && self.lost.contains(&home_phys) {
            self.perf.record_failure(q.req.dir);
            self.active = Some(Active {
                queued: q,
                dispatched: now,
                breakdown: zero_breakdown(),
                completes: now,
                error: Some(DriverError::DataLoss),
                seek_cylinders,
                queue_depth,
                in_reserved,
                retries: 0,
            });
            return;
        }

        // Service each segment back to back, applying each write to the
        // store only once its transfer succeeds; the combined breakdown
        // keeps a single overhead charge. `wasted` accumulates time lost
        // to failed attempts and retry backoffs, so on a fault-free run
        // every segment starts at `now + acc.total()` exactly as before.
        // A segment failure (after the bounded retries inside `serviced`)
        // fails the whole request but still charges the time it took.
        self.retry_scratch = 0;
        // Seeded writes never materialize here: the store records the
        // `(seed, word offset)` marker per sector and synthesizes bytes
        // only if something later reads them. The stream is counter-based,
        // so a segment at byte offset `off` starts at word `off / 8` and a
        // torn-write prefix is just a shorter marker run.
        let seeded: Option<u64> = match q.req.payload_seed {
            Some(seed) if !q.req.dir.is_read() => Some(seed),
            _ => None,
        };
        let mut wasted = SimDuration::ZERO;
        let mut acc: Option<ServiceBreakdown> = None;
        let mut error = None;
        let mut off = 0usize;
        for &(sector, n) in q.segments.iter() {
            let bytes = n as usize * SECTOR_SIZE;
            let done = acc.map_or(SimDuration::ZERO, |a: ServiceBreakdown| a.total());
            let (elapsed, res) = self.serviced(q.req.dir, sector, n, now + wasted + done);
            match res {
                Ok(b) => {
                    wasted += elapsed - b.total();
                    if !q.req.dir.is_read() {
                        match seeded {
                            Some(seed) => {
                                self.disk.store_mut().write_seeded(
                                    sector,
                                    n,
                                    seed,
                                    (off / 8) as u64,
                                );
                            }
                            None => {
                                self.disk
                                    .store_mut()
                                    .write(sector, &q.req.data[off..off + bytes]);
                            }
                        }
                    }
                    acc = Some(match acc {
                        None => b,
                        Some(mut a) => {
                            a.seek += b.seek;
                            a.rotation += b.rotation;
                            a.transfer += b.transfer;
                            a.seek_distance += b.seek_distance;
                            a
                        }
                    });
                }
                Err(e) => {
                    wasted += elapsed;
                    // A torn write persisted a prefix of this segment.
                    if e.fault == DiskFault::TornWrite && e.persisted > 0 {
                        match seeded {
                            Some(seed) => {
                                self.disk.store_mut().write_seeded(
                                    sector,
                                    e.persisted,
                                    seed,
                                    (off / 8) as u64,
                                );
                            }
                            None => {
                                let torn = e.persisted as usize * SECTOR_SIZE;
                                self.disk
                                    .store_mut()
                                    .write(sector, &q.req.data[off..off + torn]);
                            }
                        }
                    }
                    self.perf.record_failure(q.req.dir);
                    error = Some(DriverError::from(e));
                    break;
                }
            }
            off += bytes;
        }
        // A successful full-block write refreshes a lost block.
        if error.is_none()
            && !q.req.dir.is_read()
            && vsector.is_multiple_of(spb)
            && u64::from(q.req.n_sectors) == spb
        {
            self.lost.remove(&home_phys);
        }
        let breakdown = acc.unwrap_or_else(zero_breakdown);
        let completes = now + wasted + breakdown.total();
        self.active = Some(Active {
            queued: q,
            dispatched: now,
            breakdown,
            completes,
            error,
            seek_cylinders,
            queue_depth,
            in_reserved,
            retries: self.retry_scratch,
        });
    }

    /// Control whether completions of reads carry the data read from the
    /// store (the default). Simulation loops that only consume timing
    /// turn this off; integrity-checking callers leave it on.
    pub fn set_deliver_read_data(&mut self, on: bool) {
        self.deliver_read_data = on;
    }

    /// Mirror the buffered per-request counters into the registry in a
    /// single pass (see `PendingDriverObs`). Runs automatically at the
    /// `ReadStats` ioctl; callers that snapshot the registry without
    /// reading stats can invoke it directly.
    pub fn flush_obs(&mut self) {
        let p = std::mem::take(&mut self.obs_pending);
        if p.submitted == 0 && p.completed == 0 && p.failed == 0 {
            return;
        }
        with_registry(|r| {
            r.inc(self.obs.submitted, p.submitted);
            r.inc(self.obs.completed, p.completed);
            r.inc(self.obs.failed, p.failed);
        });
    }

    /// When the in-flight request will complete, if any. If the device is
    /// idle but future-dated requests are queued (batch submission), this
    /// is the time the earliest of them starts and completes — calling
    /// [`AdaptiveDriver::complete_next`] at that time dispatches and
    /// completes it.
    pub fn next_completion(&mut self) -> Option<SimTime> {
        if self.active.is_none() && !self.queue.is_empty() {
            let at = self
                .queue
                .iter()
                .map(|q| q.arrived)
                .min()
                .expect("non-empty");
            self.dispatch_next(at);
        }
        self.active.as_ref().map(|a| a.completes)
    }

    /// Complete the in-flight request (the interrupt routine). `now` must
    /// equal [`AdaptiveDriver::next_completion`]. Dispatches the next
    /// queued request before returning.
    ///
    /// # Panics
    /// Panics if there is no active request or `now` does not match its
    /// completion time.
    pub fn complete_next(&mut self, now: SimTime) -> Completion {
        let a = self.active.take().expect("no active request");
        assert_eq!(a.completes, now, "completion at the wrong time");
        let data = if a.queued.req.dir.is_read() && a.error.is_none() && self.deliver_read_data {
            let mut buf = vec![0u8; a.queued.req.n_sectors as usize * SECTOR_SIZE];
            let mut off = 0usize;
            for &(sector, n) in a.queued.segments.iter() {
                let bytes = n as usize * SECTOR_SIZE;
                self.disk.store().read(sector, &mut buf[off..off + bytes]);
                off += bytes;
            }
            Bytes::from(buf)
        } else {
            Bytes::new()
        };
        if a.error.is_none() {
            // Failed requests are counted by the fault counters instead;
            // keeping them out of the service-time statistics means the
            // paper's timing figures still describe successful transfers.
            self.perf.record_completion(
                a.queued.req.dir,
                now - a.dispatched,
                a.breakdown.rotation,
                a.breakdown.transfer + a.breakdown.overhead,
            );
        }
        if a.error.is_none() {
            self.obs_pending.completed += 1;
        } else {
            self.obs_pending.failed += 1;
        }
        record_with(|| {
            let spb = u64::from(self.sectors_per_block());
            let vsector = self.label.partitions[a.queued.req.partition].start_sector
                + a.queued.req.sector_in_partition;
            ObsEvent::Request(RequestSpan {
                id: a.queued.id.0,
                read: a.queued.req.dir.is_read(),
                block: vsector / spb,
                n_sectors: a.queued.req.n_sectors,
                arrived_us: a.queued.arrived.as_micros(),
                dispatched_us: a.dispatched.as_micros(),
                completed_us: now.as_micros(),
                seek_us: a.breakdown.seek.as_micros(),
                rotation_us: a.breakdown.rotation.as_micros(),
                transfer_us: (a.breakdown.transfer + a.breakdown.overhead).as_micros(),
                seek_cylinders: a.seek_cylinders,
                queue_depth: a.queue_depth,
                in_reserved: a.in_reserved,
                retries: a.retries,
                error: a.error.as_ref().map(|e| e.to_string()),
                disk: self.disk_index,
            })
        });
        let completion = Completion {
            id: a.queued.id,
            dir: a.queued.req.dir,
            data,
            arrived: a.queued.arrived,
            dispatched: a.dispatched,
            completed: now,
            breakdown: a.breakdown,
            error: a.error,
        };
        self.dispatch_next(now);
        completion
    }

    /// Run the device until idle, returning all completions (useful for
    /// synchronous callers like mkfs and tests).
    pub fn drain(&mut self) -> Vec<Completion> {
        let mut out = Vec::new();
        while let Some(t) = self.next_completion() {
            out.push(self.complete_next(t));
        }
        out
    }

    /// The ioctl entry point (§4.1.3–4.1.5). Block-movement calls require
    /// an idle device ("requests for a block that is being moved are
    /// delayed" — we model the daily arranger running in a quiet period).
    pub fn ioctl(&mut self, op: Ioctl, now: SimTime) -> Result<IoctlReply, DriverError> {
        #[cfg(feature = "sanitize")]
        let is_move = matches!(
            op,
            Ioctl::BCopy { .. }
                | Ioctl::Clean
                | Ioctl::BEvict { .. }
                | Ioctl::ShuffleCylinders { .. }
        );
        let reply = match op {
            Ioctl::BCopy { block, slot } => {
                let res = self.bcopy(block, slot, now);
                self.note_move(MoveKind::BCopy, now, block, u64::from(slot), &res);
                res
            }
            Ioctl::Clean => {
                let res = self.clean(now);
                self.note_move(MoveKind::Clean, now, 0, 0, &res);
                res
            }
            Ioctl::BEvict { orig } => {
                let slot = self
                    .table
                    .lookup(orig)
                    .map(|e| u64::from(e.slot))
                    .unwrap_or(0);
                let block = orig / u64::from(self.sectors_per_block());
                let res = self.bevict(orig, now);
                self.note_move(MoveKind::BEvict, now, block, slot, &res);
                res
            }
            Ioctl::ShuffleCylinders { map } => {
                let res = self.shuffle_cylinders(map, now);
                self.note_move(MoveKind::Shuffle, now, 0, 0, &res);
                res
            }
            Ioctl::ReadRequestTable => {
                let (records, dropped) = self.req_mon.read_and_clear();
                Ok(IoctlReply::RequestTable { records, dropped })
            }
            Ioctl::ReadStats => {
                self.flush_obs();
                Ok(IoctlReply::Stats(Box::new(self.perf.read_and_clear())))
            }
            Ioctl::PeekStats => Ok(IoctlReply::Stats(Box::new(self.perf.snapshot()))),
        };
        // Sanitize builds re-verify the redirect map after every block
        // movement: any rollback or error path that left the forward and
        // reverse maps out of sync aborts here, not wherever the stale
        // entry is eventually dereferenced.
        #[cfg(feature = "sanitize")]
        if is_move {
            self.table.assert_bijection();
        }
        reply
    }

    /// Publish one block-movement outcome to the trace and the registry.
    /// `block`/`slot` identify what moved (zero for whole-area calls).
    fn note_move(
        &self,
        kind: MoveKind,
        now: SimTime,
        block: u64,
        slot: u64,
        res: &Result<IoctlReply, DriverError>,
    ) {
        let (ops, busy_us, ok) = match res {
            Ok(IoctlReply::Moved { ops, busy }) => (*ops, busy.as_micros(), true),
            _ => (0, 0, false),
        };
        with_registry(|r| {
            r.inc(self.obs.move_ops, u64::from(ops));
            r.inc(self.obs.move_busy_us, busy_us);
        });
        record_with(|| ObsEvent::Move {
            kind,
            at_us: now.as_micros(),
            block,
            slot,
            ops,
            busy_us,
            ok,
        });
    }

    /// `DKIOCBCOPY` (§4.1.3): copy a block into the reserved area —
    /// "three I/O operations": read the block, write the copy, write the
    /// block table.
    fn bcopy(&mut self, block: u64, slot: u32, now: SimTime) -> Result<IoctlReply, DriverError> {
        if !self.is_idle() {
            return Err(DriverError::Busy);
        }
        if self.degraded {
            return Err(DriverError::Degraded);
        }
        let layout = *self.layout.as_ref().ok_or(DriverError::NotRearranged)?;
        if slot >= layout.n_slots {
            return Err(DriverError::BadSlot);
        }
        if self.quarantined.contains(&slot) {
            return Err(DriverError::SlotQuarantined);
        }
        let spb = u64::from(self.sectors_per_block());
        let vsector = block * spb;
        if vsector + spb > self.label.virtual_geometry().total_sectors() {
            return Err(DriverError::OutOfPartition);
        }
        let orig_phys = self.label.virtual_to_physical(vsector);
        if let Some(entry) = self.table.lookup(orig_phys) {
            // Already resident. Re-copying from the original home would
            // clobber a dirty reserved copy with stale data; treat the
            // call as a no-op when the slot matches, an error otherwise.
            return if entry.slot == slot {
                Ok(IoctlReply::Moved {
                    ops: 0,
                    busy: SimDuration::ZERO,
                })
            } else {
                Err(DriverError::SlotOccupied)
            };
        }
        if self.table.occupant(slot).is_some() {
            return Err(DriverError::SlotOccupied);
        }
        let dst = layout.slot_sector(slot);
        let n = self.sectors_per_block();

        let mut busy = SimDuration::ZERO;
        // 1: read the block from its original position.
        let (elapsed, res) = self.serviced(IoDir::Read, orig_phys, n, now + busy);
        busy += elapsed;
        res?;
        // 2: write it into the reserved slot. A hard media error here
        // blacklists the slot; the home copy is untouched either way.
        let (elapsed, res) = self.serviced(IoDir::Write, dst, n, now + busy);
        busy += elapsed;
        if let Err(e) = res {
            if e.fault == DiskFault::Media {
                self.quarantined.insert(slot);
                self.perf.record_quarantine();
            }
            return Err(e.into());
        }
        self.disk.store_mut().copy(orig_phys, dst, n);
        // Table entry, then 3: force the table to disk. Data before
        // metadata: the entry goes in only after the copy is durable, and
        // comes back out if the table itself cannot be persisted.
        self.table.insert(orig_phys, slot);
        match self.write_table(&layout, now + busy) {
            Ok(d) => busy += d,
            Err(e) => {
                self.table.remove(orig_phys);
                return Err(e);
            }
        }
        Ok(IoctlReply::Moved { ops: 3, busy })
    }

    /// `DKIOCCLEAN` (§4.1.3): empty the reserved area. Dirty blocks cost
    /// a read plus a write home; clean blocks just leave. "After each
    /// block is moved out, the block table is updated and the updated
    /// version is written to the disk."
    fn clean(&mut self, now: SimTime) -> Result<IoctlReply, DriverError> {
        if !self.is_idle() {
            return Err(DriverError::Busy);
        }
        if self.degraded {
            return Err(DriverError::Degraded);
        }
        let layout = *self.layout.as_ref().ok_or(DriverError::NotRearranged)?;
        let n = self.sectors_per_block();
        let mut busy = SimDuration::ZERO;
        let mut ops = 0u32;
        for (orig_phys, entry) in self.table.entries_by_slot() {
            match self.clean_one(&layout, orig_phys, entry, n, now + busy) {
                Ok((d, o)) => {
                    busy += d;
                    ops += o;
                }
                // A power cut (or a failed table persist) aborts the
                // whole pass: per-block commit order keeps everything
                // already moved consistent. Skippable per-block failures
                // were already absorbed by `clean_one`.
                Err((d, e)) => {
                    busy += d;
                    return Err(e);
                }
            }
        }
        Ok(IoctlReply::Moved { ops, busy })
    }

    /// Move one block out of the reserved area for [`Self::clean`] /
    /// [`Self::bevict`]: copy dirty data home, then commit the entry's
    /// removal (memory + on-disk table). The reserved copy is never
    /// destroyed, so every intermediate state recovers cleanly.
    ///
    /// Per-block failure policy:
    /// * dirty slot unreadable (hard) → quarantine the slot, mark the
    ///   block lost, and commit the removal — continuing costs nothing
    ///   further and the loss is surfaced via [`DriverError::DataLoss`]
    ///   on subsequent reads;
    /// * home write fails → keep the entry (the slot copy remains the
    ///   canonical data) and skip the block;
    /// * table persist fails → roll the entry back in memory and abort.
    ///
    /// Returns `(busy, ops)` on a handled outcome, or the accumulated
    /// busy time plus the error when the caller must abort.
    fn clean_one(
        &mut self,
        layout: &ReservedLayout,
        orig_phys: u64,
        entry: crate::blocktable::Entry,
        n: u32,
        now: SimTime,
    ) -> Result<(SimDuration, u32), (SimDuration, DriverError)> {
        let mut busy = SimDuration::ZERO;
        let mut ops = 0u32;
        let mut lost = false;
        if entry.dirty {
            let src = layout.slot_sector(entry.slot);
            let (elapsed, res) = self.serviced(IoDir::Read, src, n, now + busy);
            busy += elapsed;
            match res {
                Ok(_) => {
                    let (elapsed, res) = self.serviced(IoDir::Write, orig_phys, n, now + busy);
                    busy += elapsed;
                    match res {
                        Ok(_) => {
                            self.disk.store_mut().copy(src, orig_phys, n);
                            ops += 2;
                        }
                        Err(e) if e.fault == DiskFault::PowerLoss => {
                            return Err((busy, e.into()));
                        }
                        Err(e) => {
                            // Torn home writes persisted a prefix of the
                            // slot data; harmless while the entry remains.
                            if e.fault == DiskFault::TornWrite && e.persisted > 0 {
                                self.disk.store_mut().copy(src, orig_phys, e.persisted);
                            }
                            // Keep the entry: the slot copy stays canonical.
                            return Ok((busy, ops));
                        }
                    }
                }
                Err(e) if e.fault == DiskFault::PowerLoss => {
                    return Err((busy, e.into()));
                }
                Err(e) => {
                    // The dirty reserved copy is gone for good: quarantine
                    // the slot and surface the loss on future reads rather
                    // than silently reviving the stale home copy.
                    let _ = e;
                    self.quarantined.insert(entry.slot);
                    self.perf.record_quarantine();
                    lost = true;
                }
            }
        }
        self.table.remove(orig_phys);
        match self.write_table(layout, now + busy) {
            Ok(d) => {
                busy += d;
                ops += 1;
            }
            Err(e) => {
                // Roll back to match the on-disk table.
                self.table.insert(orig_phys, entry.slot);
                if entry.dirty {
                    self.table.mark_dirty(orig_phys);
                }
                return Err((busy, e));
            }
        }
        if lost {
            self.lost.insert(orig_phys);
            self.perf.record_lost_block();
        }
        Ok((busy, ops))
    }

    /// `DKIOCBEVICT` (extension): move one block home. Dirty blocks cost
    /// a read plus a write; clean blocks just leave the table. The table
    /// is persisted afterwards, like `DKIOCCLEAN` does per block.
    ///
    /// Shares [`Self::clean_one`]'s failure policy; a skipped home write
    /// reports `Moved { ops: 0, .. }` with the entry still resident, so
    /// callers can retry later without having lost anything.
    fn bevict(&mut self, orig: u64, now: SimTime) -> Result<IoctlReply, DriverError> {
        if !self.is_idle() {
            return Err(DriverError::Busy);
        }
        if self.degraded {
            return Err(DriverError::Degraded);
        }
        let layout = *self.layout.as_ref().ok_or(DriverError::NotRearranged)?;
        let Some(entry) = self.table.lookup(orig) else {
            return Err(DriverError::NotResident);
        };
        let n = self.sectors_per_block();
        match self.clean_one(&layout, orig, entry, n, now) {
            Ok((busy, ops)) => Ok(IoctlReply::Moved { ops, busy }),
            Err((_, e)) => Err(e),
        }
    }

    /// Install a cylinder permutation (see [`Ioctl::ShuffleCylinders`]).
    /// Cylinders whose physical home changes are read into host memory
    /// and rewritten at their new homes — one full-cylinder read plus one
    /// full-cylinder write each, the movement cost of the Vongsathorn &
    /// Carson shuffler.
    fn shuffle_cylinders(
        &mut self,
        map: CylinderMap,
        now: SimTime,
    ) -> Result<IoctlReply, DriverError> {
        if !self.is_idle() {
            return Err(DriverError::Busy);
        }
        if self.layout.is_some() {
            return Err(DriverError::IncompatibleMode);
        }
        let g = self.label.physical;
        if map.len() != g.cylinders {
            return Err(DriverError::BadCylinderMap);
        }
        if map.physical(0) != 0 {
            // Cylinder 0 holds the disk label; a shuffler must leave it in
            // place or the disk becomes unbootable.
            return Err(DriverError::BadCylinderMap);
        }
        let current = self
            .cyl_map
            .clone()
            .unwrap_or_else(|| CylinderMap::identity(g.cylinders));
        let moved = current.moved_cylinders(&map);
        let spc = g.sectors_per_cylinder() as u32;
        let mut busy = SimDuration::ZERO;
        let mut ops = 0u32;
        // Read every moving cylinder from its current home into host
        // memory...
        let mut buffers: Vec<(u32, Vec<u8>)> = Vec::with_capacity(moved.len());
        for &v in &moved {
            let src = g.cylinder_start(current.physical(v));
            let mut buf = vec![0u8; spc as usize * SECTOR_SIZE];
            self.disk.store().read(src, &mut buf);
            busy += self.disk.service(IoDir::Read, src, spc, now + busy).total();
            ops += 1;
            buffers.push((v, buf));
        }
        // ...then write each to its new home.
        for (v, buf) in buffers {
            let dst = g.cylinder_start(map.physical(v));
            self.disk.store_mut().write(dst, &buf);
            busy += self
                .disk
                .service(IoDir::Write, dst, spc, now + busy)
                .total();
            ops += 1;
        }
        self.cyl_map = Some(map);
        Ok(IoctlReply::Moved { ops, busy })
    }

    /// Persist the block table into the table region (dual-copy format),
    /// returning the time the write took.
    ///
    /// On failure only the persisted prefix of the new image reaches the
    /// store (torn writes), the failure is counted, and the caller must
    /// roll back any in-memory table change it has not yet committed so
    /// memory keeps matching the on-disk table.
    fn write_table(
        &mut self,
        layout: &ReservedLayout,
        now: SimTime,
    ) -> Result<SimDuration, DriverError> {
        let bytes = self
            .table
            .encode_region(layout)
            .expect("table sized by config.table_max_entries");
        let (elapsed, res) = self.serviced(
            IoDir::Write,
            layout.start_sector,
            layout.table_sectors as u32,
            now,
        );
        match res {
            Ok(_) => {
                self.disk.store_mut().write(layout.start_sector, &bytes);
                Ok(elapsed)
            }
            Err(e) => {
                if e.fault == DiskFault::TornWrite && e.persisted > 0 {
                    let end = (e.persisted as usize * SECTOR_SIZE).min(bytes.len());
                    self.disk
                        .store_mut()
                        .write(layout.start_sector, &bytes[..end]);
                }
                self.perf.record_table_write_failure();
                Err(e.into())
            }
        }
    }

    /// Issue one disk operation through the fault layer, retrying
    /// transient and torn failures with a short exponential backoff in
    /// simulated time. Returns the total elapsed time alongside the
    /// final outcome; on success the breakdown describes the successful
    /// attempt only, so `elapsed - breakdown.total()` is retry overhead.
    fn serviced(
        &mut self,
        dir: IoDir,
        sector: u64,
        n_sectors: u32,
        start: SimTime,
    ) -> (SimDuration, Result<ServiceBreakdown, DiskError>) {
        const MAX_ATTEMPTS: u32 = 4;
        let mut elapsed = SimDuration::ZERO;
        for attempt in 1..=MAX_ATTEMPTS {
            match self
                .disk
                .try_service(dir, sector, n_sectors, start + elapsed)
            {
                Ok(b) => {
                    elapsed += b.total();
                    return (elapsed, Ok(b));
                }
                Err(e) => {
                    elapsed += e.elapsed;
                    if e.fault.is_retryable() && attempt < MAX_ATTEMPTS {
                        self.perf.record_retry();
                        self.retry_scratch += 1;
                        elapsed += SimDuration::from_millis(1 << (attempt - 1));
                    } else {
                        return (elapsed, Err(e));
                    }
                }
            }
        }
        unreachable!("loop returns on success or on the final attempt")
    }

    /// Detach without any cleanup, modelling a crash: returns the raw
    /// disk so a new driver can re-attach and exercise recovery.
    pub fn crash(self) -> Disk {
        self.disk
    }
}

/// An all-zero [`ServiceBreakdown`] for requests that never reached the
/// device (e.g. reads failed fast against the lost-block set).
fn zero_breakdown() -> ServiceBreakdown {
    ServiceBreakdown {
        overhead: SimDuration::ZERO,
        seek: SimDuration::ZERO,
        rotation: SimDuration::ZERO,
        transfer: SimDuration::ZERO,
        seek_distance: 0,
        buffer_hit: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_disk::models;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn tiny_config() -> DriverConfig {
        DriverConfig {
            block_size: 4096, // 8 sectors
            scheduler: SchedulerKind::Scan,
            monitor_capacity: 1000,
            table_max_entries: 64,
            ..DriverConfig::default()
        }
    }

    fn tiny_rearranged_driver() -> AdaptiveDriver {
        let model = models::tiny_test_disk();
        let label = DiskLabel::rearranged_aligned(model.geometry, 10, 8);
        let mut disk = Disk::new(model);
        AdaptiveDriver::format(&mut disk, &label, &tiny_config());
        AdaptiveDriver::attach(disk, tiny_config()).unwrap()
    }

    fn tiny_plain_driver() -> AdaptiveDriver {
        let model = models::tiny_test_disk();
        let label = DiskLabel::whole_disk(model.geometry);
        let mut disk = Disk::new(model);
        AdaptiveDriver::format(&mut disk, &label, &tiny_config());
        AdaptiveDriver::attach(disk, tiny_config()).unwrap()
    }

    #[test]
    fn attach_reads_label() {
        let d = tiny_rearranged_driver();
        assert!(d.label().is_rearranged());
        assert!(d.layout().is_some());
        assert!(d.block_table().is_empty());
        assert_eq!(d.sectors_per_block(), 8);
    }

    #[test]
    fn attach_rejects_unformatted_disk() {
        let disk = Disk::new(models::tiny_test_disk());
        let err = AdaptiveDriver::attach(disk, tiny_config()).unwrap_err();
        assert_eq!(err, DriverError::Label(LabelError::BadMagic));
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut d = tiny_plain_driver();
        let payload = Bytes::from(vec![0x5A; 4096]);
        d.submit(IoRequest::write(0, 64, 8, payload.clone()), t(0))
            .unwrap();
        d.drain();
        let id = d.submit(IoRequest::read(0, 64, 8), t(10_000_000)).unwrap();
        let done = d.drain();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, id);
        assert_eq!(done[0].data, payload);
    }

    #[test]
    fn submit_validates_bounds() {
        let mut d = tiny_plain_driver();
        assert_eq!(
            d.submit(IoRequest::read(7, 0, 1), t(0)).unwrap_err(),
            DriverError::BadPartition
        );
        let total = d.label().virtual_geometry().total_sectors();
        assert_eq!(
            d.submit(IoRequest::read(0, total, 1), t(0)).unwrap_err(),
            DriverError::OutOfPartition
        );
        // Crossing a block boundary (block = 8 sectors).
        assert_eq!(
            d.submit(IoRequest::read(0, 6, 4), t(0)).unwrap_err(),
            DriverError::CrossesBlockBoundary
        );
    }

    #[test]
    fn completions_progress_in_time() {
        let mut d = tiny_plain_driver();
        for i in 0..5u64 {
            d.submit(IoRequest::read(0, i * 8, 8), t(0)).unwrap();
        }
        let done = d.drain();
        assert_eq!(done.len(), 5);
        for w in done.windows(2) {
            assert!(w[1].completed > w[0].completed);
        }
        // First request dispatched immediately: zero queueing.
        assert_eq!(done[0].queueing(), SimDuration::ZERO);
        // Later ones queued.
        assert!(done[4].queueing() > SimDuration::ZERO);
    }

    #[test]
    fn bcopy_redirects_requests() {
        let mut d = tiny_rearranged_driver();
        // Write recognizable data to virtual block 3 (sectors 24..32).
        let payload = Bytes::from(vec![0x77; 4096]);
        d.submit(IoRequest::write(0, 24, 8, payload.clone()), t(0))
            .unwrap();
        d.drain();

        let reply = d
            .ioctl(Ioctl::BCopy { block: 3, slot: 0 }, t(1_000_000))
            .unwrap();
        match reply {
            IoctlReply::Moved { ops, busy } => {
                assert_eq!(ops, 3);
                assert!(busy > SimDuration::ZERO);
            }
            other => panic!("unexpected reply {other:?}"),
        }
        assert_eq!(d.block_table().len(), 1);

        // A read of block 3 must land in the reserved area and return the
        // same data.
        let layout = *d.layout().unwrap();
        d.submit(IoRequest::read(0, 24, 8), t(2_000_000)).unwrap();
        let done = d.drain();
        assert_eq!(done[0].data, payload);
        let slot_cyl = d.label().physical.cylinder_of(layout.slot_sector(0));
        // The slot lives inside the reserved region.
        assert!(d
            .label()
            .reserved
            .map(|r| r.contains_cylinder(slot_cyl))
            .unwrap_or(false));
    }

    #[test]
    fn write_to_rearranged_block_sets_dirty_and_clean_copies_home() {
        let mut d = tiny_rearranged_driver();
        let before = Bytes::from(vec![0x11; 4096]);
        let after = Bytes::from(vec![0x22; 4096]);
        d.submit(IoRequest::write(0, 40, 8, before), t(0)).unwrap();
        d.drain();
        d.ioctl(Ioctl::BCopy { block: 5, slot: 2 }, t(1_000_000))
            .unwrap();

        // Update the block through the driver: goes to the reserved copy.
        d.submit(IoRequest::write(0, 40, 8, after.clone()), t(2_000_000))
            .unwrap();
        d.drain();
        let spb = u64::from(d.sectors_per_block());
        let orig_phys = d.label().virtual_to_physical(40 - (40 % spb));
        assert!(d.block_table().lookup(orig_phys).unwrap().dirty);

        // Clean: the updated data must come home.
        d.ioctl(Ioctl::Clean, t(3_000_000)).unwrap();
        assert!(d.block_table().is_empty());
        d.submit(IoRequest::read(0, 40, 8), t(4_000_000)).unwrap();
        let done = d.drain();
        assert_eq!(done[0].data, after);
    }

    #[test]
    fn clean_costs_less_for_clean_blocks() {
        let mut d = tiny_rearranged_driver();
        d.ioctl(Ioctl::BCopy { block: 1, slot: 0 }, t(0)).unwrap();
        // Never written: clean-out should only update the table.
        let reply = d.ioctl(Ioctl::Clean, t(1_000_000)).unwrap();
        match reply {
            IoctlReply::Moved { ops, .. } => assert_eq!(ops, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bcopy_busy_when_requests_outstanding() {
        let mut d = tiny_rearranged_driver();
        d.submit(IoRequest::read(0, 0, 8), t(0)).unwrap();
        let err = d
            .ioctl(Ioctl::BCopy { block: 1, slot: 0 }, t(1))
            .unwrap_err();
        assert_eq!(err, DriverError::Busy);
    }

    #[test]
    fn bcopy_rejects_bad_slot_and_occupied_slot() {
        let mut d = tiny_rearranged_driver();
        let n_slots = d.layout().unwrap().n_slots;
        assert_eq!(
            d.ioctl(
                Ioctl::BCopy {
                    block: 1,
                    slot: n_slots
                },
                t(0)
            )
            .unwrap_err(),
            DriverError::BadSlot
        );
        d.ioctl(Ioctl::BCopy { block: 1, slot: 0 }, t(0)).unwrap();
        assert_eq!(
            d.ioctl(Ioctl::BCopy { block: 2, slot: 0 }, t(1_000_000))
                .unwrap_err(),
            DriverError::SlotOccupied
        );
    }

    #[test]
    fn plain_disk_rejects_block_movement() {
        let mut d = tiny_plain_driver();
        assert_eq!(
            d.ioctl(Ioctl::BCopy { block: 1, slot: 0 }, t(0))
                .unwrap_err(),
            DriverError::NotRearranged
        );
        assert_eq!(
            d.ioctl(Ioctl::Clean, t(0)).unwrap_err(),
            DriverError::NotRearranged
        );
    }

    #[test]
    fn request_monitor_via_ioctl() {
        let mut d = tiny_plain_driver();
        d.submit(IoRequest::read(0, 16, 8), t(0)).unwrap();
        d.submit(IoRequest::read(0, 16, 8), t(1000)).unwrap();
        d.drain();
        match d.ioctl(Ioctl::ReadRequestTable, t(1_000_000)).unwrap() {
            IoctlReply::RequestTable { records, dropped } => {
                assert_eq!(records.len(), 2);
                assert_eq!(dropped, 0);
                assert_eq!(records[0].block, 2); // sector 16 / 8 per block
            }
            other => panic!("unexpected {other:?}"),
        }
        // Cleared after read.
        match d.ioctl(Ioctl::ReadRequestTable, t(2_000_000)).unwrap() {
            IoctlReply::RequestTable { records, .. } => assert!(records.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn perf_stats_via_ioctl() {
        let mut d = tiny_plain_driver();
        for i in 0..10u64 {
            d.submit(IoRequest::read(0, (i % 4) * 8, 8), t(i * 50_000))
                .unwrap();
            d.drain();
        }
        match d.ioctl(Ioctl::ReadStats, t(10_000_000)).unwrap() {
            IoctlReply::Stats(s) => {
                assert_eq!(s.reads.service.count(), 10);
                assert_eq!(s.writes.service.count(), 0);
                assert!(s.reads.service.mean_ms() > 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn crash_recovery_preserves_dirty_data() {
        // Write data, rearrange the block, update it (dirty), then crash
        // WITHOUT cleaning. On re-attach all entries are marked dirty, so
        // a clean must copy the updated data home.
        let mut d = tiny_rearranged_driver();
        let v2 = Bytes::from(vec![0xEE; 4096]);
        d.submit(IoRequest::write_zeroes(0, 16, 8), t(0)).unwrap();
        d.drain();
        d.ioctl(Ioctl::BCopy { block: 2, slot: 1 }, t(1_000_000))
            .unwrap();
        d.submit(IoRequest::write(0, 16, 8, v2.clone()), t(2_000_000))
            .unwrap();
        d.drain();

        let disk = d.crash();
        let mut d2 = AdaptiveDriver::attach(disk, tiny_config()).unwrap();
        assert_eq!(d2.block_table().len(), 1);
        assert!(d2.block_table().iter().all(|(_, e)| e.dirty));
        d2.ioctl(Ioctl::Clean, t(10_000_000)).unwrap();
        d2.submit(IoRequest::read(0, 16, 8), t(11_000_000)).unwrap();
        let done = d2.drain();
        assert_eq!(done[0].data, v2);
    }

    #[test]
    fn raw_interface_splits_large_requests() {
        let mut d = tiny_plain_driver();
        // 20 sectors starting at sector 5 with 8-sector blocks:
        // [5..8) [8..16) [16..24) [24..25) -> 4 subrequests.
        let ids = d.submit_raw(IoDir::Read, 0, 5, 20, t(0)).unwrap();
        assert_eq!(ids.len(), 4);
        let done = d.drain();
        assert_eq!(done.len(), 4);
    }

    #[test]
    fn peek_stats_does_not_clear() {
        let mut d = tiny_plain_driver();
        d.submit(IoRequest::read(0, 0, 8), t(0)).unwrap();
        d.drain();
        match d.ioctl(Ioctl::PeekStats, t(1_000_000)).unwrap() {
            IoctlReply::Stats(s) => assert_eq!(s.reads.service.count(), 1),
            other => panic!("unexpected {other:?}"),
        }
        // Still there after the peek.
        match d.ioctl(Ioctl::PeekStats, t(2_000_000)).unwrap() {
            IoctlReply::Stats(s) => assert_eq!(s.reads.service.count(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn arrival_distance_uses_pre_remap_addresses() {
        // The FCFS baseline must reflect original positions even for
        // remapped blocks (Table 3's "FCFS, no rearrangement" column).
        let mut d = tiny_rearranged_driver();
        // Alternate between two far-apart blocks.
        let far = (d.label().virtual_geometry().total_sectors() / 8) - 1;
        d.ioctl(Ioctl::BCopy { block: 0, slot: 0 }, t(0)).unwrap();
        d.ioctl(
            Ioctl::BCopy {
                block: far,
                slot: 1,
            },
            t(50_000_000),
        )
        .unwrap();
        let mut clk = 100_000_000u64;
        for _ in 0..10 {
            d.submit(IoRequest::read(0, 0, 8), t(clk)).unwrap();
            d.drain();
            clk += 1_000_000;
            d.submit(IoRequest::read(0, far * 8, 8), t(clk)).unwrap();
            d.drain();
            clk += 1_000_000;
        }
        match d.ioctl(Ioctl::ReadStats, t(clk)).unwrap() {
            IoctlReply::Stats(s) => {
                // Scheduled distances are tiny (both blocks in reserved);
                // arrival-order distances stay near full-stroke.
                assert!(s.reads.sched_seek.mean() < 3.0);
                assert!(
                    s.reads.arrival_seek.mean() > 50.0,
                    "arrival mean {}",
                    s.reads.arrival_seek.mean()
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bevict_on_clean_block_is_table_only() {
        let mut d = tiny_rearranged_driver();
        d.ioctl(Ioctl::BCopy { block: 4, slot: 2 }, t(0)).unwrap();
        let spb = u64::from(d.sectors_per_block());
        let orig = d.label().virtual_to_physical(4 * spb);
        match d.ioctl(Ioctl::BEvict { orig }, t(60_000_000)).unwrap() {
            IoctlReply::Moved { ops, .. } => assert_eq!(ops, 1),
            other => panic!("unexpected {other:?}"),
        }
        assert!(d.block_table().is_empty());
        // Evicting again errors.
        assert_eq!(
            d.ioctl(Ioctl::BEvict { orig }, t(120_000_000)).unwrap_err(),
            DriverError::NotResident
        );
    }

    #[test]
    fn raw_write_roundtrips_through_remap() {
        let mut d = tiny_rearranged_driver();
        d.ioctl(Ioctl::BCopy { block: 2, slot: 0 }, t(0)).unwrap();
        // Raw write of zeroes across blocks 1..3 (24 sectors from 8).
        d.submit_raw(IoDir::Write, 0, 8, 24, t(60_000_000)).unwrap();
        d.drain();
        // The remapped block's reserved copy went dirty.
        let spb = u64::from(d.sectors_per_block());
        let orig = d.label().virtual_to_physical(2 * spb);
        assert!(d.block_table().lookup(orig).unwrap().dirty);
        d.submit(IoRequest::read(0, 16, 8), t(120_000_000)).unwrap();
        assert!(d.drain()[0].data.iter().all(|&b| b == 0));
    }

    #[test]
    fn batch_submission_stays_causal() {
        // Submitting several future-dated requests before draining (the
        // batch pattern tests and replay use) must never dispatch a
        // request before it arrived: queueing times are non-negative and
        // dispatch order respects arrival availability.
        let mut d = tiny_plain_driver();
        // First request at t=0 occupies the disk; the rest arrive long
        // after it completes.
        d.submit(IoRequest::read(0, 0, 8), t(0)).unwrap();
        for i in 1..6u64 {
            d.submit(IoRequest::read(0, i * 8, 8), t(i * 1_000_000)) // 1 s apart
                .unwrap();
        }
        let done = d.drain();
        assert_eq!(done.len(), 6);
        for c in &done {
            assert!(
                c.dispatched >= c.arrived,
                "request dispatched before it arrived"
            );
            // The disk idles between these widely-spaced arrivals, so
            // each later request starts service the moment it arrives.
            assert_eq!(c.queueing(), SimDuration::ZERO);
        }
        // Completions are in arrival order here (no overlap).
        for w in done.windows(2) {
            assert!(w[1].completed > w[0].completed);
        }
    }

    #[test]
    fn cylinder_shuffle_preserves_data() {
        use crate::cylmap::CylinderMap;
        let mut d = tiny_plain_driver();
        let g = d.label().physical;
        // Distinct data in several cylinders (blocks 8 apart = 1 block
        // per cylinder region; 64 sectors/cyl = 8 blocks per cylinder).
        for c in 1..6u64 {
            let payload = Bytes::from(vec![c as u8; 4096]);
            d.submit(IoRequest::write(0, c * 64, 8, payload), t(c * 100_000))
                .unwrap();
            d.drain();
        }
        // Reverse the disk (cylinder 0, holding the label, stays pinned).
        let mut perm: Vec<u32> = vec![0];
        perm.extend((1..g.cylinders).rev());
        let map = CylinderMap::new(perm);
        let reply = d
            .ioctl(Ioctl::ShuffleCylinders { map }, t(10_000_000))
            .unwrap();
        match reply {
            IoctlReply::Moved { ops, busy } => {
                // Every written cylinder moved (plus cylinder 0 with the
                // label and whatever else): 2 ops per moved cylinder.
                assert!(ops >= 10);
                assert!(busy > SimDuration::ZERO);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Reads through the map return the original data.
        for c in 1..6u64 {
            d.submit(IoRequest::read(0, c * 64, 8), t(100_000_000 + c * 100_000))
                .unwrap();
            let done = d.drain();
            assert!(
                done[0].data.iter().all(|&b| b == c as u8),
                "cylinder {c} data lost"
            );
        }
    }

    #[test]
    fn cylinder_shuffle_straddling_block_reads_back() {
        use crate::cylmap::CylinderMap;
        // 4 KB blocks (8 sectors) tile 64-sector cylinders evenly on the
        // tiny disk, so force a straddle via the raw interface instead:
        // a 8-sector read at sector 60 spans cylinders 0 and 1.
        let mut d = tiny_plain_driver();
        let payload = Bytes::from(vec![0x3C; 4096]);
        // Write sectors 56..64 and 64..72 with distinct halves first.
        d.submit(IoRequest::write(0, 56, 8, payload), t(0)).unwrap();
        d.drain();
        let payload2 = Bytes::from(vec![0x4D; 4096]);
        d.submit(IoRequest::write(0, 64, 8, payload2), t(100_000))
            .unwrap();
        d.drain();
        let g = d.label().physical;
        let mut perm: Vec<u32> = vec![0];
        perm.extend((1..g.cylinders).rev());
        d.ioctl(
            Ioctl::ShuffleCylinders {
                map: CylinderMap::new(perm),
            },
            t(10_000_000),
        )
        .unwrap();
        // Raw read spanning the cylinder boundary (sectors 60..68): the
        // two halves live on opposite ends of the disk now.
        let ids = d.submit_raw(IoDir::Read, 0, 60, 8, t(100_000_000)).unwrap();
        let done = d.drain();
        assert_eq!(ids.len(), 2); // physio split at the 8-sector block grid
        assert!(done[0].data.iter().all(|&b| b == 0x3C));
        assert!(done[1].data.iter().all(|&b| b == 0x4D));
        let _ = g;
    }

    #[test]
    fn cylinder_shuffle_rejected_on_rearranged_disk() {
        use crate::cylmap::CylinderMap;
        let mut d = tiny_rearranged_driver();
        let g = d.label().physical;
        let err = d
            .ioctl(
                Ioctl::ShuffleCylinders {
                    map: CylinderMap::identity(g.cylinders),
                },
                t(0),
            )
            .unwrap_err();
        assert_eq!(err, DriverError::IncompatibleMode);
    }

    #[test]
    fn cylinder_shuffle_identity_is_free() {
        use crate::cylmap::CylinderMap;
        let mut d = tiny_plain_driver();
        let g = d.label().physical;
        match d
            .ioctl(
                Ioctl::ShuffleCylinders {
                    map: CylinderMap::identity(g.cylinders),
                },
                t(0),
            )
            .unwrap()
        {
            IoctlReply::Moved { ops, busy } => {
                assert_eq!(ops, 0);
                assert_eq!(busy, SimDuration::ZERO);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reshuffling_composes_correctly() {
        use crate::cylmap::CylinderMap;
        let mut d = tiny_plain_driver();
        let g = d.label().physical;
        let payload = Bytes::from(vec![0x99; 4096]);
        d.submit(IoRequest::write(0, 3 * 64, 8, payload), t(0))
            .unwrap();
        d.drain();
        // Shuffle twice with different permutations (cylinder 0 pinned);
        // data must follow.
        let mut rev: Vec<u32> = vec![0];
        rev.extend((1..g.cylinders).rev());
        d.ioctl(
            Ioctl::ShuffleCylinders {
                map: CylinderMap::new(rev),
            },
            t(10_000_000),
        )
        .unwrap();
        let mut rot: Vec<u32> = (1..g.cylinders).collect();
        rot.rotate_left(7);
        rot.insert(0, 0);
        d.ioctl(
            Ioctl::ShuffleCylinders {
                map: CylinderMap::new(rot),
            },
            t(400_000_000),
        )
        .unwrap();
        d.submit(IoRequest::read(0, 3 * 64, 8), t(800_000_000))
            .unwrap();
        assert!(d.drain()[0].data.iter().all(|&b| b == 0x99));
    }

    #[test]
    fn rearrangement_reduces_seek_distance() {
        // The headline mechanism: requests alternating between two distant
        // blocks become same-cylinder requests once both are rearranged.
        let mut d = tiny_rearranged_driver();
        let g = d.label().physical;
        // Two blocks at opposite ends of the virtual disk.
        let far_block = (d.label().virtual_geometry().total_sectors() / 8) - 1;
        let near = 0u64;
        let mut clk = 0u64;
        let run = |d: &mut AdaptiveDriver, clk: &mut u64| {
            for _ in 0..20 {
                d.submit(IoRequest::read(0, near * 8, 8), t(*clk)).unwrap();
                d.drain();
                *clk += 100_000;
                d.submit(IoRequest::read(0, far_block * 8, 8), t(*clk))
                    .unwrap();
                d.drain();
                *clk += 100_000;
            }
        };
        run(&mut d, &mut clk);
        let before = match d.ioctl(Ioctl::ReadStats, t(clk)).unwrap() {
            IoctlReply::Stats(s) => s.reads.sched_seek.mean(),
            _ => unreachable!(),
        };
        d.ioctl(
            Ioctl::BCopy {
                block: near,
                slot: 0,
            },
            t(clk),
        )
        .unwrap();
        clk += 1_000_000;
        d.ioctl(
            Ioctl::BCopy {
                block: far_block,
                slot: 1,
            },
            t(clk),
        )
        .unwrap();
        clk += 1_000_000;
        run(&mut d, &mut clk);
        let after = match d.ioctl(Ioctl::ReadStats, t(clk)).unwrap() {
            IoctlReply::Stats(s) => s.reads.sched_seek.mean(),
            _ => unreachable!(),
        };
        assert!(
            after < before / 10.0,
            "seek distance {after} not <<{before}"
        );
        let _ = g;
    }

    // ---- fault-path tests -------------------------------------------

    use abr_disk::fault::{FaultInjector, FaultPlan};
    use abr_sim::SimRng;

    fn injector(plan: FaultPlan, seed: u64) -> FaultInjector {
        FaultInjector::new(plan, SimRng::new(seed))
    }

    #[test]
    fn zero_fault_injector_is_bit_identical() {
        let mut plain = tiny_plain_driver();
        let mut faulty = tiny_plain_driver();
        faulty
            .disk_mut()
            .set_injector(Some(injector(FaultPlan::none(), 42)));
        let payload = Bytes::from(vec![0xAB; 4096]);
        for d in [&mut plain, &mut faulty] {
            d.submit(IoRequest::write(0, 8, 8, payload.clone()), t(0))
                .unwrap();
            for i in 0..6u64 {
                d.submit(IoRequest::read(0, (i * 24) % 96, 8), t(i * 400))
                    .unwrap();
            }
        }
        let a = plain.drain();
        let b = faulty.drain();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.completed, y.completed);
            assert_eq!(x.breakdown, y.breakdown);
            assert_eq!(x.data, y.data);
            assert!(x.is_ok() && y.is_ok());
        }
    }

    #[test]
    fn transient_faults_are_retried_and_absorbed() {
        let mut d = tiny_plain_driver();
        let plan = FaultPlan {
            transient_read: 0.2,
            ..FaultPlan::none()
        };
        d.disk_mut().set_injector(Some(injector(plan, 7)));
        for i in 0..30u64 {
            d.submit(IoRequest::read(0, (i % 12) * 8, 8), t(i * 1_000))
                .unwrap();
        }
        let done = d.drain();
        assert!(done.iter().all(Completion::is_ok), "retries should absorb");
        let snap = match d.ioctl(Ioctl::ReadStats, t(1_000_000_000)).unwrap() {
            IoctlReply::Stats(s) => s,
            other => panic!("unexpected {other:?}"),
        };
        assert!(snap.faults.retries > 0, "seeded run must draw transients");
        assert_eq!(snap.faults.read_failures, 0);
        assert_eq!(snap.reads.service.count(), 30);
    }

    #[test]
    fn media_error_fails_request_and_skips_service_stats() {
        let mut d = tiny_plain_driver();
        let bad = d.label().partitions[0].start_sector + 16;
        let phys = d.label().virtual_to_physical(bad);
        let mut inj = injector(FaultPlan::none(), 1);
        inj.add_defect(phys);
        d.disk_mut().set_injector(Some(inj));

        d.submit(IoRequest::read(0, 0, 8), t(0)).unwrap();
        d.submit(IoRequest::read(0, 16, 8), t(0)).unwrap();
        let done = d.drain();
        let failed: Vec<_> = done.iter().filter(|c| !c.is_ok()).collect();
        assert_eq!(failed.len(), 1);
        assert!(matches!(
            failed[0].error,
            Some(DriverError::Disk {
                fault: DiskFault::Media,
                ..
            })
        ));
        assert!(failed[0].data.is_empty(), "failed reads carry no data");
        let snap = match d.ioctl(Ioctl::ReadStats, t(1_000_000)).unwrap() {
            IoctlReply::Stats(s) => s,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(snap.faults.read_failures, 1);
        // Only the successful read contributes to service-time stats.
        assert_eq!(snap.reads.service.count(), 1);
    }

    #[test]
    fn media_error_on_slot_write_quarantines_slot() {
        let mut d = tiny_rearranged_driver();
        let layout = *d.layout().unwrap();
        let mut inj = injector(FaultPlan::none(), 1);
        inj.add_defect(layout.slot_sector(0));
        d.disk_mut().set_injector(Some(inj));

        let err = d
            .ioctl(Ioctl::BCopy { block: 1, slot: 0 }, t(0))
            .unwrap_err();
        assert!(matches!(
            err,
            DriverError::Disk {
                fault: DiskFault::Media,
                ..
            }
        ));
        assert!(d.block_table().is_empty(), "failed copy leaves no entry");
        assert!(d.quarantined_slots().any(|s| s == 0));
        // The bad slot is refused outright from now on.
        assert_eq!(
            d.ioctl(Ioctl::BCopy { block: 1, slot: 0 }, t(1_000_000))
                .unwrap_err(),
            DriverError::SlotQuarantined
        );
        // Healthy slots still work.
        d.ioctl(Ioctl::BCopy { block: 1, slot: 1 }, t(2_000_000))
            .unwrap();
        assert_eq!(d.block_table().len(), 1);
    }

    #[test]
    fn degraded_attach_serves_pass_through() {
        let mut d = tiny_rearranged_driver();
        let layout = *d.layout().unwrap();
        let payload = Bytes::from(vec![0x3C; 4096]);
        d.submit(IoRequest::write(0, 24, 8, payload.clone()), t(0))
            .unwrap();
        d.drain();
        // Clean copy in slot 0: home stays canonical.
        d.ioctl(Ioctl::BCopy { block: 3, slot: 0 }, t(1_000_000))
            .unwrap();

        // Clobber the whole table region (both copies) and re-attach.
        let mut disk = d.crash();
        let garbage = vec![0xFF; layout.table_sectors as usize * SECTOR_SIZE];
        disk.store_mut().write(layout.start_sector, &garbage);
        let mut d = AdaptiveDriver::attach(disk, tiny_config()).unwrap();
        assert!(d.is_degraded());
        assert!(d.block_table().is_empty());

        // Requests are served correctly at their original addresses.
        d.submit(IoRequest::read(0, 24, 8), t(2_000_000)).unwrap();
        let done = d.drain();
        assert!(done[0].is_ok());
        assert_eq!(done[0].data, payload);
        // Block movement is refused until reformatted.
        assert_eq!(
            d.ioctl(Ioctl::BCopy { block: 1, slot: 1 }, t(3_000_000))
                .unwrap_err(),
            DriverError::Degraded
        );
        assert_eq!(
            d.ioctl(Ioctl::Clean, t(3_000_000)).unwrap_err(),
            DriverError::Degraded
        );
    }

    #[test]
    fn lost_block_reads_fail_until_rewritten() {
        let mut d = tiny_rearranged_driver();
        let layout = *d.layout().unwrap();
        let old = Bytes::from(vec![0x11; 4096]);
        let new = Bytes::from(vec![0x22; 4096]);
        d.submit(IoRequest::write(0, 8, 8, old), t(0)).unwrap();
        d.drain();
        d.ioctl(Ioctl::BCopy { block: 1, slot: 0 }, t(1_000_000))
            .unwrap();
        // Dirty the reserved copy, then destroy it.
        d.submit(IoRequest::write(0, 8, 8, new.clone()), t(2_000_000))
            .unwrap();
        d.drain();
        let mut inj = injector(FaultPlan::none(), 1);
        inj.add_defect(layout.slot_sector(0));
        d.disk_mut().set_injector(Some(inj));

        // Clean-out hits the defect: the dirty copy is gone for good, the
        // slot is quarantined, and the pass still completes.
        d.ioctl(Ioctl::Clean, t(3_000_000)).unwrap();
        assert!(d.block_table().is_empty());
        assert!(d.quarantined_slots().any(|s| s == 0));
        assert_eq!(d.lost_blocks().count(), 1);

        // Reads of the lost block fail loudly rather than serving the
        // stale home copy...
        d.submit(IoRequest::read(0, 8, 8), t(4_000_000)).unwrap();
        let done = d.drain();
        assert_eq!(done[0].error, Some(DriverError::DataLoss));
        // ...until a full-block write refreshes it.
        d.submit(IoRequest::write(0, 8, 8, new.clone()), t(5_000_000))
            .unwrap();
        d.drain();
        assert_eq!(d.lost_blocks().count(), 0);
        d.submit(IoRequest::read(0, 8, 8), t(6_000_000)).unwrap();
        let done = d.drain();
        assert!(done[0].is_ok());
        assert_eq!(done[0].data, new);
    }

    #[test]
    fn failed_table_write_rolls_back_and_recovers() {
        let mut d = tiny_rearranged_driver();
        d.ioctl(Ioctl::BCopy { block: 1, slot: 0 }, t(0)).unwrap();
        // Cut power on the third device op of the next bcopy: the block
        // read and the slot write succeed, the table persist does not.
        let plan = FaultPlan {
            power_cut_after_ops: Some(2),
            ..FaultPlan::none()
        };
        d.disk_mut().set_injector(Some(injector(plan, 1)));
        let err = d
            .ioctl(Ioctl::BCopy { block: 2, slot: 1 }, t(1_000_000))
            .unwrap_err();
        assert!(matches!(
            err,
            DriverError::Disk {
                fault: DiskFault::PowerLoss,
                ..
            }
        ));
        // In-memory table rolled back to match the on-disk one.
        assert_eq!(d.block_table().len(), 1);

        // Power-cycle: recovery sees exactly the committed entry.
        let mut disk = d.crash();
        if let Some(inj) = disk.injector_mut() {
            inj.revive();
        }
        let d = AdaptiveDriver::attach(disk, tiny_config()).unwrap();
        assert!(!d.is_degraded());
        assert_eq!(d.block_table().len(), 1);
    }
}
