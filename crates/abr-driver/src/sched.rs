//! Disk queueing (head scheduling) policies.
//!
//! The SunOS driver the paper modifies "maintains a queue of outstanding
//! requests for each physical device, managed using a disk queueing
//! policy" (§3.2) — SCAN in the measured system (§5.2: "request
//! reordering performed by the driver, which implements a SCAN policy").
//! FCFS is needed to compute the paper's "FCFS Mean Seek" baselines;
//! SSTF and C-SCAN are provided for ablation studies.
//!
//! A scheduler picks which queued request to dispatch next given the
//! current head position. Queues on a lightly-loaded file server are
//! short, so the O(n) scans here are never the bottleneck.

use crate::request::Queued;
use serde::{Deserialize, Serialize};

/// Selectable queueing policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// First-come, first-served (arrival order).
    Fcfs,
    /// Elevator: service requests in the current sweep direction, reverse
    /// at the last request. The stock SunOS policy.
    Scan,
    /// Circular SCAN: sweep upward only; jump back to the lowest request.
    CScan,
    /// Shortest seek time first (greedy).
    Sstf,
}

impl SchedulerKind {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Fcfs => "FCFS",
            SchedulerKind::Scan => "SCAN",
            SchedulerKind::CScan => "C-SCAN",
            SchedulerKind::Sstf => "SSTF",
        }
    }

    pub(crate) fn make(self) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::Fcfs => Box::new(Fcfs),
            SchedulerKind::Scan => Box::new(Scan { upward: true }),
            SchedulerKind::CScan => Box::new(CScan),
            SchedulerKind::Sstf => Box::new(Sstf),
        }
    }
}

/// A queue discipline: choose the index of the next request to dispatch.
pub(crate) trait Scheduler: Send {
    /// Pick which of `eligible` — strictly increasing indices into
    /// `queue`, non-empty — to dispatch next, returning the chosen
    /// *queue* index. `queue` is ordered by arrival; because `eligible`
    /// preserves that order, tie-breaking on the queue index is the same
    /// as tie-breaking on arrival order within the eligible set. The
    /// borrowed index view lets the driver schedule over the arrived
    /// subset without cloning requests.
    fn pick(&mut self, queue: &[Queued], eligible: &[usize], head_cylinder: u32) -> usize;
}

struct Fcfs;

impl Scheduler for Fcfs {
    fn pick(&mut self, _queue: &[Queued], eligible: &[usize], _head: u32) -> usize {
        eligible[0]
    }
}

struct Scan {
    upward: bool,
}

impl Scheduler for Scan {
    fn pick(&mut self, queue: &[Queued], eligible: &[usize], head: u32) -> usize {
        // Closest request at-or-beyond the head in the sweep direction;
        // if none, reverse direction.
        let best_in_dir = |up: bool| -> Option<usize> {
            eligible
                .iter()
                .filter(|&&i| {
                    if up {
                        queue[i].target_cylinder >= head
                    } else {
                        queue[i].target_cylinder <= head
                    }
                })
                .min_by_key(|&&i| (queue[i].target_cylinder.abs_diff(head), i))
                .copied()
        };
        if let Some(i) = best_in_dir(self.upward) {
            return i;
        }
        self.upward = !self.upward;
        best_in_dir(self.upward).expect("non-empty eligible set")
    }
}

struct CScan;

impl Scheduler for CScan {
    fn pick(&mut self, queue: &[Queued], eligible: &[usize], head: u32) -> usize {
        // Closest at-or-above the head; else wrap to the lowest cylinder.
        eligible
            .iter()
            .filter(|&&i| queue[i].target_cylinder >= head)
            .min_by_key(|&&i| (queue[i].target_cylinder - head, i))
            .copied()
            .unwrap_or_else(|| {
                eligible
                    .iter()
                    .min_by_key(|&&i| (queue[i].target_cylinder, i))
                    .copied()
                    .expect("non-empty eligible set")
            })
    }
}

struct Sstf;

impl Scheduler for Sstf {
    fn pick(&mut self, queue: &[Queued], eligible: &[usize], head: u32) -> usize {
        eligible
            .iter()
            .min_by_key(|&&i| (queue[i].target_cylinder.abs_diff(head), i))
            .copied()
            .expect("non-empty eligible set")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{IoRequest, RequestId};
    use abr_sim::SimTime;

    fn q(id: u64, cyl: u32) -> Queued {
        Queued {
            id: RequestId(id),
            req: IoRequest::read(0, 0, 1),
            segments: crate::request::Segments::one(u64::from(cyl) * 340, 1),
            target_cylinder: cyl,
            arrived: SimTime::from_micros(id),
        }
    }

    fn drain(kind: SchedulerKind, mut queue: Vec<Queued>, head: u32) -> Vec<u32> {
        let mut s = kind.make();
        let mut head = head;
        let mut order = Vec::new();
        while !queue.is_empty() {
            let eligible: Vec<usize> = (0..queue.len()).collect();
            let i = s.pick(&queue, &eligible, head);
            let picked = queue.remove(i);
            head = picked.target_cylinder;
            order.push(picked.target_cylinder);
        }
        order
    }

    #[test]
    fn fcfs_is_arrival_order() {
        let order = drain(SchedulerKind::Fcfs, vec![q(0, 50), q(1, 10), q(2, 90)], 0);
        assert_eq!(order, vec![50, 10, 90]);
    }

    #[test]
    fn scan_sweeps_then_reverses() {
        // Head at 40 moving up: picks 50, 90, then reverses to 30, 10.
        let order = drain(
            SchedulerKind::Scan,
            vec![q(0, 50), q(1, 10), q(2, 90), q(3, 30)],
            40,
        );
        assert_eq!(order, vec![50, 90, 30, 10]);
    }

    #[test]
    fn scan_services_same_cylinder_first() {
        // A request on the current cylinder is a zero-length seek and is
        // picked before anything else in the sweep — the synergy with
        // block rearrangement the paper describes (§5.2).
        let order = drain(SchedulerKind::Scan, vec![q(0, 77), q(1, 40), q(2, 41)], 40);
        assert_eq!(order[0], 40);
        assert_eq!(order[1], 41);
    }

    #[test]
    fn cscan_wraps_to_lowest() {
        let order = drain(
            SchedulerKind::CScan,
            vec![q(0, 50), q(1, 10), q(2, 90), q(3, 30)],
            40,
        );
        assert_eq!(order, vec![50, 90, 10, 30]);
    }

    #[test]
    fn sstf_greedy_nearest() {
        let order = drain(
            SchedulerKind::Sstf,
            vec![q(0, 100), q(1, 35), q(2, 45), q(3, 90)],
            40,
        );
        assert_eq!(order, vec![35, 45, 90, 100]);
    }

    #[test]
    fn sstf_tie_breaks_by_arrival() {
        let order = drain(SchedulerKind::Sstf, vec![q(0, 45), q(1, 35)], 40);
        assert_eq!(order, vec![45, 35]);
    }

    #[test]
    fn names() {
        assert_eq!(SchedulerKind::Scan.name(), "SCAN");
        assert_eq!(SchedulerKind::Fcfs.name(), "FCFS");
        assert_eq!(SchedulerKind::CScan.name(), "C-SCAN");
        assert_eq!(SchedulerKind::Sstf.name(), "SSTF");
    }

    #[test]
    fn scan_downward_sweep() {
        // Head at 95: everything is below, so SCAN flips downward and
        // services in descending order.
        let order = drain(SchedulerKind::Scan, vec![q(0, 50), q(1, 10), q(2, 90)], 95);
        assert_eq!(order, vec![90, 50, 10]);
    }
}
