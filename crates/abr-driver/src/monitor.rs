//! Request and performance monitoring (§4.1.4, §4.1.5).
//!
//! The request monitor is the adaptive mechanism's only input: "the driver
//! records information about each I/O request in a small internal table.
//! The information recorded includes the block number and the request
//! size. An ioctl call enables user processes to read the contents of the
//! table and to clear it. In the event that the table fills completely
//! before being cleared, request recording is temporarily suspended."
//!
//! The performance monitor exists "for the purpose of evaluation only":
//! per-direction seek-distance distributions in arrival order and in
//! scheduled order, service-time and queueing-time distributions at 1 ms
//! resolution with exact cumulative sums.

use abr_disk::disk::IoDir;
use abr_obs::{with_registry, CounterId, GaugeId, HiresId, LogHistogram};
use abr_sim::{DistTable, SimDuration, TimeStats};
use serde::{Deserialize, Serialize};

/// One record in the request monitor's table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// The *virtual* (pre-remapping) block number: stable identity for
    /// reference counting across rearrangements.
    pub block: u64,
    /// Request size in sectors.
    pub n_sectors: u32,
    /// Read or write.
    pub dir: IoDir,
}

/// The bounded in-driver request table.
#[derive(Debug, Clone)]
pub struct RequestMonitor {
    records: Vec<RequestRecord>,
    capacity: usize,
    /// Requests dropped while the table was full.
    suspended: u64,
    /// Lifetime count of suspension episodes (for reporting).
    suspension_episodes: u64,
    full: bool,
    /// Unified-registry mirrors of the two counters above (static
    /// handles; the thread-local registry is the single sink every
    /// subsystem's tallies flow into).
    dropped_ctr: CounterId,
    suspensions_ctr: CounterId,
}

impl RequestMonitor {
    /// A monitor holding at most `capacity` records between reads.
    ///
    /// # Panics
    /// Panics if capacity is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        let (dropped_ctr, suspensions_ctr) = with_registry(|r| {
            (
                r.counter("driver.monitor.dropped"),
                r.counter("driver.monitor.suspensions"),
            )
        });
        RequestMonitor {
            records: Vec::with_capacity(capacity.min(4096)),
            capacity,
            suspended: 0,
            suspension_episodes: 0,
            full: false,
            dropped_ctr,
            suspensions_ctr,
        }
    }

    /// Record one request; silently drops (and counts) it if the table is
    /// full — "request recording is temporarily suspended".
    ///
    /// A suspension episode starts the moment the table *becomes* full:
    /// recording of the next request is already suspended whether or not
    /// one arrives before the table is read. (Counting on the first drop
    /// instead would report zero episodes for an exactly-full window,
    /// under-reporting how often the monitor saturated.)
    pub fn record(&mut self, rec: RequestRecord) {
        if self.records.len() >= self.capacity {
            self.suspended += 1;
            with_registry(|r| r.inc(self.dropped_ctr, 1));
        } else {
            self.records.push(rec);
            if self.records.len() == self.capacity && !self.full {
                self.full = true;
                self.suspension_episodes += 1;
                with_registry(|r| r.inc(self.suspensions_ctr, 1));
            }
        }
    }

    /// The read-and-clear ioctl: returns all records and the number of
    /// requests that went unrecorded since the last read, resuming
    /// recording.
    pub fn read_and_clear(&mut self) -> (Vec<RequestRecord>, u64) {
        let dropped = self.suspended;
        self.suspended = 0;
        self.full = false;
        (std::mem::take(&mut self.records), dropped)
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the table holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total suspension episodes over the monitor's lifetime.
    pub fn suspension_episodes(&self) -> u64 {
        self.suspension_episodes
    }

    /// The records currently held, without clearing (diagnostics like
    /// `abrctl monitor-dump`; the ioctl path uses
    /// [`RequestMonitor::read_and_clear`]).
    pub fn records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// Requests dropped since the last read, without clearing.
    pub fn dropped(&self) -> u64 {
        self.suspended
    }
}

/// Statistics for one direction (reads or writes).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DirStats {
    /// Seek distances in *arrival order* with *no rearrangement*: the
    /// distance between the pre-remap cylinder of consecutive arriving
    /// requests. This is the paper's "FCFS, no block rearrangement"
    /// baseline (Table 3).
    pub arrival_seek: DistTable,
    /// Seek distances in *scheduled order*: the arm movements actually
    /// performed.
    pub sched_seek: DistTable,
    /// Service time: dispatch → completion.
    pub service: TimeStats,
    /// Queueing time: strategy receipt → dispatch.
    pub queueing: TimeStats,
    /// Rotational latency component of service (for Table 10).
    pub rotation: TimeStats,
    /// Transfer + overhead component of service (for Table 10).
    pub transfer: TimeStats,
    /// Dispatches whose target sector lay inside the reserved area
    /// (diagnostic: what fraction of this direction's traffic was
    /// actually redirected).
    pub reserved_dispatches: u64,
}

impl DirStats {
    fn new(range_ms: usize) -> Self {
        DirStats {
            arrival_seek: DistTable::new(),
            sched_seek: DistTable::new(),
            service: TimeStats::new(range_ms),
            queueing: TimeStats::new(range_ms),
            rotation: TimeStats::new(range_ms),
            transfer: TimeStats::new(range_ms),
            reserved_dispatches: 0,
        }
    }

    fn clear(&mut self) {
        self.arrival_seek.clear();
        self.sched_seek.clear();
        self.service.clear();
        self.queueing.clear();
        self.rotation.clear();
        self.transfer.clear();
        self.reserved_dispatches = 0;
    }

    /// Accumulate another window's statistics into this one (used to
    /// combine read+write views, and per-disk views across an array).
    pub fn merge(&mut self, other: &DirStats) {
        self.arrival_seek.merge(&other.arrival_seek);
        self.sched_seek.merge(&other.sched_seek);
        self.service.merge(&other.service);
        self.queueing.merge(&other.queueing);
        self.rotation.merge(&other.rotation);
        self.transfer.merge(&other.transfer);
        self.reserved_dispatches += other.reserved_dispatches;
    }
}

/// Error-path counters: what the retry loop, quarantine logic, and
/// degraded mode did during the measurement window. All zero on a
/// fault-free run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Transient disk faults absorbed by the bounded retry loop.
    pub retries: u64,
    /// Read requests that failed after exhausting retries.
    pub read_failures: u64,
    /// Write requests that failed after exhausting retries.
    pub write_failures: u64,
    /// Reserved-area slots blacklisted after hard media errors.
    pub quarantines: u64,
    /// Blocks whose most recent data became unrecoverable (dirty reserved
    /// copy lost to a hard error before it could be copied home).
    pub lost_blocks: u64,
    /// Block-table persists that fell back after a disk error (the
    /// in-memory change was rolled back).
    pub table_write_failures: u64,
}

impl FaultStats {
    fn clear(&mut self) {
        *self = FaultStats::default();
    }

    /// Whether any fault activity was recorded.
    pub fn any(&self) -> bool {
        *self != FaultStats::default()
    }

    /// Accumulate another window's fault counters into this one.
    pub fn merge(&mut self, other: &FaultStats) {
        self.retries += other.retries;
        self.read_failures += other.read_failures;
        self.write_failures += other.write_failures;
        self.quarantines += other.quarantines;
        self.lost_blocks += other.lost_blocks;
        self.table_write_failures += other.table_write_failures;
    }
}

/// A point-in-time copy of the monitor contents, as returned by the
/// read-stats ioctl.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfSnapshot {
    /// Read-request statistics.
    pub reads: DirStats,
    /// Write-request statistics.
    pub writes: DirStats,
    /// Error-path counters for the window.
    #[serde(default)]
    pub faults: FaultStats,
}

impl PerfSnapshot {
    /// Combined (reads + writes) statistics.
    pub fn all(&self) -> DirStats {
        let mut all = self.reads.clone();
        all.merge(&self.writes);
        all
    }

    /// Requests measured in total.
    pub fn count(&self) -> u64 {
        self.reads.service.count() + self.writes.service.count()
    }

    /// Accumulate another snapshot into this one — how an array folds N
    /// per-disk measurement windows into one volume-level window. All
    /// fields are sums or histogram merges, so the fold is
    /// order-insensitive: volume metrics cannot depend on how disk
    /// completions interleaved.
    pub fn merge(&mut self, other: &PerfSnapshot) {
        self.reads.merge(&other.reads);
        self.writes.merge(&other.writes);
        self.faults.merge(&other.faults);
    }
}

/// Static registry handles mirroring the performance monitor's tallies
/// into the unified thread-local registry (resolved once per monitor).
#[derive(Debug, Clone, Copy)]
struct PerfHandles {
    retries: CounterId,
    read_failures: CounterId,
    write_failures: CounterId,
    quarantines: CounterId,
    lost_blocks: CounterId,
    table_write_failures: CounterId,
    reserved_dispatches: CounterId,
    service_us: HiresId,
    queueing_us: HiresId,
    starved_total: CounterId,
    queue_age_max_us: GaugeId,
}

impl PerfHandles {
    fn resolve() -> Self {
        with_registry(|r| PerfHandles {
            retries: r.counter("driver.faults.retries"),
            read_failures: r.counter("driver.faults.read_failures"),
            write_failures: r.counter("driver.faults.write_failures"),
            quarantines: r.counter("driver.faults.quarantines"),
            lost_blocks: r.counter("driver.faults.lost_blocks"),
            table_write_failures: r.counter("driver.faults.table_write_failures"),
            reserved_dispatches: r.counter("driver.dispatch.reserved"),
            service_us: r.hires("driver.service_us"),
            queueing_us: r.hires("driver.queueing_us"),
            starved_total: r.counter("driver.starved_total"),
            queue_age_max_us: r.gauge("driver.queue_age_max_us"),
        })
    }
}

/// The in-driver performance monitor.
#[derive(Debug, Clone)]
pub struct PerfMonitor {
    reads: DirStats,
    writes: DirStats,
    faults: FaultStats,
    handles: PerfHandles,
    /// Queue age (receipt → dispatch) at or above which a request
    /// counts as starved (µs). See `DriverConfig::starvation_age`.
    starvation_age_us: u64,
    /// Per-request registry observations accumulated locally and merged
    /// in one pass at the day-boundary read-and-clear — the hot path
    /// (dispatch/completion, hundreds of thousands per day) never takes
    /// the registry borrow. Rare events (faults, quarantines) still
    /// mirror immediately.
    pending: PendingObs,
}

/// Locally-buffered registry deltas (see [`PerfMonitor::pending`]).
#[derive(Debug, Clone)]
struct PendingObs {
    service_us: LogHistogram,
    queueing_us: LogHistogram,
    reserved_dispatches: u64,
    /// Largest queue age seen at dispatch since the last flush (µs).
    queue_age_max_us: u64,
    /// Dispatches whose queue age reached the starvation threshold.
    starved: u64,
}

impl PendingObs {
    fn new() -> Self {
        PendingObs {
            service_us: LogHistogram::new(),
            queueing_us: LogHistogram::new(),
            reserved_dispatches: 0,
            queue_age_max_us: 0,
            starved: 0,
        }
    }
}

/// Default starvation-age threshold: a request waiting 2 simulated
/// seconds for the arm is starving under any of the paper's loads.
pub const DEFAULT_STARVATION_AGE: SimDuration = SimDuration::from_millis(2_000);

/// Histogram range: times at or beyond this many ms land in the overflow
/// bucket (they still count exactly toward means).
const RANGE_MS: usize = 4000;

impl Default for PerfMonitor {
    fn default() -> Self {
        Self::new()
    }
}

impl PerfMonitor {
    /// A fresh, empty monitor with the default starvation threshold.
    pub fn new() -> Self {
        Self::with_starvation_age(DEFAULT_STARVATION_AGE)
    }

    /// A fresh, empty monitor counting dispatches whose queue age
    /// reached `starvation_age` as starved.
    pub fn with_starvation_age(starvation_age: SimDuration) -> Self {
        PerfMonitor {
            reads: DirStats::new(RANGE_MS),
            writes: DirStats::new(RANGE_MS),
            faults: FaultStats::default(),
            handles: PerfHandles::resolve(),
            starvation_age_us: starvation_age.as_micros(),
            pending: PendingObs::new(),
        }
    }

    /// Count one absorbed (retried) transient disk fault.
    pub fn record_retry(&mut self) {
        self.faults.retries += 1;
        with_registry(|r| r.inc(self.handles.retries, 1));
    }

    /// Count one request that failed after exhausting retries.
    pub fn record_failure(&mut self, dir: IoDir) {
        let h = &self.handles;
        match dir {
            IoDir::Read => {
                self.faults.read_failures += 1;
                with_registry(|r| r.inc(h.read_failures, 1));
            }
            IoDir::Write => {
                self.faults.write_failures += 1;
                with_registry(|r| r.inc(h.write_failures, 1));
            }
        }
    }

    /// Count one reserved slot quarantined after a hard media error.
    pub fn record_quarantine(&mut self) {
        self.faults.quarantines += 1;
        with_registry(|r| r.inc(self.handles.quarantines, 1));
    }

    /// Count one block whose latest data became unrecoverable.
    pub fn record_lost_block(&mut self) {
        self.faults.lost_blocks += 1;
        with_registry(|r| r.inc(self.handles.lost_blocks, 1));
    }

    /// Count one failed (rolled-back) block-table persist.
    pub fn record_table_write_failure(&mut self) {
        self.faults.table_write_failures += 1;
        with_registry(|r| r.inc(self.handles.table_write_failures, 1));
    }

    fn dir_mut(&mut self, dir: IoDir) -> &mut DirStats {
        match dir {
            IoDir::Read => &mut self.reads,
            IoDir::Write => &mut self.writes,
        }
    }

    /// Record the arrival-order (FCFS, no-rearrangement) seek distance of
    /// an arriving request.
    pub fn record_arrival_seek(&mut self, dir: IoDir, distance: u64) {
        self.dir_mut(dir).arrival_seek.record(distance);
    }

    /// Record the dispatch of a request: the scheduled-order seek distance
    /// and the queueing time it accumulated. `in_reserved` marks targets
    /// inside the reserved area.
    pub fn record_dispatch(
        &mut self,
        dir: IoDir,
        distance: u64,
        queueing: SimDuration,
        in_reserved: bool,
    ) {
        let d = self.dir_mut(dir);
        d.sched_seek.record(distance);
        d.queueing.record(queueing);
        let age_us = queueing.as_micros();
        self.pending.queueing_us.observe(age_us);
        self.pending.queue_age_max_us = self.pending.queue_age_max_us.max(age_us);
        if age_us >= self.starvation_age_us {
            self.pending.starved += 1;
        }
        if in_reserved {
            self.dir_mut(dir).reserved_dispatches += 1;
            self.pending.reserved_dispatches += 1;
        }
    }

    /// Record a completion: total service time plus its rotational and
    /// transfer(+overhead) components.
    pub fn record_completion(
        &mut self,
        dir: IoDir,
        service: SimDuration,
        rotation: SimDuration,
        transfer_and_overhead: SimDuration,
    ) {
        let d = self.dir_mut(dir);
        d.service.record(service);
        d.rotation.record(rotation);
        d.transfer.record(transfer_and_overhead);
        self.pending.service_us.observe(service.as_micros());
    }

    /// Snapshot without clearing.
    pub fn snapshot(&self) -> PerfSnapshot {
        PerfSnapshot {
            reads: self.reads.clone(),
            writes: self.writes.clone(),
            faults: self.faults,
        }
    }

    /// The read-and-clear ioctl. Also flushes the locally-buffered
    /// registry observations (see [`PerfMonitor::flush_obs`]).
    pub fn read_and_clear(&mut self) -> PerfSnapshot {
        let snap = self.snapshot();
        self.reads.clear();
        self.writes.clear();
        self.faults.clear();
        self.flush_obs();
        snap
    }

    /// Merge the buffered per-request observations into the registry in
    /// one pass. Called at the day-boundary read-and-clear; harmless (and
    /// cheap) when nothing is buffered.
    pub fn flush_obs(&mut self) {
        let p = &mut self.pending;
        if p.service_us.is_empty() && p.queueing_us.is_empty() && p.reserved_dispatches == 0 {
            return;
        }
        let h = self.handles;
        with_registry(|r| {
            r.merge_hires(h.service_us, &p.service_us);
            r.merge_hires(h.queueing_us, &p.queueing_us);
            r.inc(h.reserved_dispatches, p.reserved_dispatches);
            if p.starved > 0 {
                r.inc(h.starved_total, p.starved);
            }
            // The gauge is the run-wide maximum: only ever raised.
            let prev = r.gauge_value(h.queue_age_max_us);
            let cur = i64::try_from(p.queue_age_max_us).unwrap_or(i64::MAX);
            if cur > prev {
                r.set_gauge(h.queue_age_max_us, cur);
            }
        });
        p.service_us.reset();
        p.queueing_us.reset();
        p.reserved_dispatches = 0;
        p.queue_age_max_us = 0;
        p.starved = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(block: u64) -> RequestRecord {
        RequestRecord {
            block,
            n_sectors: 16,
            dir: IoDir::Read,
        }
    }

    #[test]
    fn request_monitor_records_until_full() {
        let mut m = RequestMonitor::new(3);
        for b in 0..5 {
            m.record(rec(b));
        }
        assert_eq!(m.len(), 3);
        let (recs, dropped) = m.read_and_clear();
        assert_eq!(recs.len(), 3);
        assert_eq!(dropped, 2);
        assert_eq!(m.suspension_episodes(), 1);
        // Recording resumes after the read.
        m.record(rec(9));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn request_monitor_exactly_full_counts_one_suspension() {
        // Regression: a window that fills the table exactly — with no
        // overflow arrivals before the clear — is still a suspension
        // episode (recording *was* suspended); it used to count zero.
        let mut m = RequestMonitor::new(3);
        for b in 0..3 {
            m.record(rec(b));
        }
        let (recs, dropped) = m.read_and_clear();
        assert_eq!(recs.len(), 3);
        assert_eq!(dropped, 0, "nothing was dropped in an exactly-full window");
        assert_eq!(m.suspension_episodes(), 1);
        // Each saturated window counts exactly one more episode.
        for b in 0..4 {
            m.record(rec(b));
        }
        let (_, dropped) = m.read_and_clear();
        assert_eq!(dropped, 1);
        assert_eq!(m.suspension_episodes(), 2);
    }

    #[test]
    fn request_monitor_registry_mirrors_drops_and_suspensions() {
        abr_obs::registry_reset();
        let mut m = RequestMonitor::new(2);
        for b in 0..5 {
            m.record(rec(b));
        }
        let snap = abr_obs::registry_snapshot();
        assert_eq!(snap["counters"]["driver.monitor.dropped"], 3);
        assert_eq!(snap["counters"]["driver.monitor.suspensions"], 1);
    }

    #[test]
    fn request_monitor_no_suspension_when_drained() {
        let mut m = RequestMonitor::new(100);
        for round in 0..10 {
            for b in 0..50 {
                m.record(rec(round * 50 + b));
            }
            let (recs, dropped) = m.read_and_clear();
            assert_eq!(recs.len(), 50);
            assert_eq!(dropped, 0);
        }
        assert_eq!(m.suspension_episodes(), 0);
    }

    #[test]
    fn perf_monitor_separates_directions() {
        let mut p = PerfMonitor::new();
        p.record_completion(
            IoDir::Read,
            SimDuration::from_millis(10),
            SimDuration::from_millis(4),
            SimDuration::from_millis(6),
        );
        p.record_completion(
            IoDir::Write,
            SimDuration::from_millis(30),
            SimDuration::from_millis(8),
            SimDuration::from_millis(22),
        );
        let s = p.snapshot();
        assert_eq!(s.reads.service.mean_ms(), 10.0);
        assert_eq!(s.writes.service.mean_ms(), 30.0);
        assert_eq!(s.all().service.mean_ms(), 20.0);
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn perf_monitor_seek_tables() {
        let mut p = PerfMonitor::new();
        p.record_arrival_seek(IoDir::Read, 200);
        p.record_arrival_seek(IoDir::Read, 0);
        p.record_dispatch(IoDir::Read, 0, SimDuration::from_millis(1), false);
        p.record_dispatch(IoDir::Read, 10, SimDuration::from_millis(2), true);
        let s = p.snapshot();
        assert_eq!(s.reads.arrival_seek.mean(), 100.0);
        assert_eq!(s.reads.sched_seek.mean(), 5.0);
        assert_eq!(s.reads.sched_seek.fraction_of(0), 0.5);
        assert_eq!(s.reads.queueing.mean_ms(), 1.5);
    }

    #[test]
    fn read_and_clear_resets() {
        let mut p = PerfMonitor::new();
        p.record_arrival_seek(IoDir::Write, 5);
        let first = p.read_and_clear();
        assert_eq!(first.writes.arrival_seek.count(), 1);
        let second = p.snapshot();
        assert_eq!(second.writes.arrival_seek.count(), 0);
    }

    #[test]
    fn fault_counters_accumulate_and_clear() {
        let mut p = PerfMonitor::new();
        assert!(!p.snapshot().faults.any());
        p.record_retry();
        p.record_retry();
        p.record_failure(IoDir::Read);
        p.record_failure(IoDir::Write);
        p.record_quarantine();
        p.record_lost_block();
        p.record_table_write_failure();
        let s = p.read_and_clear();
        assert!(s.faults.any());
        assert_eq!(s.faults.retries, 2);
        assert_eq!(s.faults.read_failures, 1);
        assert_eq!(s.faults.write_failures, 1);
        assert_eq!(s.faults.quarantines, 1);
        assert_eq!(s.faults.lost_blocks, 1);
        assert_eq!(s.faults.table_write_failures, 1);
        // Cleared with the rest of the stats.
        assert!(!p.snapshot().faults.any());
    }

    #[test]
    fn starvation_and_queue_age_metrics() {
        abr_obs::registry_clear();
        let mut p = PerfMonitor::with_starvation_age(SimDuration::from_millis(10));
        p.record_dispatch(IoDir::Read, 1, SimDuration::from_millis(2), false);
        p.record_dispatch(IoDir::Read, 1, SimDuration::from_millis(50), false);
        // Exactly at the threshold counts as starved (>=).
        p.record_dispatch(IoDir::Write, 1, SimDuration::from_millis(10), false);
        p.flush_obs();
        let snap = abr_obs::registry_snapshot();
        assert_eq!(snap["counters"]["driver.starved_total"], 2);
        assert_eq!(snap["gauges"]["driver.queue_age_max_us"], 50_000);
        assert_eq!(snap["hires"]["driver.queueing_us"]["count"], 3);
        // The gauge is a run-wide max: a later, quieter flush keeps it.
        p.record_dispatch(IoDir::Read, 1, SimDuration::from_millis(1), false);
        p.flush_obs();
        let snap = abr_obs::registry_snapshot();
        assert_eq!(snap["gauges"]["driver.queue_age_max_us"], 50_000);
        assert_eq!(snap["counters"]["driver.starved_total"], 2);
    }

    #[test]
    fn latency_histograms_are_high_resolution() {
        abr_obs::registry_clear();
        let mut p = PerfMonitor::new();
        p.record_completion(
            IoDir::Read,
            SimDuration::from_micros(12_345),
            SimDuration::from_millis(4),
            SimDuration::from_millis(6),
        );
        p.flush_obs();
        let snap = abr_obs::registry_snapshot();
        let h = &snap["hires"]["driver.service_us"];
        assert_eq!(h["scheme"], "log2m32");
        assert_eq!(h["count"], 1);
        assert_eq!(h["sum"], 12_345);
        assert_eq!(h["max"], 12_345);
        // ~3.1% bucket resolution: p99 lands within one sub-bucket.
        let p99 = h["quantiles"]["p99"].as_u64().unwrap();
        assert!((12_345..=12_345 + 12_345 / 32 + 1).contains(&p99));
    }

    #[test]
    fn merged_all_keeps_component_counts() {
        let mut p = PerfMonitor::new();
        for _ in 0..3 {
            p.record_dispatch(IoDir::Read, 7, SimDuration::ZERO, false);
        }
        for _ in 0..2 {
            p.record_dispatch(IoDir::Write, 9, SimDuration::ZERO, false);
        }
        let all = p.snapshot().all();
        assert_eq!(all.sched_seek.count(), 5);
    }
}
