//! Layout of the reserved area.
//!
//! The reserved cylinder group (hidden from the file system via the disk
//! label) holds, in order:
//!
//! 1. the on-disk copy of the block table ("A copy of the block table is
//!    also stored on the disk (at the beginning of the reserved area)",
//!    §4.1.2), and
//! 2. a packed array of *slots*, each holding one file-system block.
//!
//! Slots are packed back-to-back; a slot may straddle a track (or even a
//! cylinder) boundary, just as file-system blocks do on the rest of the
//! disk. With the paper's Toshiba configuration (48 cylinders x 340
//! sectors, 8 KB blocks, table region of 32 sectors) this yields exactly
//! the 1018 slots the paper rearranges.

use abr_disk::{DiskLabel, Geometry, ReservedArea};
use serde::{Deserialize, Serialize};

/// Resolved geometry of the reserved area for a given block size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReservedLayout {
    /// First physical sector of the reserved area.
    pub start_sector: u64,
    /// Total sectors in the reserved area.
    pub total_sectors: u64,
    /// Sectors reserved at the start for the on-disk block table.
    pub table_sectors: u64,
    /// Sectors per file-system block.
    pub sectors_per_block: u32,
    /// Number of usable block slots.
    pub n_slots: u32,
}

impl ReservedLayout {
    /// Compute the layout for a rearranged disk label and a block size in
    /// bytes. `table_sectors` is sized to hold `max_entries` table entries
    /// (17 bytes each plus a header), rounded up to a whole block so the
    /// slot array stays block-aligned relative to the area start.
    ///
    /// Returns `None` if the label is not marked rearranged.
    ///
    /// # Panics
    /// Panics if the block size is not a positive multiple of the sector
    /// size.
    pub fn for_label(label: &DiskLabel, block_size: u32, max_entries: u32) -> Option<Self> {
        let reserved = label.reserved?;
        Some(Self::new(
            &label.physical,
            reserved,
            block_size,
            max_entries,
        ))
    }

    /// Compute the layout from explicit pieces (see
    /// [`ReservedLayout::for_label`]).
    pub fn new(
        geometry: &Geometry,
        reserved: ReservedArea,
        block_size: u32,
        max_entries: u32,
    ) -> Self {
        assert!(
            block_size > 0 && block_size.is_multiple_of(abr_disk::SECTOR_SIZE_U32),
            "block size must be a positive multiple of the sector size"
        );
        let sectors_per_block = block_size / abr_disk::SECTOR_SIZE_U32;
        let start_sector = reserved.start_sector(geometry);
        let total_sectors = reserved.n_sectors(geometry);
        // Header (16 bytes) + 17 bytes per entry, rounded up to whole
        // blocks.
        let table_bytes = 16 + 17 * u64::from(max_entries);
        let table_blocks = table_bytes.div_ceil(u64::from(block_size));
        let table_sectors = table_blocks * u64::from(sectors_per_block);
        let usable = total_sectors.saturating_sub(table_sectors);
        let n_slots = abr_sim::narrow::u32_from_u64(usable / u64::from(sectors_per_block));
        ReservedLayout {
            start_sector,
            total_sectors,
            table_sectors,
            sectors_per_block,
            n_slots,
        }
    }

    /// First physical sector of slot `i`.
    ///
    /// # Panics
    /// Panics if the slot index is out of range.
    #[inline]
    pub fn slot_sector(&self, i: u32) -> u64 {
        assert!(i < self.n_slots, "slot {i} out of range {}", self.n_slots);
        self.start_sector + self.table_sectors + u64::from(i) * u64::from(self.sectors_per_block)
    }

    /// The cylinder a slot starts on.
    #[inline]
    pub fn slot_cylinder(&self, g: &Geometry, i: u32) -> u32 {
        g.cylinder_of(self.slot_sector(i))
    }

    /// The slot whose sector range contains `sector`, if any.
    pub fn slot_of_sector(&self, sector: u64) -> Option<u32> {
        let slots_start = self.start_sector + self.table_sectors;
        if sector < slots_start {
            return None;
        }
        let idx = (sector - slots_start) / u64::from(self.sectors_per_block);
        (idx < u64::from(self.n_slots)).then_some(abr_sim::narrow::u32_from_u64(idx))
    }

    /// Iterator over slot indices ordered by distance of their cylinder
    /// from the centre cylinder of the reserved area — the organ-pipe fill
    /// order (§2): the middle cylinder first, then alternating adjacent
    /// cylinders outward. Within one cylinder, slots come in ascending
    /// sector order.
    pub fn organ_pipe_order(&self, g: &Geometry) -> Vec<u32> {
        let center = g.cylinder_of(self.start_sector + self.total_sectors / 2);
        let mut slots: Vec<u32> = (0..self.n_slots).collect();
        // Stable sort: ties (same distance, i.e. the two cylinders either
        // side of centre) keep ascending-slot order, which alternates
        // cylinders exactly like the paper's description once grouped.
        slots.sort_by_key(|&i| {
            let cyl = self.slot_cylinder(g, i);
            let dist = cyl.abs_diff(center);
            // Prefer the lower cylinder on ties, then sector order.
            (dist, cyl, i)
        });
        slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_disk::models;

    fn toshiba_layout() -> (Geometry, ReservedLayout) {
        let g = models::toshiba_mk156f().geometry;
        let label = DiskLabel::rearranged(g, 48);
        let l = ReservedLayout::for_label(&label, 8192, 1020).unwrap();
        (g, l)
    }

    #[test]
    fn toshiba_yields_paper_slot_count() {
        // 48 cylinders x 340 sectors = 16320 sectors; table = 17354 bytes
        // -> 3 blocks -> 48 sectors; (16320-48)/16 = 1017 slots.
        // The paper reports "approximately 1000" blocks fit and uses 1018;
        // we land within a slot or two of that.
        let (_, l) = toshiba_layout();
        assert!(
            (1015..=1020).contains(&l.n_slots),
            "slots {} not ~1018",
            l.n_slots
        );
    }

    #[test]
    fn fujitsu_has_room_for_3500() {
        let g = models::fujitsu_m2266().geometry;
        let label = DiskLabel::rearranged(g, 80);
        let l = ReservedLayout::for_label(&label, 8192, 4096).unwrap();
        assert!(l.n_slots > 3500, "slots {}", l.n_slots);
    }

    #[test]
    fn plain_label_has_no_layout() {
        let g = models::toshiba_mk156f().geometry;
        let label = DiskLabel::whole_disk(g);
        assert!(ReservedLayout::for_label(&label, 8192, 100).is_none());
    }

    #[test]
    fn slots_are_disjoint_and_inside_reserved() {
        let (g, l) = toshiba_layout();
        let end = l.start_sector + l.total_sectors;
        let mut prev_end = l.start_sector + l.table_sectors;
        for i in 0..l.n_slots {
            let s = l.slot_sector(i);
            assert_eq!(s, prev_end, "slot {i} not packed");
            prev_end = s + u64::from(l.sectors_per_block);
            assert!(prev_end <= end, "slot {i} overruns reserved area");
        }
        let _ = g;
    }

    #[test]
    fn slot_of_sector_inverts_slot_sector() {
        let (_, l) = toshiba_layout();
        for i in [0u32, 1, 500, l.n_slots - 1] {
            let s = l.slot_sector(i);
            assert_eq!(l.slot_of_sector(s), Some(i));
            assert_eq!(l.slot_of_sector(s + 15), Some(i));
        }
        assert_eq!(l.slot_of_sector(l.start_sector), None); // table region
        assert_eq!(l.slot_of_sector(0), None);
    }

    #[test]
    fn organ_pipe_order_starts_at_center() {
        let (g, l) = toshiba_layout();
        let order = l.organ_pipe_order(&g);
        assert_eq!(order.len(), l.n_slots as usize);
        let center = g.cylinder_of(l.start_sector + l.total_sectors / 2);
        // The first slots are on the centre cylinder.
        let first_cyl = l.slot_cylinder(&g, order[0]);
        assert_eq!(first_cyl, center);
        // Distances from the centre are non-decreasing along the order.
        let mut prev = 0;
        for &i in &order {
            let d = l.slot_cylinder(&g, i).abs_diff(center);
            assert!(d >= prev);
            prev = d;
        }
        // And it is a permutation.
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..l.n_slots).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slot_sector_bounds_checked() {
        let (_, l) = toshiba_layout();
        l.slot_sector(l.n_slots);
    }

    #[test]
    fn table_region_is_block_aligned() {
        let (_, l) = toshiba_layout();
        assert_eq!(l.table_sectors % u64::from(l.sectors_per_block), 0);
    }
}
