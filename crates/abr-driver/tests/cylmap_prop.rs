//! Property tests for the cylinder-level address maps: the
//! [`CylinderMap`] organ-pipe permutation and the label's
//! virtual↔physical sector mapping around the reserved-region
//! discontinuity, over randomized geometries.

use abr_disk::{DiskLabel, Geometry, Partition, ReservedArea};
use abr_driver::cylmap::CylinderMap;
use proptest::prelude::*;

/// Build a rearranged label for an arbitrary geometry, or `None` when no
/// block-aligned reserved placement exists for it.
// dead_code: with the offline proptest stand-in the property bodies are
// typechecked but not registered as tests, so helpers look unused.
#[allow(dead_code)]
fn rearranged_label(g: Geometry, n_reserved: u32, spb: u32) -> Option<DiskLabel> {
    let reserved = ReservedArea::centered_aligned(&g, n_reserved, spb)?;
    let virtual_geometry = g.with_cylinders(g.cylinders - n_reserved);
    Some(DiskLabel {
        physical: g,
        partitions: vec![Partition {
            start_sector: 0,
            n_sectors: virtual_geometry.total_sectors(),
        }],
        reserved: Some(reserved),
    })
}

/// Virtual sectors worth probing: the ends of the virtual disk plus
/// every sector adjacent to a reserved-region boundary cylinder.
#[allow(dead_code)]
fn boundary_sectors(label: &DiskLabel) -> Vec<u64> {
    let g = &label.physical;
    let spc = g.sectors_per_cylinder();
    let r = label.reserved.expect("rearranged label");
    let boundary = u64::from(r.start_cylinder) * spc;
    let vtotal = label.virtual_geometry().total_sectors();
    let mut probes = vec![0, vtotal - 1, vtotal / 2];
    for s in [
        boundary.saturating_sub(spc),
        boundary.saturating_sub(1),
        boundary,
        boundary + 1,
        boundary + spc - 1,
    ] {
        probes.push(s);
    }
    probes.retain(|&s| s < vtotal);
    probes.sort_unstable();
    probes.dedup();
    probes
}

proptest! {
    /// virtual→physical→virtual is the identity for every virtual
    /// sector, including the sectors hugging the reserved boundary,
    /// and the physical image never lands inside the reserved region.
    fn label_round_trips_virtual_sectors(
        (cylinders, tracks, sectors, n_reserved) in (10u32..200, 1u32..9, 16u32..64, 1u32..40),
    ) {
        prop_assume!(n_reserved < cylinders / 2);
        let g = Geometry {
            cylinders,
            tracks_per_cylinder: tracks,
            sectors_per_track: sectors,
            rpm: 3600,
        };
        let Some(label) = rearranged_label(g, n_reserved, 16) else {
            // No aligned placement for this geometry: nothing to test.
            return Ok(());
        };
        let r = label.reserved.expect("rearranged label");
        for vsector in boundary_sectors(&label) {
            let psector = label.virtual_to_physical(vsector);
            prop_assert!(
                !r.contains_cylinder(g.cylinder_of(psector)),
                "virtual sector {vsector} mapped into the reserved region (physical {psector})"
            );
            prop_assert!(psector < g.total_sectors());
            prop_assert_eq!(label.physical_to_virtual(psector), Some(vsector));
        }
    }

    /// physical→virtual is `None` exactly on the reserved cylinders and
    /// round-trips everywhere else.
    fn label_round_trips_physical_sectors(
        (cylinders, tracks, sectors, n_reserved) in (10u32..200, 1u32..9, 16u32..64, 1u32..40),
    ) {
        prop_assume!(n_reserved < cylinders / 2);
        let g = Geometry {
            cylinders,
            tracks_per_cylinder: tracks,
            sectors_per_track: sectors,
            rpm: 3600,
        };
        let Some(label) = rearranged_label(g, n_reserved, 16) else {
            return Ok(());
        };
        let r = label.reserved.expect("rearranged label");
        let spc = g.sectors_per_cylinder();
        let res_start = u64::from(r.start_cylinder) * spc;
        let res_end = res_start + u64::from(r.n_cylinders) * spc;
        // Probe both boundary cylinders of the reserved region and the
        // disk's ends.
        for psector in [
            0,
            res_start.saturating_sub(1),
            res_start,
            res_end - 1,
            res_end,
            g.total_sectors() - 1,
        ] {
            prop_assume!(psector < g.total_sectors());
            let inside = psector >= res_start && psector < res_end;
            match label.physical_to_virtual(psector) {
                None => prop_assert!(inside, "physical {psector} outside the reserved region mapped to None"),
                Some(v) => {
                    prop_assert!(!inside, "reserved physical {psector} got virtual address {v}");
                    prop_assert_eq!(label.virtual_to_physical(v), psector);
                }
            }
        }
    }

    /// The organ-pipe cylinder permutation is a bijection that pins the
    /// label cylinder and sends the uniquely hottest cylinder to the
    /// middle of the disk.
    fn organ_pipe_is_a_permutation(
        (mut counts, hot_idx) in (proptest::collection::vec(0u64..1000, 2..40), 1usize..40),
    ) {
        let n = counts.len();
        let hot = 1 + hot_idx % (n - 1); // any cylinder but the pinned label
        let max = counts.iter().copied().max().unwrap_or(0);
        counts[hot] = max + 1; // uniquely hottest
        let m = CylinderMap::organ_pipe(&counts);
        prop_assert_eq!(m.len() as usize, n);
        prop_assert_eq!(m.physical(0), 0, "label cylinder must stay pinned");
        prop_assert_eq!(m.physical(hot as u32), n as u32 / 2, "hottest cylinder must go to the middle");
        let mut image: Vec<u32> = (0..n as u32).map(|v| m.physical(v)).collect();
        image.sort_unstable();
        prop_assert_eq!(image, (0..n as u32).collect::<Vec<_>>());
        // Determinism: the same counts always produce the same map.
        prop_assert_eq!(m, CylinderMap::organ_pipe(&counts));
    }
}
