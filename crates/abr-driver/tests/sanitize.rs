//! Sanitize-feature tests: prove the invariant checks actually trip on
//! corrupted state (a sanitizer that never fires is worse than none).
//!
//! Run with `cargo test -p abr-driver --features sanitize`; the whole
//! file compiles away otherwise.

#![cfg(feature = "sanitize")]

use abr_driver::blocktable::BlockTable;

fn table() -> BlockTable {
    let mut t = BlockTable::new();
    t.insert(100, 0);
    t.insert(200, 1);
    t.insert(300, 2);
    t
}

#[test]
fn intact_table_passes() {
    let t = table();
    assert!(t.check_bijection().is_ok());
    t.assert_bijection(); // must not panic
    assert!(
        BlockTable::new().check_bijection().is_ok(),
        "empty table is a (trivial) bijection"
    );
}

#[test]
fn dangling_reverse_entry_is_caught() {
    // Reverse map claims slot 3 holds sector 400, but the forward map
    // has no entry for sector 400.
    let mut t = table();
    t.corrupt_slot_for_sanitizer_test(3, 400);
    assert!(t.check_bijection().is_err());
}

#[test]
fn two_slots_claiming_one_sector_is_caught() {
    // Reverse map says slots 1 and 3 both hold sector 200.
    let mut t = table();
    t.corrupt_slot_for_sanitizer_test(3, 200);
    assert!(t.check_bijection().is_err());
}

#[test]
fn mismatched_forward_and_reverse_is_caught() {
    // Slot 1's occupant overwritten: forward says 200 -> slot 1, reverse
    // now says slot 1 -> 999.
    let mut t = table();
    t.corrupt_slot_for_sanitizer_test(1, 999);
    assert!(t.check_bijection().is_err());
}

#[test]
#[should_panic(expected = "block table bijection")]
fn assert_bijection_panics_on_corruption() {
    let mut t = table();
    t.corrupt_slot_for_sanitizer_test(3, 400);
    t.assert_bijection();
}

#[test]
fn normal_operations_preserve_the_invariant() {
    let mut t = table();
    t.mark_dirty(200);
    t.assert_bijection();
    t.remove(100);
    t.assert_bijection();
    t.insert(400, 0);
    t.assert_bijection();
}
