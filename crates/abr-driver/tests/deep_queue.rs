//! Deep-queue regression: `driver.queueing_us` and
//! `driver.starved_total` must behave sanely when a burst far deeper
//! than anything the paper's traces produce (qdepth ≥ 64) lands on one
//! spindle at a single instant.
//!
//! The contract under test:
//! * every dispatch contributes exactly one `driver.queueing_us`
//!   observation — none double-counted, none dropped;
//! * the reported quantiles are monotone and bounded by the histogram
//!   max;
//! * the `driver.queue_age_max_us` gauge equals the histogram's max —
//!   both describe the same longest wait;
//! * `driver.starved_total` is consistent with the configured
//!   threshold: zero when the threshold is beyond any possible wait,
//!   positive (and bounded by the dispatch count) when the burst's
//!   tail must exceed it.

use abr_disk::{models, Disk, DiskLabel};
use abr_driver::{AdaptiveDriver, DriverConfig, IoRequest, Ioctl};
use abr_sim::{SimDuration, SimTime};

const QDEPTH: u64 = 128;

/// Build a formatted whole-disk driver and slam `QDEPTH` scattered
/// one-block reads into it at t = 0, then drain the queue dry. Returns
/// the drain-end clock.
fn run_burst(config: DriverConfig) -> (AdaptiveDriver, SimTime) {
    let model = models::toshiba_mk156f();
    let label = DiskLabel::whole_disk(model.geometry);
    let mut disk = Disk::new(model);
    AdaptiveDriver::format(&mut disk, &label, &config);
    let mut d = AdaptiveDriver::attach(disk, config).expect("fresh format attaches");
    d.set_deliver_read_data(false);
    let t0 = SimTime::ZERO;
    for i in 0..QDEPTH {
        // Stride the targets across the disk so SCAN actually reorders
        // and the queueing times spread out.
        let sector = (i * 977 % 17_000) * 16;
        d.submit(IoRequest::read(0, sector, 16), t0)
            .expect("submit within the partition");
    }
    assert!(d.queue_len() as u64 >= QDEPTH - 1, "burst did not queue");
    let mut t = t0;
    while let Some(at) = d.next_completion() {
        t = at;
        d.complete_next(at);
    }
    assert!(d.is_idle(), "queue must drain dry");
    (d, t)
}

/// Flush the driver's buffered observations and snapshot the registry.
fn flushed_snapshot(d: &mut AdaptiveDriver, now: SimTime) -> abr_sim::JsonValue {
    d.ioctl(Ioctl::ReadStats, now).expect("stats read");
    abr_obs::registry_snapshot()
}

#[test]
fn deep_queue_histogram_is_exact_and_monotone() {
    abr_obs::registry_clear();
    let (mut d, t_end) = run_burst(DriverConfig::default());
    let snap = flushed_snapshot(&mut d, t_end);
    let hist = &snap["hires"]["driver.queueing_us"];
    assert_eq!(
        hist["count"].as_u64(),
        Some(QDEPTH),
        "one queueing observation per dispatch"
    );
    let q = |p: &str| hist["quantiles"][p].as_u64().expect("quantile present");
    let (p50, p99, p999) = (q("p50"), q("p99"), q("p999"));
    let max = hist["max"].as_u64().expect("histogram max");
    assert!(
        p50 <= p99 && p99 <= p999 && p999 <= max,
        "quantiles must be monotone: p50 {p50} p99 {p99} p999 {p999} max {max}"
    );
    // 128 one-block reads on a ~30 IOPS spindle: the tail of the burst
    // provably waited seconds, not microseconds.
    assert!(max > 1_000_000, "deepest wait implausibly short: {max}us");
    // The run-wide gauge and the histogram describe the same wait.
    assert_eq!(
        snap["gauges"]["driver.queue_age_max_us"].as_u64(),
        Some(max),
        "queue_age_max_us gauge must equal the queueing histogram max"
    );
}

#[test]
fn starvation_counter_matches_its_threshold() {
    // Threshold beyond any possible wait: nothing may count as starved.
    abr_obs::registry_clear();
    let config = DriverConfig {
        starvation_age: SimDuration::from_hours(24),
        ..DriverConfig::default()
    };
    let (mut d, t_end) = run_burst(config);
    let snap = flushed_snapshot(&mut d, t_end);
    assert_eq!(
        snap["counters"]["driver.starved_total"]
            .as_u64()
            .unwrap_or(0),
        0,
        "no dispatch can starve against a 24h threshold"
    );

    // Default 2s threshold: the burst's tail must exceed it, but a
    // dispatch can be starved at most once.
    abr_obs::registry_clear();
    let (mut d, t_end) = run_burst(DriverConfig::default());
    let snap = flushed_snapshot(&mut d, t_end);
    let starved = snap["counters"]["driver.starved_total"]
        .as_u64()
        .expect("starved counter present");
    assert!(starved > 0, "deep-queue tail must starve at the default 2s");
    assert!(
        starved <= QDEPTH,
        "starved count {starved} exceeds the dispatch count {QDEPTH}"
    );
    // Consistency with the histogram: if anything starved, the longest
    // wait must itself be at or beyond the threshold.
    let max = snap["hires"]["driver.queueing_us"]["max"]
        .as_u64()
        .expect("histogram max");
    assert!(
        max >= 2_000_000,
        "starved dispatches but max wait {max}us < 2s"
    );
}
