//! Sparse in-memory sector store.
//!
//! Holds the disk's data contents so the reproduction can verify
//! *correctness* of the rearrangement machinery (a block read through the
//! remapping driver must return exactly what was written, across
//! copy-in/copy-out cycles and simulated crashes), not just its timing.
//! Unwritten sectors read as zeroes, like a freshly formatted disk.
//!
//! Layout: a paged arena. Sectors live in 64-sector pages (32 KB) that
//! are allocated on first write; a per-page bitmap records which sectors
//! hold real data. A sector address resolves to `(page, offset)` by shift
//! and mask, so the hot read/write path is a bounds check and a `memcpy`
//! — no hashing, no per-sector allocation. The bitmap, not the page
//! contents, is the source of truth for "written": clearing a bit makes
//! the sector read as zero again without touching its bytes.
//!
//! # Seeded sectors
//!
//! Most of the simulation's write traffic carries *synthetic* payloads —
//! a pure function of an 8-byte seed (see [`fill_seeded`]). Materializing
//! 512 bytes per sector just to hold them for a read that usually never
//! comes dominated the simulation's wall-clock, so the store records such
//! writes *lazily*: a seeded sector stores only its `(seed, word offset)`
//! pair and synthesizes the bytes on read. The observable contents are
//! identical either way; only the representation differs. Raw byte writes
//! and seeded writes can mix freely within a page.

use crate::SECTOR_SIZE;
use abr_sim::rng::splitmix64;

/// Sectors per arena page; pages are `64 * 512 B = 32 KB`, and one `u64`
/// bitmap covers exactly one page.
const PAGE_SECTORS: u64 = 64;
const PAGE_BYTES: usize = PAGE_SECTORS as usize * SECTOR_SIZE;
/// 8-byte words per sector in the seeded stream.
const WORDS_PER_SECTOR: u32 = (SECTOR_SIZE / 8) as u32;

/// Weyl increment (the splitmix64 gamma), spacing the per-word counter.
const GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// Word `w` of the seeded payload stream for `seed`.
///
/// The stream is *counter-based*: every word mixes independently, so any
/// sector of a payload can be synthesized without generating its prefix,
/// and generation pipelines instead of chaining through a serial state.
#[inline]
pub fn seeded_word(seed: u64, w: u64) -> u64 {
    splitmix64(seed ^ w.wrapping_add(1).wrapping_mul(GAMMA))
}

/// Fill `buf` with the seeded stream for `seed`, starting at word
/// `start_word` (8 bytes per word).
///
/// # Panics
/// Panics if `buf.len()` is not a multiple of 8.
pub fn fill_seeded(seed: u64, start_word: u64, buf: &mut [u8]) {
    assert_eq!(buf.len() % 8, 0, "seeded payload length must be 8-aligned");
    for (w, chunk) in (start_word..).zip(buf.chunks_exact_mut(8)) {
        chunk.copy_from_slice(&seeded_word(seed, w).to_le_bytes());
    }
}

#[derive(Debug, Clone)]
struct Page {
    /// Bit `i` set ⇔ sector `i` of this page has been written.
    bitmap: u64,
    /// Subset of `bitmap`: the sector's content is `seeds[i]`, not
    /// `data`.
    lazy: u64,
    /// Raw sector bytes; allocated on the first raw write to this page.
    data: Option<Box<[u8; PAGE_BYTES]>>,
    /// Per-sector `(seed, start word)` of lazily-held seeded writes;
    /// allocated on the first seeded write to this page.
    seeds: Option<Box<[(u64, u32); PAGE_SECTORS as usize]>>,
}

impl Page {
    fn new() -> Self {
        Page {
            bitmap: 0,
            lazy: 0,
            data: None,
            seeds: None,
        }
    }

    fn data_mut(&mut self) -> &mut [u8; PAGE_BYTES] {
        self.data.get_or_insert_with(|| Box::new([0u8; PAGE_BYTES]))
    }

    fn seeds_mut(&mut self) -> &mut [(u64, u32); PAGE_SECTORS as usize] {
        self.seeds
            .get_or_insert_with(|| Box::new([(0, 0); PAGE_SECTORS as usize]))
    }

    /// Synthesize or copy sector `s` into `out`.
    fn read_sector_into(&self, s: usize, out: &mut [u8]) {
        if self.lazy & (1 << s) != 0 {
            let (seed, w) = self.seeds.as_ref().expect("lazy bit implies seeds")[s]; // abr-lint: allow(P001, bit and box set together)
            fill_seeded(seed, u64::from(w), out);
        } else if self.bitmap & (1 << s) != 0 {
            let data = self.data.as_ref().expect("raw bit implies data"); // abr-lint: allow(P001, bit and box set together)
            out.copy_from_slice(&data[s * SECTOR_SIZE..(s + 1) * SECTOR_SIZE]);
        } else {
            out.fill(0);
        }
    }
}

/// A sparse array of 512-byte sectors.
#[derive(Debug, Default, Clone)]
pub struct SectorStore {
    /// Indexed by `sector / PAGE_SECTORS`; grown lazily to the highest
    /// touched page. `None` pages read as zero.
    pages: Vec<Option<Page>>,
    /// Count of set bitmap bits across all pages.
    written: usize,
}

impl SectorStore {
    /// An empty (all-zero) store.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn split(sector: u64) -> (usize, usize) {
        (
            (sector / PAGE_SECTORS) as usize,
            (sector % PAGE_SECTORS) as usize,
        )
    }

    fn page_mut(&mut self, page: usize) -> &mut Page {
        if page >= self.pages.len() {
            self.pages.resize(page + 1, None);
        }
        self.pages[page].get_or_insert_with(Page::new)
    }

    /// Read `buf.len()` bytes starting at the first byte of `sector`.
    /// `buf.len()` must be a multiple of the sector size.
    ///
    /// # Panics
    /// Panics if `buf.len()` is not sector-aligned.
    pub fn read(&self, sector: u64, buf: &mut [u8]) {
        assert_eq!(buf.len() % SECTOR_SIZE, 0, "unaligned read length");
        for (i, chunk) in buf.chunks_mut(SECTOR_SIZE).enumerate() {
            let (p, s) = Self::split(sector + i as u64);
            match self.pages.get(p).and_then(|pg| pg.as_ref()) {
                Some(pg) => pg.read_sector_into(s, chunk),
                None => chunk.fill(0),
            }
        }
    }

    /// Write `buf.len()` bytes starting at the first byte of `sector`.
    ///
    /// # Panics
    /// Panics if `buf.len()` is not sector-aligned.
    pub fn write(&mut self, sector: u64, buf: &[u8]) {
        assert_eq!(buf.len() % SECTOR_SIZE, 0, "unaligned write length");
        let mut newly_written = 0;
        for (i, chunk) in buf.chunks(SECTOR_SIZE).enumerate() {
            let (p, s) = Self::split(sector + i as u64);
            let pg = self.page_mut(p);
            if pg.bitmap & (1 << s) == 0 {
                pg.bitmap |= 1 << s;
                newly_written += 1;
            }
            pg.lazy &= !(1 << s);
            pg.data_mut()[s * SECTOR_SIZE..(s + 1) * SECTOR_SIZE].copy_from_slice(chunk);
        }
        self.written += newly_written;
    }

    /// Record a seeded write of `n_sectors` sectors whose contents are
    /// the [`fill_seeded`] stream for `seed` starting at `start_word`.
    /// Reads of these sectors return exactly what [`SectorStore::write`]
    /// of the materialized stream would have stored; the store just
    /// defers synthesizing the bytes until someone actually reads them.
    pub fn write_seeded(&mut self, sector: u64, n_sectors: u32, seed: u64, start_word: u64) {
        let mut newly_written = 0;
        for i in 0..u64::from(n_sectors) {
            let (p, s) = Self::split(sector + i);
            let pg = self.page_mut(p);
            if pg.bitmap & (1 << s) == 0 {
                pg.bitmap |= 1 << s;
                newly_written += 1;
            }
            pg.lazy |= 1 << s;
            let w = start_word + i * u64::from(WORDS_PER_SECTOR);
            // abr-lint: allow(P001, offsets bounded by request size)
            pg.seeds_mut()[s] = (seed, u32::try_from(w).expect("word offset fits u32"));
        }
        self.written += newly_written;
    }

    /// Copy `n_sectors` sectors from `src` to `dst` (the driver's block
    /// copy-in/copy-out primitive operates on whole file-system blocks).
    /// Lazily-held seeded sectors copy their marker, not their bytes.
    pub fn copy(&mut self, src: u64, dst: u64, n_sectors: u32) {
        let mut buf = [0u8; SECTOR_SIZE];
        for i in 0..u64::from(n_sectors) {
            let (sp, ss) = Self::split(src + i);
            enum Src {
                Absent,
                Seeded(u64, u32),
                Raw,
            }
            let state = match self.pages.get(sp).and_then(|pg| pg.as_ref()) {
                Some(pg) if pg.lazy & (1 << ss) != 0 => {
                    let (seed, w) = pg.seeds.as_ref().expect("lazy implies seeds")[ss]; // abr-lint: allow(P001, bit and box set together)
                    Src::Seeded(seed, w)
                }
                Some(pg) if pg.bitmap & (1 << ss) != 0 => Src::Raw,
                _ => Src::Absent,
            };
            match state {
                Src::Raw => {
                    self.read(src + i, &mut buf);
                    self.write(dst + i, &buf);
                }
                Src::Seeded(seed, w) => {
                    self.write_seeded(dst + i, 1, seed, u64::from(w));
                }
                Src::Absent => {
                    // Copying an unwritten sector clears the destination.
                    let (dp, ds) = Self::split(dst + i);
                    if let Some(pg) = self.pages.get_mut(dp).and_then(|pg| pg.as_mut()) {
                        if pg.bitmap & (1 << ds) != 0 {
                            pg.bitmap &= !(1 << ds);
                            pg.lazy &= !(1 << ds);
                            self.written -= 1;
                        }
                    }
                }
            }
        }
    }

    /// Number of sectors that have ever been written (holding non-default
    /// data).
    pub fn written_sectors(&self) -> usize {
        self.written
    }

    /// Iterate the indices of all written sectors (ascending).
    pub fn written_indices(&self) -> impl Iterator<Item = u64> + '_ {
        self.pages.iter().enumerate().flat_map(|(p, pg)| {
            let bitmap = pg.as_ref().map_or(0, |pg| pg.bitmap);
            (0..PAGE_SECTORS)
                .filter(move |s| bitmap & (1 << s) != 0)
                .map(move |s| p as u64 * PAGE_SECTORS + s)
        })
    }

    /// Read a single sector into a fresh buffer.
    pub fn read_sector(&self, sector: u64) -> [u8; SECTOR_SIZE] {
        let mut buf = [0u8; SECTOR_SIZE];
        self.read(sector, &mut buf);
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let s = SectorStore::new();
        let buf = s.read_sector(42);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn write_read_roundtrip() {
        let mut s = SectorStore::new();
        let data: Vec<u8> = (0..SECTOR_SIZE * 3).map(|i| (i % 251) as u8).collect();
        s.write(10, &data);
        let mut out = vec![0u8; SECTOR_SIZE * 3];
        s.read(10, &mut out);
        assert_eq!(out, data);
        assert_eq!(s.written_sectors(), 3);
    }

    #[test]
    fn partial_overlap_write() {
        let mut s = SectorStore::new();
        s.write(0, &[1u8; SECTOR_SIZE * 2]);
        s.write(1, &[2u8; SECTOR_SIZE]);
        assert_eq!(s.read_sector(0)[0], 1);
        assert_eq!(s.read_sector(1)[0], 2);
    }

    #[test]
    fn copy_moves_data_and_absence() {
        let mut s = SectorStore::new();
        s.write(5, &[7u8; SECTOR_SIZE]);
        // dst sector 21 has stale data that the copy of an unwritten src
        // sector must clear.
        s.write(21, &[9u8; SECTOR_SIZE]);
        s.copy(5, 20, 2); // sector 6 is unwritten
        assert_eq!(s.read_sector(20)[0], 7);
        assert!(s.read_sector(21).iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_read_panics() {
        let s = SectorStore::new();
        let mut buf = [0u8; 100];
        s.read(0, &mut buf);
    }

    #[test]
    fn copy_is_self_consistent_forward() {
        let mut s = SectorStore::new();
        for i in 0..4u64 {
            s.write(i, &[i as u8 + 1; SECTOR_SIZE]);
        }
        s.copy(0, 100, 4);
        for i in 0..4u64 {
            assert_eq!(s.read_sector(100 + i)[0], i as u8 + 1);
        }
    }

    #[test]
    fn writes_spanning_page_boundary() {
        let mut s = SectorStore::new();
        // 4 sectors straddling the 64-sector page boundary.
        let data: Vec<u8> = (0..SECTOR_SIZE * 4).map(|i| (i % 249) as u8).collect();
        s.write(62, &data);
        let mut out = vec![0u8; SECTOR_SIZE * 4];
        s.read(62, &mut out);
        assert_eq!(out, data);
        assert_eq!(s.written_sectors(), 4);
        assert_eq!(
            s.written_indices().collect::<Vec<_>>(),
            vec![62, 63, 64, 65]
        );
    }

    #[test]
    fn written_indices_ascending_and_counted() {
        let mut s = SectorStore::new();
        s.write(200, &[1u8; SECTOR_SIZE]);
        s.write(3, &[2u8; SECTOR_SIZE]);
        s.write(100, &[3u8; SECTOR_SIZE]);
        s.write(100, &[4u8; SECTOR_SIZE]); // overwrite: not double-counted
        assert_eq!(s.written_sectors(), 3);
        assert_eq!(s.written_indices().collect::<Vec<_>>(), vec![3, 100, 200]);
    }

    #[test]
    fn copy_clears_written_count() {
        let mut s = SectorStore::new();
        s.write(21, &[9u8; SECTOR_SIZE]);
        assert_eq!(s.written_sectors(), 1);
        s.copy(5, 21, 1); // unwritten source clears dst
        assert_eq!(s.written_sectors(), 0);
        assert!(s.written_indices().next().is_none());
    }

    #[test]
    fn seeded_write_reads_like_materialized_write() {
        let mut lazy = SectorStore::new();
        let mut eager = SectorStore::new();
        let seed = 0xFEED_F00D;
        let mut buf = vec![0u8; SECTOR_SIZE * 3];
        fill_seeded(seed, 0, &mut buf);
        eager.write(62, &buf); // spans a page boundary
        lazy.write_seeded(62, 3, seed, 0);
        for i in 0..3 {
            assert_eq!(lazy.read_sector(62 + i), eager.read_sector(62 + i));
        }
        assert_eq!(lazy.written_sectors(), eager.written_sectors());
        assert_eq!(
            lazy.written_indices().collect::<Vec<_>>(),
            eager.written_indices().collect::<Vec<_>>()
        );
    }

    #[test]
    fn raw_write_replaces_seeded_sector() {
        let mut s = SectorStore::new();
        s.write_seeded(7, 1, 0xAB, 0);
        s.write(7, &[5u8; SECTOR_SIZE]);
        assert_eq!(s.read_sector(7), [5u8; SECTOR_SIZE]);
        assert_eq!(s.written_sectors(), 1);
    }

    #[test]
    fn seeded_write_replaces_raw_sector() {
        let mut s = SectorStore::new();
        s.write(7, &[5u8; SECTOR_SIZE]);
        s.write_seeded(7, 1, 0xAB, 4);
        let mut want = [0u8; SECTOR_SIZE];
        fill_seeded(0xAB, 4, &mut want);
        assert_eq!(s.read_sector(7), want);
        assert_eq!(s.written_sectors(), 1);
    }

    #[test]
    fn copy_preserves_seeded_contents() {
        let mut s = SectorStore::new();
        s.write_seeded(10, 2, 0xC0FFEE, 64);
        s.copy(10, 200, 2);
        assert_eq!(s.read_sector(200), s.read_sector(10));
        assert_eq!(s.read_sector(201), s.read_sector(11));
    }

    #[test]
    fn fill_seeded_is_random_access() {
        // Word w of the stream is the same whether generated from the
        // start or from an offset — the property lazy sectors rely on.
        let mut whole = vec![0u8; 64];
        fill_seeded(9, 0, &mut whole);
        let mut tail = vec![0u8; 24];
        fill_seeded(9, 5, &mut tail);
        assert_eq!(&whole[40..], &tail[..]);
    }
}
