//! Sparse in-memory sector store.
//!
//! Holds the disk's data contents so the reproduction can verify
//! *correctness* of the rearrangement machinery (a block read through the
//! remapping driver must return exactly what was written, across
//! copy-in/copy-out cycles and simulated crashes), not just its timing.
//! Unwritten sectors read as zeroes, like a freshly formatted disk.

use crate::SECTOR_SIZE;
use std::collections::HashMap; // abr-lint: allow(D001, hot sector store; keyed access only, never iterated)

/// A sparse array of 512-byte sectors.
#[derive(Debug, Default, Clone)]
pub struct SectorStore {
    sectors: HashMap<u64, Box<[u8; SECTOR_SIZE]>>, // abr-lint: allow(D001, keyed lookup only; image serialization sorts)
}

impl SectorStore {
    /// An empty (all-zero) store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read `buf.len()` bytes starting at the first byte of `sector`.
    /// `buf.len()` must be a multiple of the sector size.
    ///
    /// # Panics
    /// Panics if `buf.len()` is not sector-aligned.
    pub fn read(&self, sector: u64, buf: &mut [u8]) {
        assert_eq!(buf.len() % SECTOR_SIZE, 0, "unaligned read length");
        for (i, chunk) in buf.chunks_mut(SECTOR_SIZE).enumerate() {
            match self.sectors.get(&(sector + i as u64)) {
                Some(data) => chunk.copy_from_slice(&data[..]),
                None => chunk.fill(0),
            }
        }
    }

    /// Write `buf.len()` bytes starting at the first byte of `sector`.
    ///
    /// # Panics
    /// Panics if `buf.len()` is not sector-aligned.
    pub fn write(&mut self, sector: u64, buf: &[u8]) {
        assert_eq!(buf.len() % SECTOR_SIZE, 0, "unaligned write length");
        for (i, chunk) in buf.chunks(SECTOR_SIZE).enumerate() {
            let mut data = Box::new([0u8; SECTOR_SIZE]);
            data.copy_from_slice(chunk);
            self.sectors.insert(sector + i as u64, data);
        }
    }

    /// Copy `n_sectors` sectors from `src` to `dst` (the driver's block
    /// copy-in/copy-out primitive operates on whole file-system blocks).
    pub fn copy(&mut self, src: u64, dst: u64, n_sectors: u32) {
        for i in 0..u64::from(n_sectors) {
            match self.sectors.get(&(src + i)) {
                Some(data) => {
                    let cloned = data.clone();
                    self.sectors.insert(dst + i, cloned);
                }
                None => {
                    self.sectors.remove(&(dst + i));
                }
            }
        }
    }

    /// Number of sectors that have ever been written (holding non-default
    /// data).
    pub fn written_sectors(&self) -> usize {
        self.sectors.len()
    }

    /// Iterate the indices of all written sectors (arbitrary order).
    pub fn written_indices(&self) -> impl Iterator<Item = u64> + '_ {
        self.sectors.keys().copied()
    }

    /// Read a single sector into a fresh buffer.
    pub fn read_sector(&self, sector: u64) -> [u8; SECTOR_SIZE] {
        let mut buf = [0u8; SECTOR_SIZE];
        self.read(sector, &mut buf);
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let s = SectorStore::new();
        let buf = s.read_sector(42);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn write_read_roundtrip() {
        let mut s = SectorStore::new();
        let data: Vec<u8> = (0..SECTOR_SIZE * 3).map(|i| (i % 251) as u8).collect();
        s.write(10, &data);
        let mut out = vec![0u8; SECTOR_SIZE * 3];
        s.read(10, &mut out);
        assert_eq!(out, data);
        assert_eq!(s.written_sectors(), 3);
    }

    #[test]
    fn partial_overlap_write() {
        let mut s = SectorStore::new();
        s.write(0, &[1u8; SECTOR_SIZE * 2]);
        s.write(1, &[2u8; SECTOR_SIZE]);
        assert_eq!(s.read_sector(0)[0], 1);
        assert_eq!(s.read_sector(1)[0], 2);
    }

    #[test]
    fn copy_moves_data_and_absence() {
        let mut s = SectorStore::new();
        s.write(5, &[7u8; SECTOR_SIZE]);
        // dst sector 21 has stale data that the copy of an unwritten src
        // sector must clear.
        s.write(21, &[9u8; SECTOR_SIZE]);
        s.copy(5, 20, 2); // sector 6 is unwritten
        assert_eq!(s.read_sector(20)[0], 7);
        assert!(s.read_sector(21).iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_read_panics() {
        let s = SectorStore::new();
        let mut buf = [0u8; 100];
        s.read(0, &mut buf);
    }

    #[test]
    fn copy_is_self_consistent_forward() {
        let mut s = SectorStore::new();
        for i in 0..4u64 {
            s.write(i, &[i as u8 + 1; SECTOR_SIZE]);
        }
        s.copy(0, 100, 4);
        for i in 0..4u64 {
            assert_eq!(s.read_sector(100 + i)[0], i as u8 + 1);
        }
    }
}
