//! Deterministic fault injection.
//!
//! A [`FaultInjector`] sits between the driver and the disk mechanism and
//! decides, for each request, whether it fails and how. All decisions are
//! drawn from a seeded [`abr_sim::SimRng`] substream, so a given
//! `(seed, FaultPlan)` pair always produces the same fault schedule — the
//! same reproducibility contract the rest of the simulation keeps.
//!
//! The fault model covers the failure classes a block driver must survive:
//!
//! * **Transient errors** — the op fails once (bus glitch, ECC retry
//!   exhaustion inside the drive) but an identical retry can succeed.
//! * **Hard media errors** — a sector joins a growing *defect list* and
//!   every later access overlapping it fails permanently.
//! * **Torn writes** — a multi-sector write persists only a prefix of its
//!   sectors before failing, leaving the range half-old half-new.
//! * **Power cuts** — at a scheduled op count or simulated time, the
//!   device dies: the in-flight op persists nothing and every subsequent
//!   op fails until the injector is [revived](FaultInjector::revive)
//!   (i.e. the machine reboots).
//! * **Whole-disk death** — at a scheduled simulated time the spindle
//!   fails for good: like a power cut, but [`FaultInjector::revive`]
//!   does *not* bring it back. The only way forward is replacing the
//!   disk (see [`FaultPlan::disk_death`], which also schedules when the
//!   replacement drive arrives).
//!
//! The injector is strictly pay-for-what-you-use: a disk without one (the
//! default) follows exactly the pre-fault code path and consumes no
//! randomness.

use crate::disk::IoDir;
use abr_sim::{SimDuration, SimRng, SimTime};
use std::collections::BTreeSet;

/// The kind of failure injected into one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// A read failed but may succeed if retried.
    TransientRead,
    /// A write failed (nothing persisted) but may succeed if retried.
    TransientWrite,
    /// A sector on the defect list was touched; permanent until remapped.
    Media,
    /// A multi-sector write persisted only a prefix before failing.
    TornWrite,
    /// The device lost power; every op fails until revived.
    PowerLoss,
}

impl DiskFault {
    /// True for faults where an identical retry can succeed (the torn
    /// range is made whole by rewriting it in full).
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            DiskFault::TransientRead | DiskFault::TransientWrite | DiskFault::TornWrite
        )
    }
}

/// A failed disk request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskError {
    /// What went wrong.
    pub fault: DiskFault,
    /// First sector of the failed transfer.
    pub sector: u64,
    /// Length of the failed transfer.
    pub n_sectors: u32,
    /// Sectors (from the start of the transfer) that reached the media
    /// before the fault. Non-zero only for [`DiskFault::TornWrite`].
    pub persisted: u32,
    /// Simulated time the failed attempt consumed at the device.
    pub elapsed: SimDuration,
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.fault {
            DiskFault::TransientRead => write!(f, "transient read error at sector {}", self.sector),
            DiskFault::TransientWrite => {
                write!(f, "transient write error at sector {}", self.sector)
            }
            DiskFault::Media => write!(f, "hard media error at sector {}", self.sector),
            DiskFault::TornWrite => write!(
                f,
                "torn write at sector {}: {} of {} sectors persisted",
                self.sector, self.persisted, self.n_sectors
            ),
            DiskFault::PowerLoss => write!(f, "power lost"),
        }
    }
}

impl std::error::Error for DiskError {}

/// Declarative description of the faults to inject. All rates are
/// per-request probabilities in `[0, 1]`; the default plan injects
/// nothing.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Probability a read fails transiently.
    pub transient_read: f64,
    /// Probability a write fails transiently (nothing persisted).
    pub transient_write: f64,
    /// Probability a request turns its first sector into a permanent
    /// defect (and fails).
    pub media_rate: f64,
    /// Probability a multi-sector write tears, persisting only a prefix.
    pub torn_write: f64,
    /// Cut power after this many requests have been attempted (the
    /// N+1-th and all later ops fail with [`DiskFault::PowerLoss`]).
    pub power_cut_after_ops: Option<u64>,
    /// Cut power at or after this simulated time.
    pub power_cut_at: Option<SimTime>,
    /// Kill the whole disk at or after this simulated time. Unlike a
    /// power cut, [`FaultInjector::revive`] cannot undo it — the drive
    /// must be physically replaced.
    pub disk_death_at: Option<SimTime>,
    /// How long after the death a replacement drive arrives (consumed
    /// by the array layer's hot-spare logic, not by the injector).
    pub replacement_after: Option<SimDuration>,
}

impl FaultPlan {
    /// A plan that injects nothing (identical to having no injector).
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan with uniform transient/media/torn rates derived from one
    /// error rate — convenient for sweeps. Media errors are made 10x
    /// rarer than transients, mirroring real drive failure ratios.
    pub fn with_error_rate(rate: f64) -> Self {
        FaultPlan {
            transient_read: rate,
            transient_write: rate,
            media_rate: rate / 10.0,
            torn_write: rate,
            ..Self::default()
        }
    }

    /// The rebuild-scenario one-liner: the disk dies for good at
    /// sim-time `at`, and a replacement drive arrives `replacement_after`
    /// later. The array layer reads [`FaultPlan::replacement_at`] to
    /// know when to swap in the spare and start re-silvering.
    pub fn disk_death(at: SimTime, replacement_after: SimDuration) -> Self {
        FaultPlan {
            disk_death_at: Some(at),
            replacement_after: Some(replacement_after),
            ..Self::default()
        }
    }

    /// When the replacement drive arrives, if this plan schedules a
    /// whole-disk death with a replacement delay.
    pub fn replacement_at(&self) -> Option<SimTime> {
        match (self.disk_death_at, self.replacement_after) {
            (Some(at), Some(delta)) => Some(at + delta),
            _ => None,
        }
    }

    /// True if no fault can ever fire under this plan.
    pub fn is_zero(&self) -> bool {
        self.transient_read == 0.0
            && self.transient_write == 0.0
            && self.media_rate == 0.0
            && self.torn_write == 0.0
            && self.power_cut_after_ops.is_none()
            && self.power_cut_at.is_none()
            && self.disk_death_at.is_none()
    }
}

/// Running totals of faults injected, for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Transient read/write errors injected.
    pub transient: u64,
    /// Hard media errors injected (accesses that hit the defect list).
    pub media: u64,
    /// Torn writes injected.
    pub torn: u64,
    /// Power-cut events fired (0 or 1 per boot).
    pub power_cuts: u64,
    /// Whole-disk death events fired (0 or 1 per disk).
    pub deaths: u64,
    /// Defective sectors cleared by [`FaultInjector::remap`] (scrub
    /// repairs reallocating a bad sector).
    pub remapped: u64,
}

/// The stateful fault decision engine attached to a [`crate::Disk`].
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SimRng,
    /// Sectors with permanent media errors.
    defects: BTreeSet<u64>,
    /// Requests attempted so far (successful or not).
    ops: u64,
    /// Set once power is cut; cleared by [`FaultInjector::revive`].
    dead: bool,
    /// Set once the whole disk dies; never cleared — revive cannot
    /// resurrect a dead spindle, only replacement can.
    failed: bool,
    counters: FaultCounters,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("plan", &self.plan)
            .field("defects", &self.defects)
            .field("ops", &self.ops)
            .field("dead", &self.dead)
            .field("failed", &self.failed)
            .field("counters", &self.counters)
            .finish_non_exhaustive()
    }
}

impl FaultInjector {
    /// An injector following `plan`, drawing from `rng`. Callers should
    /// pass a dedicated substream (e.g. `master.substream("faults")`) so
    /// fault decisions never perturb other consumers of randomness.
    pub fn new(plan: FaultPlan, rng: SimRng) -> Self {
        FaultInjector {
            plan,
            rng,
            defects: BTreeSet::new(),
            ops: 0,
            dead: false,
            failed: false,
            counters: FaultCounters::default(),
        }
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counters of injected faults.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// The current defect list.
    pub fn defects(&self) -> impl Iterator<Item = u64> + '_ {
        self.defects.iter().copied()
    }

    /// Add a sector to the permanent defect list (e.g. to model a disk
    /// that shipped with bad sectors).
    pub fn add_defect(&mut self, sector: u64) {
        self.defects.insert(sector);
    }

    /// Reallocate every defective sector in `[sector, sector + n)`:
    /// the drive maps the bad sectors onto spares, so later accesses
    /// succeed. Models the write-triggered reallocation a scrub repair
    /// relies on. Returns how many defects were cleared.
    pub fn remap(&mut self, sector: u64, n_sectors: u32) -> u32 {
        let end = sector + u64::from(n_sectors);
        let cleared: Vec<u64> = self.defects.range(sector..end).copied().collect();
        for s in &cleared {
            self.defects.remove(s);
        }
        let n = cleared.len() as u32;
        self.counters.remapped += u64::from(n);
        n
    }

    /// True if any sector of `[sector, sector + n_sectors)` is defective.
    pub fn overlaps_defect(&self, sector: u64, n_sectors: u32) -> bool {
        self.defects
            .range(sector..sector + u64::from(n_sectors))
            .next()
            .is_some()
    }

    /// True once power has been cut and the device has not been revived.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// True once the whole disk has died ([`FaultPlan::disk_death_at`]).
    /// Unlike [`FaultInjector::is_dead`], this never resets — the drive
    /// is gone and must be replaced.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Requests attempted so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Reboot after a power cut: the device serves requests again and the
    /// already-fired scheduled cut is disarmed. The defect list survives
    /// — media damage is permanent. A disk that suffered a whole-disk
    /// death stays dead: reboots do not resurrect failed spindles.
    pub fn revive(&mut self) {
        if self.failed {
            return;
        }
        self.dead = false;
        self.plan.power_cut_after_ops = None;
        self.plan.power_cut_at = None;
    }

    /// Decide the fate of one request. Returns the fault to inject, or
    /// `None` if the request succeeds. `Media` faults permanently grow
    /// the defect list.
    pub fn decide(
        &mut self,
        dir: IoDir,
        sector: u64,
        n_sectors: u32,
        start: SimTime,
    ) -> Option<DiskFault> {
        self.ops += 1;
        // Whole-disk death dominates everything, including power cuts:
        // once fired, every op fails and no reboot helps.
        if self.failed || self.plan.disk_death_at.is_some_and(|t| start >= t) {
            if !self.failed {
                self.counters.deaths += 1;
            }
            self.failed = true;
            self.dead = true;
            return Some(DiskFault::PowerLoss);
        }
        // Power cuts dominate everything else.
        if self.dead
            || self.plan.power_cut_after_ops.is_some_and(|n| self.ops > n)
            || self.plan.power_cut_at.is_some_and(|t| start >= t)
        {
            if !self.dead {
                self.counters.power_cuts += 1;
            }
            self.dead = true;
            return Some(DiskFault::PowerLoss);
        }
        // Existing media defects fail deterministically, no draw needed.
        if self.overlaps_defect(sector, n_sectors) {
            self.counters.media += 1;
            return Some(DiskFault::Media);
        }
        // Random faults. Draw in a fixed order so the stream stays
        // aligned regardless of which rates are zero.
        let transient = match dir {
            IoDir::Read => {
                self.plan.transient_read > 0.0 && self.rng.chance(self.plan.transient_read)
            }
            IoDir::Write => {
                self.plan.transient_write > 0.0 && self.rng.chance(self.plan.transient_write)
            }
        };
        let media = self.plan.media_rate > 0.0 && self.rng.chance(self.plan.media_rate);
        let torn = !dir.is_read()
            && n_sectors > 1
            && self.plan.torn_write > 0.0
            && self.rng.chance(self.plan.torn_write);
        if media {
            self.defects.insert(sector);
            self.counters.media += 1;
            return Some(DiskFault::Media);
        }
        if torn {
            self.counters.torn += 1;
            return Some(DiskFault::TornWrite);
        }
        if transient {
            self.counters.transient += 1;
            return Some(match dir {
                IoDir::Read => DiskFault::TransientRead,
                IoDir::Write => DiskFault::TransientWrite,
            });
        }
        None
    }

    /// How many sectors of a torn `n_sectors`-write persist (a uniform
    /// draw over `0..n_sectors`, strictly less than the full transfer).
    pub fn torn_persisted(&mut self, n_sectors: u32) -> u32 {
        debug_assert!(n_sectors > 1);
        self.rng.below(u64::from(n_sectors)) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(0x5eed).substream("faults")
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn zero_plan_never_faults() {
        let mut inj = FaultInjector::new(FaultPlan::none(), rng());
        for i in 0..10_000u64 {
            assert_eq!(inj.decide(IoDir::Read, i, 16, t(i)), None);
            assert_eq!(inj.decide(IoDir::Write, i, 16, t(i)), None);
        }
        assert_eq!(inj.counters(), FaultCounters::default());
    }

    #[test]
    fn same_seed_same_schedule() {
        let plan = FaultPlan::with_error_rate(0.05);
        let mut a = FaultInjector::new(plan, rng());
        let mut b = FaultInjector::new(plan, rng());
        for i in 0..5_000u64 {
            let dir = if i % 3 == 0 {
                IoDir::Write
            } else {
                IoDir::Read
            };
            assert_eq!(
                a.decide(dir, i * 7, 16, t(i)),
                b.decide(dir, i * 7, 16, t(i))
            );
        }
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let plan = FaultPlan {
            transient_read: 0.1,
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(plan, rng());
        let n = 20_000;
        let faults = (0..n)
            .filter(|&i| inj.decide(IoDir::Read, i, 1, t(i)).is_some())
            .count();
        let rate = faults as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn media_errors_grow_defect_list_and_repeat() {
        let plan = FaultPlan {
            media_rate: 0.02,
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(plan, rng());
        // Find the first media error.
        let mut bad = None;
        for i in 0..10_000u64 {
            if inj.decide(IoDir::Read, i * 8, 8, t(i)) == Some(DiskFault::Media) {
                bad = Some(i * 8);
                break;
            }
        }
        let bad = bad.expect("a media error within 10k ops at 2%");
        assert!(inj.overlaps_defect(bad, 1));
        // Every later access overlapping the defect fails, deterministically.
        for _ in 0..10 {
            assert_eq!(
                inj.decide(IoDir::Write, bad, 4, t(0)),
                Some(DiskFault::Media)
            );
        }
    }

    #[test]
    fn power_cut_after_ops_is_exact_and_sticky() {
        let plan = FaultPlan {
            power_cut_after_ops: Some(3),
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(plan, rng());
        assert_eq!(inj.decide(IoDir::Read, 0, 1, t(0)), None);
        assert_eq!(inj.decide(IoDir::Read, 1, 1, t(1)), None);
        assert_eq!(inj.decide(IoDir::Read, 2, 1, t(2)), None);
        assert_eq!(
            inj.decide(IoDir::Read, 3, 1, t(3)),
            Some(DiskFault::PowerLoss)
        );
        assert_eq!(
            inj.decide(IoDir::Write, 4, 1, t(4)),
            Some(DiskFault::PowerLoss)
        );
        assert!(inj.is_dead());
        assert_eq!(inj.counters().power_cuts, 1);
        // Reboot: serves again, cut disarmed.
        inj.revive();
        assert_eq!(inj.decide(IoDir::Read, 5, 1, t(5)), None);
    }

    #[test]
    fn power_cut_at_time_fires() {
        let plan = FaultPlan {
            power_cut_at: Some(t(1_000)),
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(plan, rng());
        assert_eq!(inj.decide(IoDir::Read, 0, 1, t(999)), None);
        assert_eq!(
            inj.decide(IoDir::Read, 0, 1, t(1_000)),
            Some(DiskFault::PowerLoss)
        );
    }

    #[test]
    fn torn_persisted_is_a_strict_prefix() {
        let plan = FaultPlan {
            torn_write: 1.0,
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(plan, rng());
        for _ in 0..1_000 {
            assert_eq!(
                inj.decide(IoDir::Write, 0, 16, t(0)),
                Some(DiskFault::TornWrite)
            );
            let p = inj.torn_persisted(16);
            assert!(p < 16);
        }
        // Single-sector writes cannot tear.
        assert_eq!(inj.decide(IoDir::Write, 0, 1, t(0)), None);
    }

    #[test]
    fn disk_death_is_permanent_across_revive() {
        let plan = FaultPlan::disk_death(t(1_000), SimDuration::from_micros(500));
        assert_eq!(plan.replacement_at(), Some(t(1_500)));
        assert!(!plan.is_zero());
        let mut inj = FaultInjector::new(plan, rng());
        assert_eq!(inj.decide(IoDir::Read, 0, 1, t(999)), None);
        assert!(!inj.is_failed());
        assert_eq!(
            inj.decide(IoDir::Write, 0, 1, t(1_000)),
            Some(DiskFault::PowerLoss)
        );
        assert!(inj.is_failed() && inj.is_dead());
        assert_eq!(inj.counters().deaths, 1);
        // A reboot does nothing for a dead spindle.
        inj.revive();
        assert!(inj.is_failed() && inj.is_dead());
        assert_eq!(
            inj.decide(IoDir::Read, 5, 1, t(2_000)),
            Some(DiskFault::PowerLoss)
        );
        // The death is counted once, not per op.
        assert_eq!(inj.counters().deaths, 1);
    }

    #[test]
    fn remap_clears_defects_in_range() {
        let mut inj = FaultInjector::new(FaultPlan::none(), rng());
        inj.add_defect(100);
        inj.add_defect(105);
        inj.add_defect(200);
        assert_eq!(
            inj.decide(IoDir::Read, 100, 8, t(0)),
            Some(DiskFault::Media)
        );
        assert_eq!(inj.remap(100, 8), 2);
        assert_eq!(inj.counters().remapped, 2);
        // The remapped range serves again; the untouched defect stays.
        assert_eq!(inj.decide(IoDir::Read, 100, 8, t(1)), None);
        assert_eq!(
            inj.decide(IoDir::Read, 200, 1, t(2)),
            Some(DiskFault::Media)
        );
        assert_eq!(inj.remap(0, 50), 0);
    }

    #[test]
    fn revive_keeps_defects() {
        let plan = FaultPlan {
            power_cut_after_ops: Some(0),
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(plan, rng());
        inj.add_defect(42);
        assert_eq!(
            inj.decide(IoDir::Read, 42, 1, t(0)),
            Some(DiskFault::PowerLoss)
        );
        inj.revive();
        assert_eq!(inj.decide(IoDir::Read, 42, 1, t(0)), Some(DiskFault::Media));
    }
}
