//! Disk image persistence.
//!
//! Saves a [`Disk`]'s full state — model, head position, and every
//! written sector — to a single file, so the `abrctl` control programs
//! (and tests) can operate on a disk across process lifetimes, the way
//! the paper's user-level programs operated on a real drive across
//! reboots.
//!
//! Format (little-endian): magic, version, JSON-encoded model length +
//! bytes, head cylinder, sector count, then `(sector_index, 512 bytes)`
//! records, and a trailing Fletcher-64 checksum over everything before
//! it.

use crate::disk::Disk;
use crate::models::DiskModel;
use crate::SECTOR_SIZE;
use std::io::{self, Read, Write};

const IMAGE_MAGIC: u64 = 0x4142_5244_4953_4b31; // "ABRDISK1"

/// Errors from image encoding/decoding.
#[derive(Debug)]
pub enum ImageError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not an image file (bad magic or version).
    BadFormat,
    /// Corrupt image (checksum mismatch).
    BadChecksum,
    /// The embedded model failed to parse.
    BadModel(serde_json::Error),
}

impl std::fmt::Display for ImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageError::Io(e) => write!(f, "i/o: {e}"),
            ImageError::BadFormat => write!(f, "not a disk image"),
            ImageError::BadChecksum => write!(f, "corrupt disk image"),
            ImageError::BadModel(e) => write!(f, "bad embedded disk model: {e}"),
        }
    }
}

impl std::error::Error for ImageError {}

impl From<io::Error> for ImageError {
    fn from(e: io::Error) -> Self {
        ImageError::Io(e)
    }
}

/// Serialize a disk to a writer.
pub fn save<W: Write>(disk: &Disk, mut w: W) -> Result<(), ImageError> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&IMAGE_MAGIC.to_le_bytes());
    let model_json = serde_json::to_vec(disk.model()).expect("model serializes");
    buf.extend_from_slice(&(model_json.len() as u64).to_le_bytes());
    buf.extend_from_slice(&model_json);
    buf.extend_from_slice(&u64::from(disk.head_cylinder()).to_le_bytes());

    // Collect written sectors in ascending order for a canonical image.
    let total = disk.geometry().total_sectors();
    let mut sectors: Vec<u64> = Vec::new();
    // The store is sparse; walk it via its public probe (read each written
    // sector). To stay O(written) rather than O(disk), the store exposes
    // its indices.
    for idx in disk.store().written_indices() {
        sectors.push(idx);
    }
    sectors.sort_unstable();
    sectors.dedup();
    buf.extend_from_slice(&(sectors.len() as u64).to_le_bytes());
    for s in sectors {
        debug_assert!(s < total);
        buf.extend_from_slice(&s.to_le_bytes());
        buf.extend_from_slice(&disk.store().read_sector(s));
    }
    let sum = fletcher64(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    w.write_all(&buf)?;
    Ok(())
}

/// Deserialize a disk from a reader.
pub fn load<R: Read>(mut r: R) -> Result<Disk, ImageError> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    if buf.len() < 8 + 8 + 8 {
        return Err(ImageError::BadFormat);
    }
    let (body, tail) = buf.split_at(buf.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8"));
    if fletcher64(body) != stored {
        return Err(ImageError::BadChecksum);
    }
    let mut pos = 0usize;
    let take_u64 = |pos: &mut usize| -> Result<u64, ImageError> {
        let end = *pos + 8;
        if end > body.len() {
            return Err(ImageError::BadFormat);
        }
        let v = u64::from_le_bytes(body[*pos..end].try_into().expect("8"));
        *pos = end;
        Ok(v)
    };
    if take_u64(&mut pos)? != IMAGE_MAGIC {
        return Err(ImageError::BadFormat);
    }
    let model_len = take_u64(&mut pos)? as usize;
    if pos + model_len > body.len() {
        return Err(ImageError::BadFormat);
    }
    let model: DiskModel =
        serde_json::from_slice(&body[pos..pos + model_len]).map_err(ImageError::BadModel)?;
    pos += model_len;
    let head = take_u64(&mut pos)? as u32;
    let n_sectors = take_u64(&mut pos)? as usize;

    let mut disk = Disk::new(model);
    for _ in 0..n_sectors {
        let idx = take_u64(&mut pos)?;
        if pos + SECTOR_SIZE > body.len() {
            return Err(ImageError::BadFormat);
        }
        disk.store_mut().write(idx, &body[pos..pos + SECTOR_SIZE]);
        pos += SECTOR_SIZE;
    }
    disk.set_head_cylinder(head.min(disk.geometry().cylinders - 1));
    Ok(disk)
}

/// Fletcher-style 64-bit checksum over a byte slice (used for the disk
/// image format and the on-disk block table).
pub fn fletcher64(bytes: &[u8]) -> u64 {
    let (mut a, mut b) = (0u64, 0u64);
    for chunk in bytes.chunks(4) {
        let mut w = [0u8; 4];
        w[..chunk.len()].copy_from_slice(chunk);
        a = a.wrapping_add(u64::from(u32::from_le_bytes(w)));
        b = b.wrapping_add(a);
    }
    (b << 32) | (a & 0xffff_ffff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::IoDir;
    use crate::models;
    use abr_sim::SimTime;

    #[test]
    fn roundtrip_preserves_data_and_head() {
        let mut d = Disk::new(models::tiny_test_disk());
        d.store_mut().write(5, &[0xAA; SECTOR_SIZE]);
        d.store_mut().write(99, &[0xBB; SECTOR_SIZE * 2]);
        d.service(IoDir::Read, 640, 1, SimTime::ZERO); // moves head to cyl 10

        let mut img = Vec::new();
        save(&d, &mut img).unwrap();
        let back = load(&img[..]).unwrap();
        assert_eq!(back.head_cylinder(), 10);
        assert_eq!(back.store().read_sector(5), [0xAA; SECTOR_SIZE]);
        assert_eq!(back.store().read_sector(99), [0xBB; SECTOR_SIZE]);
        assert_eq!(back.store().read_sector(100), [0xBB; SECTOR_SIZE]);
        assert!(back.store().read_sector(7).iter().all(|&b| b == 0));
        assert_eq!(back.model().name, "TinyTest");
    }

    #[test]
    fn corruption_detected() {
        let d = Disk::new(models::tiny_test_disk());
        let mut img = Vec::new();
        save(&d, &mut img).unwrap();
        let mid = img.len() / 2;
        img[mid] ^= 0x01;
        assert!(matches!(
            load(&img[..]),
            Err(ImageError::BadChecksum) | Err(ImageError::BadFormat)
        ));
    }

    #[test]
    fn garbage_rejected() {
        assert!(matches!(
            load(&b"not an image"[..]),
            Err(ImageError::BadFormat)
        ));
    }

    #[test]
    fn empty_disk_roundtrips() {
        let d = Disk::new(models::fujitsu_m2266());
        let mut img = Vec::new();
        save(&d, &mut img).unwrap();
        let back = load(&img[..]).unwrap();
        assert_eq!(back.store().written_sectors(), 0);
        assert_eq!(back.model().name, "Fujitsu M2266");
    }
}
