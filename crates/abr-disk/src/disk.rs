//! The disk mechanism: head movement, rotation, transfer, track buffer.
//!
//! [`Disk::service`] computes the full mechanical timing of one request —
//! the decomposition the paper's driver measures (§4.1.5, Table 10): fixed
//! controller overhead, seek (from the Table 1 curve), rotational latency
//! (the platter spins continuously at 3600 RPM; the model tracks absolute
//! rotational phase), and media transfer, with track-switch and
//! cylinder-crossing penalties for long transfers. Reads on a drive with a
//! track buffer (the Fujitsu) may hit the read-ahead buffer and skip the
//! mechanics entirely, exactly as footnote 4 of the paper describes.

use crate::fault::{DiskError, DiskFault, FaultInjector};
use crate::geometry::Geometry;
use crate::models::DiskModel;
use crate::store::SectorStore;
use abr_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Direction of a disk transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoDir {
    /// Data flows disk → host.
    Read,
    /// Data flows host → disk.
    Write,
}

impl IoDir {
    /// True for reads.
    pub fn is_read(self) -> bool {
        matches!(self, IoDir::Read)
    }
}

/// Mechanical timing decomposition of one serviced request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceBreakdown {
    /// Fixed controller/bus overhead.
    pub overhead: SimDuration,
    /// Arm movement time.
    pub seek: SimDuration,
    /// Rotational latency waiting for the first sector.
    pub rotation: SimDuration,
    /// Media (or buffer) transfer time.
    pub transfer: SimDuration,
    /// Seek distance in cylinders actually travelled by the arm.
    pub seek_distance: u64,
    /// Whether the request was satisfied from the track buffer.
    pub buffer_hit: bool,
}

impl ServiceBreakdown {
    /// Total service time.
    pub fn total(&self) -> SimDuration {
        self.overhead + self.seek + self.rotation + self.transfer
    }
}

/// Read-ahead buffer contents: a contiguous run of sectors.
#[derive(Debug, Clone, Copy)]
struct BufferedRange {
    start: u64,
    /// Exclusive end.
    end: u64,
}

/// The disk mechanism: one arm, continuously spinning platters, optional
/// read-ahead buffer, and the data store.
#[derive(Debug)]
pub struct Disk {
    model: DiskModel,
    head_cylinder: u32,
    buffer: Option<BufferedRange>,
    store: SectorStore,
    requests_serviced: u64,
    /// Fault decision engine; `None` (the default) means a perfect disk
    /// following exactly the pre-fault code path.
    injector: Option<FaultInjector>,
}

impl Disk {
    /// A disk with the head parked at cylinder 0 and empty media.
    pub fn new(model: DiskModel) -> Self {
        Disk {
            model,
            head_cylinder: 0,
            buffer: None,
            store: SectorStore::new(),
            requests_serviced: 0,
            injector: None,
        }
    }

    /// The model this disk was built from.
    pub fn model(&self) -> &DiskModel {
        &self.model
    }

    /// Geometry shorthand.
    pub fn geometry(&self) -> &Geometry {
        &self.model.geometry
    }

    /// Current arm position.
    pub fn head_cylinder(&self) -> u32 {
        self.head_cylinder
    }

    /// Number of requests serviced so far.
    pub fn requests_serviced(&self) -> u64 {
        self.requests_serviced
    }

    /// Access the data store (for I/O data and integrity checks).
    pub fn store(&self) -> &SectorStore {
        &self.store
    }

    /// Mutable access to the data store.
    pub fn store_mut(&mut self) -> &mut SectorStore {
        &mut self.store
    }

    /// Install (or remove) a fault injector.
    pub fn set_injector(&mut self, injector: Option<FaultInjector>) {
        self.injector = injector;
    }

    /// The installed fault injector, if any.
    pub fn injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// Mutable access to the installed fault injector, if any.
    pub fn injector_mut(&mut self) -> Option<&mut FaultInjector> {
        self.injector.as_mut()
    }

    /// Park the arm at a specific cylinder (used when restoring a
    /// persisted disk image).
    ///
    /// # Panics
    /// Panics if the cylinder is off the disk.
    pub fn set_head_cylinder(&mut self, cylinder: u32) {
        assert!(cylinder < self.model.geometry.cylinders);
        self.head_cylinder = cylinder;
    }

    /// Rotational phase in `[0, 1)` at absolute time `t` (fraction of a
    /// revolution past the index mark).
    fn phase_at(&self, t: SimTime) -> f64 {
        let rev = self.model.geometry.revolution_us();
        (t.as_micros() % rev) as f64 / rev as f64
    }

    /// Angular start position of a sector within its track, in `[0, 1)`.
    fn sector_phase(&self, sector: u64) -> f64 {
        let spt = u64::from(self.model.geometry.sectors_per_track);
        let within = sector % spt;
        within as f64 / spt as f64
    }

    /// Service one request starting (at the disk) at time `start`.
    /// Computes timing, moves the arm, and updates the read-ahead buffer.
    /// Data movement is separate (see [`Disk::store_mut`]); the driver
    /// performs it at completion time.
    ///
    /// # Panics
    /// Panics if the sector range runs off the disk or is empty.
    pub fn service(
        &mut self,
        dir: IoDir,
        sector: u64,
        n_sectors: u32,
        start: SimTime,
    ) -> ServiceBreakdown {
        assert!(n_sectors > 0, "empty transfer");
        let g = self.model.geometry;
        let last = sector + u64::from(n_sectors) - 1;
        assert!(last < g.total_sectors(), "transfer off the end of disk");
        self.requests_serviced += 1;

        // Track-buffer hit: data comes straight off the buffer.
        if dir.is_read() {
            if let (Some(buf), Some(spec)) = (self.buffer, self.model.track_buffer) {
                if sector >= buf.start && last < buf.end {
                    let transfer = SimDuration::from_micros(
                        u64::from(spec.hit_transfer_us_per_sector) * u64::from(n_sectors),
                    );
                    return ServiceBreakdown {
                        overhead: self.model.overhead,
                        seek: SimDuration::ZERO,
                        rotation: SimDuration::ZERO,
                        transfer,
                        seek_distance: 0,
                        buffer_hit: true,
                    };
                }
            }
        }

        // Mechanical path. 1: seek.
        let target_cyl = g.cylinder_of(sector);
        let distance = u64::from(self.head_cylinder.abs_diff(target_cyl));
        let seek = self.model.seek.time(distance);

        // 2: rotational latency to the first sector, relative to the
        // platter phase when the head arrives.
        let arrive = start + self.model.overhead + seek;
        let now_phase = self.phase_at(arrive);
        let want_phase = self.sector_phase(sector);
        let mut frac = want_phase - now_phase;
        if frac < 0.0 {
            frac += 1.0;
        }
        let rotation = SimDuration::from_micros((frac * g.revolution_us() as f64).round() as u64);

        // 3: media transfer, with penalties at track and cylinder
        // boundaries.
        let spt = u64::from(g.sectors_per_track);
        let mut transfer_us = g.sector_time_us() * f64::from(n_sectors);
        let first_track = sector / spt;
        let last_track = last / spt;
        let first_cyl = u64::from(target_cyl);
        let last_cyl = u64::from(g.cylinder_of(last));
        let cyl_crossings = last_cyl - first_cyl;
        // A cylinder crossing is also a track-number crossing in the flat
        // numbering; charge it the 1-cylinder seek only, and the
        // remaining boundaries the head-switch time.
        let track_crossings = (last_track - first_track) - cyl_crossings;
        transfer_us += track_crossings as f64 * self.model.track_switch.as_micros() as f64;
        transfer_us += cyl_crossings as f64 * self.model.seek.time_ms(1) * 1_000.0;
        let transfer = SimDuration::from_micros(transfer_us.round() as u64);

        // Arm ends where the transfer ended.
        self.head_cylinder = g.cylinder_of(last);

        // Buffer maintenance.
        if let Some(spec) = self.model.track_buffer {
            let cap_sectors = u64::from(spec.capacity_bytes) / crate::SECTOR_SIZE as u64;
            match dir {
                IoDir::Read => {
                    // Read-ahead: after the read, the drive keeps reading
                    // into the buffer up to its capacity or the end of the
                    // current cylinder, whichever is first.
                    let cyl_end = g.cylinder_start(self.head_cylinder) + g.sectors_per_cylinder();
                    let end = (sector + cap_sectors).min(cyl_end);
                    self.buffer = Some(BufferedRange { start: sector, end });
                }
                IoDir::Write => {
                    // Conservative invalidation: drop the buffer if the
                    // write overlaps it.
                    if let Some(buf) = self.buffer {
                        if sector < buf.end && last + 1 > buf.start {
                            self.buffer = None;
                        }
                    }
                }
            }
        }

        ServiceBreakdown {
            overhead: self.model.overhead,
            seek,
            rotation,
            transfer,
            seek_distance: distance,
            buffer_hit: false,
        }
    }

    /// Fallible variant of [`Disk::service`], consulting the installed
    /// [`FaultInjector`]. Without an injector this is exactly `service`
    /// wrapped in `Ok` — same timing, same mechanical state, no
    /// randomness consumed.
    ///
    /// On a fault the arm still travels (the mechanics ran before the
    /// drive reported the error), the op's time is charged through
    /// [`DiskError::elapsed`], and no data should be considered
    /// transferred — except a [`DiskFault::TornWrite`], where the first
    /// [`DiskError::persisted`] sectors of the payload did reach the
    /// media and the caller must apply exactly that prefix to the store.
    /// A [`DiskFault::PowerLoss`] consumes no time and moves nothing:
    /// the device is dead.
    ///
    /// # Panics
    /// Panics if the sector range runs off the disk or is empty.
    pub fn try_service(
        &mut self,
        dir: IoDir,
        sector: u64,
        n_sectors: u32,
        start: SimTime,
    ) -> Result<ServiceBreakdown, DiskError> {
        let Some(injector) = self.injector.as_mut() else {
            return Ok(self.service(dir, sector, n_sectors, start));
        };
        let Some(fault) = injector.decide(dir, sector, n_sectors, start) else {
            return Ok(self.service(dir, sector, n_sectors, start));
        };
        if fault == DiskFault::PowerLoss {
            return Err(DiskError {
                fault,
                sector,
                n_sectors,
                persisted: 0,
                elapsed: SimDuration::ZERO,
            });
        }
        let persisted = if fault == DiskFault::TornWrite {
            self.injector
                .as_mut()
                .expect("injector checked above")
                .torn_persisted(n_sectors)
        } else {
            0
        };
        // The mechanics still ran before the drive reported the failure:
        // charge the op's full time and move the arm. Invalidate any
        // buffer overlap so a failed read can never be "fixed" by a
        // later buffer hit serving the same sectors.
        let breakdown = self.service(dir, sector, n_sectors, start);
        if dir.is_read() {
            if let Some(buf) = self.buffer {
                let last = sector + u64::from(n_sectors) - 1;
                if sector < buf.end && last + 1 > buf.start {
                    self.buffer = None;
                }
            }
        }
        Err(DiskError {
            fault,
            sector,
            n_sectors,
            persisted,
            elapsed: breakdown.total(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    fn at(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn zero_distance_seek_when_on_cylinder() {
        let mut d = Disk::new(models::tiny_test_disk());
        // Move to cylinder 5 (sector 5*64 = 320).
        d.service(IoDir::Read, 320, 1, at(0));
        assert_eq!(d.head_cylinder(), 5);
        let b = d.service(IoDir::Read, 321, 1, at(100_000));
        assert_eq!(b.seek_distance, 0);
        assert_eq!(b.seek, SimDuration::ZERO);
    }

    #[test]
    fn seek_time_follows_curve() {
        let mut d = Disk::new(models::tiny_test_disk());
        // From cylinder 0 to cylinder 10: 1.0 + 0.05*10 = 1.5 ms.
        let b = d.service(IoDir::Read, 640, 1, at(0));
        assert_eq!(b.seek_distance, 10);
        assert_eq!(b.seek, SimDuration::from_micros(1_500));
    }

    #[test]
    fn rotation_bounded_by_one_revolution() {
        let mut d = Disk::new(models::toshiba_mk156f());
        for i in 0..50u64 {
            let b = d.service(IoDir::Read, i * 97 % 1000, 4, at(i * 40_000));
            assert!(b.rotation.as_micros() <= d.geometry().revolution_us());
        }
    }

    #[test]
    fn rotation_phase_is_deterministic() {
        // Requesting the sector under the head right when it passes gives
        // different latency than just after it passed.
        let mut d1 = Disk::new(models::tiny_test_disk());
        let mut d2 = Disk::new(models::tiny_test_disk());
        let b1 = d1.service(IoDir::Read, 0, 1, at(0));
        let b2 = d2.service(IoDir::Read, 0, 1, at(1_000));
        assert_ne!(b1.rotation, b2.rotation);
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let mut d = Disk::new(models::toshiba_mk156f());
        let small = d.service(IoDir::Read, 0, 2, at(0));
        let big = d.service(IoDir::Read, 0, 16, at(1_000_000));
        // 16 sectors take ~8x the media time of 2.
        let ratio = big.transfer.as_micros() as f64 / small.transfer.as_micros() as f64;
        assert!((ratio - 8.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn eight_k_block_transfer_near_half_track_on_toshiba() {
        // 8 KB = 16 sectors; a Toshiba track is 34 sectors, so media
        // transfer is about half a revolution (~7.8 ms).
        let mut d = Disk::new(models::toshiba_mk156f());
        let b = d.service(IoDir::Read, 0, 16, at(0));
        let ms = b.transfer.as_millis_f64();
        assert!((ms - 7.84).abs() < 0.1, "transfer {ms} ms");
    }

    #[test]
    fn track_crossing_adds_switch_time() {
        let d_model = models::tiny_test_disk(); // 16 sectors/track
        let mut d = Disk::new(d_model);
        let same_track = d.service(IoDir::Read, 0, 8, at(0));
        let crossing = d.service(IoDir::Read, 12, 8, at(1_000_000)); // spans sectors 12..20
        let extra = crossing.transfer.as_micros() as i64 - same_track.transfer.as_micros() as i64;
        assert_eq!(extra, 300); // track_switch of the tiny disk
    }

    #[test]
    fn head_moves_to_final_cylinder() {
        let mut d = Disk::new(models::tiny_test_disk());
        // 64 sectors/cylinder; a 10-sector read starting at sector 60
        // ends on cylinder 1.
        let b = d.service(IoDir::Read, 60, 10, at(0));
        assert_eq!(d.head_cylinder(), 1);
        assert_eq!(b.seek_distance, 0); // started on cylinder 0
    }

    #[test]
    fn fujitsu_buffer_hit_on_reread() {
        let mut d = Disk::new(models::fujitsu_m2266());
        let first = d.service(IoDir::Read, 1000, 16, at(0));
        assert!(!first.buffer_hit);
        // Re-read the same range: buffer hit, no mechanics.
        let second = d.service(IoDir::Read, 1000, 16, at(1_000_000));
        assert!(second.buffer_hit);
        assert_eq!(second.seek, SimDuration::ZERO);
        assert_eq!(second.rotation, SimDuration::ZERO);
        assert_eq!(second.transfer, SimDuration::from_micros(170 * 16));
        assert!(second.total() < first.total());
    }

    #[test]
    fn buffer_readahead_covers_following_sectors() {
        let mut d = Disk::new(models::fujitsu_m2266());
        d.service(IoDir::Read, 1000, 16, at(0));
        // The next sequential block should also hit (read-ahead).
        let next = d.service(IoDir::Read, 1016, 16, at(1_000_000));
        assert!(next.buffer_hit, "read-ahead should cover 1016..1032");
    }

    #[test]
    fn write_invalidates_overlapping_buffer() {
        let mut d = Disk::new(models::fujitsu_m2266());
        d.service(IoDir::Read, 1000, 16, at(0));
        d.service(IoDir::Write, 1008, 4, at(1_000_000));
        let reread = d.service(IoDir::Read, 1000, 16, at(2_000_000));
        assert!(!reread.buffer_hit, "buffer must be invalidated by write");
    }

    #[test]
    fn toshiba_never_buffer_hits() {
        let mut d = Disk::new(models::toshiba_mk156f());
        d.service(IoDir::Read, 100, 16, at(0));
        let again = d.service(IoDir::Read, 100, 16, at(1_000_000));
        assert!(!again.buffer_hit);
    }

    #[test]
    fn writes_never_buffer_hit() {
        let mut d = Disk::new(models::fujitsu_m2266());
        d.service(IoDir::Read, 1000, 16, at(0));
        let w = d.service(IoDir::Write, 1000, 16, at(1_000_000));
        assert!(!w.buffer_hit);
    }

    #[test]
    fn total_is_sum_of_parts() {
        let mut d = Disk::new(models::toshiba_mk156f());
        let b = d.service(IoDir::Read, 5000, 16, at(12_345));
        assert_eq!(b.total(), b.overhead + b.seek + b.rotation + b.transfer);
    }

    #[test]
    #[should_panic(expected = "off the end")]
    fn off_disk_transfer_panics() {
        let mut d = Disk::new(models::tiny_test_disk());
        let total = d.geometry().total_sectors();
        d.service(IoDir::Read, total - 1, 2, at(0));
    }

    #[test]
    fn service_counts_requests() {
        let mut d = Disk::new(models::tiny_test_disk());
        d.service(IoDir::Read, 0, 1, at(0));
        d.service(IoDir::Write, 1, 1, at(1_000));
        assert_eq!(d.requests_serviced(), 2);
    }

    #[test]
    fn try_service_without_injector_matches_service() {
        let mut a = Disk::new(models::fujitsu_m2266());
        let mut b = Disk::new(models::fujitsu_m2266());
        for i in 0..200u64 {
            let dir = if i % 4 == 0 {
                IoDir::Write
            } else {
                IoDir::Read
            };
            let sector = i * 97 % 10_000;
            let plain = a.service(dir, sector, 8, at(i * 30_000));
            let fallible = b.try_service(dir, sector, 8, at(i * 30_000)).unwrap();
            assert_eq!(plain, fallible);
        }
        assert_eq!(a.head_cylinder(), b.head_cylinder());
    }

    #[test]
    fn try_service_with_zero_plan_matches_service() {
        use crate::fault::{FaultInjector, FaultPlan};
        let mut a = Disk::new(models::fujitsu_m2266());
        let mut b = Disk::new(models::fujitsu_m2266());
        b.set_injector(Some(FaultInjector::new(
            FaultPlan::none(),
            abr_sim::SimRng::new(1).substream("faults"),
        )));
        for i in 0..200u64 {
            let dir = if i % 4 == 0 {
                IoDir::Write
            } else {
                IoDir::Read
            };
            let sector = i * 97 % 10_000;
            let plain = a.service(dir, sector, 8, at(i * 30_000));
            let fallible = b.try_service(dir, sector, 8, at(i * 30_000)).unwrap();
            assert_eq!(plain, fallible);
        }
    }

    #[test]
    fn defective_sector_fails_and_charges_time() {
        use crate::fault::{DiskFault, FaultInjector, FaultPlan};
        let mut d = Disk::new(models::toshiba_mk156f());
        let mut inj = FaultInjector::new(FaultPlan::none(), abr_sim::SimRng::new(2));
        inj.add_defect(500);
        d.set_injector(Some(inj));
        let err = d.try_service(IoDir::Read, 496, 16, at(0)).unwrap_err();
        assert_eq!(err.fault, DiskFault::Media);
        assert!(
            err.elapsed > SimDuration::ZERO,
            "failed op still takes time"
        );
        // Outside the defect: fine.
        assert!(d.try_service(IoDir::Read, 5_000, 16, at(1_000_000)).is_ok());
    }

    #[test]
    fn failed_read_does_not_leave_a_covering_buffer() {
        use crate::fault::{FaultInjector, FaultPlan};
        let mut d = Disk::new(models::fujitsu_m2266());
        // Warm the buffer over 1000..1256ish.
        d.service(IoDir::Read, 1000, 16, at(0));
        let mut inj = FaultInjector::new(FaultPlan::none(), abr_sim::SimRng::new(3));
        inj.add_defect(1020);
        d.set_injector(Some(inj));
        // A failed read overlapping the buffer drops it...
        assert!(d.try_service(IoDir::Read, 1016, 16, at(1_000_000)).is_err());
        // ...and keeps failing rather than ever "hitting" stale data.
        assert!(d.try_service(IoDir::Read, 1016, 16, at(2_000_000)).is_err());
    }

    #[test]
    fn power_loss_consumes_no_time_and_freezes_arm() {
        use crate::fault::{DiskFault, FaultInjector, FaultPlan};
        let mut d = Disk::new(models::toshiba_mk156f());
        d.service(IoDir::Read, 5_000, 16, at(0));
        let head = d.head_cylinder();
        let plan = FaultPlan {
            power_cut_after_ops: Some(0),
            ..FaultPlan::default()
        };
        d.set_injector(Some(FaultInjector::new(plan, abr_sim::SimRng::new(4))));
        let err = d
            .try_service(IoDir::Write, 0, 16, at(1_000_000))
            .unwrap_err();
        assert_eq!(err.fault, DiskFault::PowerLoss);
        assert_eq!(err.elapsed, SimDuration::ZERO);
        assert_eq!(d.head_cylinder(), head);
    }
}
