//! Disk geometry and address arithmetic.
//!
//! A SCSI disk presents itself as a flat sequence of logical sectors; the
//! paper (§4.1.1, footnote 2) relies on the standard assumption that SCSI
//! sector numbers map to physical positions in the obvious
//! cylinder-major / track-major order. [`Geometry`] owns that mapping.

use serde::{Deserialize, Serialize};

/// Physical geometry of a disk: cylinders x tracks x sectors at a fixed
/// rotational speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Geometry {
    /// Number of cylinders (seek positions).
    pub cylinders: u32,
    /// Tracks (recording surfaces / heads) per cylinder.
    pub tracks_per_cylinder: u32,
    /// Sectors per track.
    pub sectors_per_track: u32,
    /// Spindle speed in revolutions per minute.
    pub rpm: u32,
}

/// A decomposed sector address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SectorAddr {
    /// Cylinder number, `0..cylinders`.
    pub cylinder: u32,
    /// Track within the cylinder, `0..tracks_per_cylinder`.
    pub track: u32,
    /// Sector within the track, `0..sectors_per_track`.
    pub sector: u32,
}

impl Geometry {
    /// Sectors in one cylinder.
    #[inline]
    pub fn sectors_per_cylinder(&self) -> u64 {
        u64::from(self.tracks_per_cylinder) * u64::from(self.sectors_per_track)
    }

    /// Total sectors on the disk.
    #[inline]
    pub fn total_sectors(&self) -> u64 {
        u64::from(self.cylinders) * self.sectors_per_cylinder()
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn capacity_bytes(&self) -> u64 {
        self.total_sectors() * crate::SECTOR_SIZE as u64
    }

    /// One full revolution, in microseconds.
    #[inline]
    pub fn revolution_us(&self) -> u64 {
        60_000_000 / u64::from(self.rpm)
    }

    /// Time for one sector to pass under the head, in microseconds
    /// (fractional, for accumulation).
    #[inline]
    pub fn sector_time_us(&self) -> f64 {
        self.revolution_us() as f64 / f64::from(self.sectors_per_track)
    }

    /// The cylinder containing a flat sector number.
    ///
    /// # Panics
    /// Debug-asserts the sector is on the disk.
    #[inline]
    pub fn cylinder_of(&self, sector: u64) -> u32 {
        debug_assert!(sector < self.total_sectors(), "sector off disk");
        abr_sim::narrow::u32_from_u64(sector / self.sectors_per_cylinder())
    }

    /// Decompose a flat sector number.
    #[inline]
    pub fn decompose(&self, sector: u64) -> SectorAddr {
        debug_assert!(sector < self.total_sectors(), "sector off disk");
        let spc = self.sectors_per_cylinder();
        let cylinder = abr_sim::narrow::u32_from_u64(sector / spc);
        let within = sector % spc;
        SectorAddr {
            cylinder,
            track: abr_sim::narrow::u32_from_u64(within / u64::from(self.sectors_per_track)),
            sector: abr_sim::narrow::u32_from_u64(within % u64::from(self.sectors_per_track)),
        }
    }

    /// Recompose a [`SectorAddr`] to a flat sector number.
    #[inline]
    pub fn compose(&self, addr: SectorAddr) -> u64 {
        debug_assert!(addr.cylinder < self.cylinders);
        debug_assert!(addr.track < self.tracks_per_cylinder);
        debug_assert!(addr.sector < self.sectors_per_track);
        u64::from(addr.cylinder) * self.sectors_per_cylinder()
            + u64::from(addr.track) * u64::from(self.sectors_per_track)
            + u64::from(addr.sector)
    }

    /// First sector of a cylinder.
    #[inline]
    pub fn cylinder_start(&self, cylinder: u32) -> u64 {
        u64::from(cylinder) * self.sectors_per_cylinder()
    }

    /// The middle cylinder of the disk (where the organ-pipe heuristic
    /// wants the hottest data, and where the reserved area lives).
    #[inline]
    pub fn middle_cylinder(&self) -> u32 {
        self.cylinders / 2
    }

    /// A copy of this geometry with a different cylinder count (used to
    /// present the *virtual*, smaller disk to the file system — §4.1.1).
    #[inline]
    pub fn with_cylinders(&self, cylinders: u32) -> Geometry {
        Geometry { cylinders, ..*self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toshiba() -> Geometry {
        Geometry {
            cylinders: 815,
            tracks_per_cylinder: 10,
            sectors_per_track: 34,
            rpm: 3600,
        }
    }

    fn fujitsu() -> Geometry {
        Geometry {
            cylinders: 1658,
            tracks_per_cylinder: 15,
            sectors_per_track: 85,
            rpm: 3600,
        }
    }

    #[test]
    fn capacities_match_table1() {
        // Table 1: Toshiba 135 MB, Fujitsu 1 GB.
        let t = toshiba().capacity_bytes() as f64 / (1 << 20) as f64;
        assert!((t - 135.0).abs() < 3.0, "Toshiba {t} MB");
        let f = fujitsu().capacity_bytes() as f64 / (1 << 30) as f64;
        assert!((f - 1.0).abs() < 0.02, "Fujitsu {f} GB");
    }

    #[test]
    fn revolution_time_at_3600_rpm() {
        assert_eq!(toshiba().revolution_us(), 16_666);
    }

    #[test]
    fn sector_time() {
        let g = toshiba();
        let t = g.sector_time_us();
        assert!((t - 16_666.0 / 34.0).abs() < 1e-9);
    }

    #[test]
    fn decompose_compose_roundtrip() {
        let g = toshiba();
        for sector in [0u64, 1, 33, 34, 339, 340, 815 * 340 - 1] {
            let addr = g.decompose(sector);
            assert_eq!(g.compose(addr), sector);
        }
    }

    #[test]
    fn decompose_known_values() {
        let g = toshiba(); // 340 sectors/cylinder
        let a = g.decompose(340 * 3 + 34 * 2 + 5);
        assert_eq!(
            a,
            SectorAddr {
                cylinder: 3,
                track: 2,
                sector: 5
            }
        );
        assert_eq!(g.cylinder_of(340 * 3), 3);
        assert_eq!(g.cylinder_start(3), 1020);
    }

    #[test]
    fn middle_cylinder_centered() {
        assert_eq!(toshiba().middle_cylinder(), 407);
        assert_eq!(fujitsu().middle_cylinder(), 829);
    }

    #[test]
    fn with_cylinders_shrinks_only_cylinders() {
        let g = toshiba().with_cylinders(767);
        assert_eq!(g.cylinders, 767);
        assert_eq!(g.sectors_per_track, 34);
        assert_eq!(g.total_sectors(), 767 * 340);
    }
}
