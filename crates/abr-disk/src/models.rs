//! Disk model presets — Table 1 of the paper, verbatim.

use crate::geometry::Geometry;
use crate::seek::{LongSeek, SeekCurve, ShortSeek};
use abr_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Specification of a read-ahead track buffer (the Fujitsu M2266 has a
/// 256 KB one; the Toshiba MK156F has none).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrackBufferSpec {
    /// Buffer capacity in bytes.
    pub capacity_bytes: u32,
    /// Host transfer time per sector when a read hits the buffer, in
    /// microseconds. Models the SCSI bus transfer (no mechanical delay).
    pub hit_transfer_us_per_sector: u32,
}

/// A complete disk model: geometry, seek curve, fixed per-request
/// overhead, and optional track buffer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiskModel {
    /// Human-readable model name.
    pub name: String,
    /// Physical geometry.
    pub geometry: Geometry,
    /// Measured seek-time curve (Table 1).
    pub seek: SeekCurve,
    /// Fixed per-request controller + bus overhead. Not in Table 1; chosen
    /// so that total service times land in the range the paper measures
    /// (SCSI command processing on a circa-1992 controller is 1–3 ms).
    pub overhead: SimDuration,
    /// Head/track switch time within a cylinder (settle of the active
    /// head), applied when a transfer crosses a track boundary.
    pub track_switch: SimDuration,
    /// Read-ahead track buffer, if the drive has one.
    pub track_buffer: Option<TrackBufferSpec>,
}

/// The Toshiba MK156F: 135 MB, 815 cylinders, 10 tracks/cylinder,
/// 34 sectors/track, 3600 RPM, no track buffer.
///
/// Seek curve (ms, d in cylinders):
/// `0` if `d = 0`; `6.248 + 1.393*sqrt(d) - 0.99*cbrt(d) + 0.813*ln(d)` if
/// `d < 315`; `17.503 + 0.03*d` if `d >= 315`.
pub fn toshiba_mk156f() -> DiskModel {
    DiskModel {
        name: "Toshiba MK156F".to_string(),
        geometry: Geometry {
            cylinders: 815,
            tracks_per_cylinder: 10,
            sectors_per_track: 34,
            rpm: 3600,
        },
        seek: SeekCurve {
            boundary: 315,
            short: ShortSeek {
                a: 6.248,
                b: 1.393,
                c: -0.99,
                e: 0.813,
            },
            long: LongSeek { f: 17.503, g: 0.03 },
        },
        overhead: SimDuration::from_micros(2_200),
        track_switch: SimDuration::from_micros(800),
        track_buffer: None,
    }
}

/// The Fujitsu M2266: 1 GB, 1658 cylinders, 15 tracks/cylinder,
/// 85 sectors/track, 3600 RPM, 256 KB track buffer with read-ahead.
///
/// Seek curve (ms, d in cylinders):
/// `0` if `d = 0`; `1.205 + 0.65*sqrt(d) - 0.734*cbrt(d) + 0.659*ln(d)` if
/// `d <= 225`; `7.44 + 0.0114*d` if `d > 225`.
pub fn fujitsu_m2266() -> DiskModel {
    DiskModel {
        name: "Fujitsu M2266".to_string(),
        geometry: Geometry {
            cylinders: 1658,
            tracks_per_cylinder: 15,
            sectors_per_track: 85,
            rpm: 3600,
        },
        seek: SeekCurve {
            boundary: 226,
            short: ShortSeek {
                a: 1.205,
                b: 0.65,
                c: -0.734,
                e: 0.659,
            },
            long: LongSeek { f: 7.44, g: 0.0114 },
        },
        overhead: SimDuration::from_micros(1_800),
        track_switch: SimDuration::from_micros(600),
        // 256 KB buffer; ~3 MB/s sustained SCSI-1 transfer -> ~170 us per
        // 512-byte sector.
        track_buffer: Some(TrackBufferSpec {
            capacity_bytes: 256 * 1024,
            hit_transfer_us_per_sector: 170,
        }),
    }
}

/// A tiny synthetic disk for fast unit tests: 100 cylinders, 4
/// tracks/cylinder, 16 sectors/track, 3600 RPM, no buffer, simple linear
/// seek curve (1 ms + 0.05 ms/cylinder).
pub fn tiny_test_disk() -> DiskModel {
    DiskModel {
        name: "TinyTest".to_string(),
        geometry: Geometry {
            cylinders: 100,
            tracks_per_cylinder: 4,
            sectors_per_track: 16,
            rpm: 3600,
        },
        seek: SeekCurve {
            boundary: 1, // all non-zero seeks use the linear regime
            short: ShortSeek {
                a: 0.0,
                b: 0.0,
                c: 0.0,
                e: 0.0,
            },
            long: LongSeek { f: 1.0, g: 0.05 },
        },
        overhead: SimDuration::from_micros(500),
        track_switch: SimDuration::from_micros(300),
        track_buffer: None,
    }
}

impl DiskModel {
    /// All preset models from the paper, for sweeping experiments.
    pub fn paper_models() -> Vec<DiskModel> {
        vec![toshiba_mk156f(), fujitsu_m2266()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table1_geometry() {
        let t = toshiba_mk156f();
        assert_eq!(t.geometry.cylinders, 815);
        assert_eq!(t.geometry.tracks_per_cylinder, 10);
        assert_eq!(t.geometry.sectors_per_track, 34);
        assert_eq!(t.geometry.rpm, 3600);
        assert!(t.track_buffer.is_none());

        let f = fujitsu_m2266();
        assert_eq!(f.geometry.cylinders, 1658);
        assert_eq!(f.geometry.tracks_per_cylinder, 15);
        assert_eq!(f.geometry.sectors_per_track, 85);
        assert_eq!(f.geometry.rpm, 3600);
        assert_eq!(f.track_buffer.unwrap().capacity_bytes, 256 * 1024);
    }

    #[test]
    fn paper_models_are_both_presets() {
        let ms = DiskModel::paper_models();
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].name, "Toshiba MK156F");
        assert_eq!(ms[1].name, "Fujitsu M2266");
    }

    #[test]
    fn tiny_disk_is_small() {
        let d = tiny_test_disk();
        assert_eq!(d.geometry.total_sectors(), 100 * 4 * 16);
        assert_eq!(d.seek.time_ms(10), 1.5);
    }
}
