//! The UNIX-style disk label.
//!
//! §4.1.1 of the paper: "To make space for the rearranged blocks, the
//! target disk is made to look smaller than it really is by changing the
//! disk geometry information on the disk label. ... The hidden cylinders
//! implement the reserved space. ... When a target disk is initialized
//! for rearrangement, the number of the first sector and the length of
//! the reserved space are recorded in its label. During initialization a
//! special value is also recorded in the label to mark it as a
//! 'rearranged' disk."
//!
//! [`DiskLabel`] carries the physical geometry, the partition table (laid
//! out on the *virtual*, shrunken disk), and the optional [`ReservedArea`].
//! It serializes to exactly one sector with a checksum, and the driver's
//! attach routine reads it back at start-up.

use crate::geometry::Geometry;
use crate::SECTOR_SIZE;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Magic number identifying a valid label ("ABRL" + version).
const LABEL_MAGIC: u32 = 0x4142_524C;
/// The "special value ... to mark it as a rearranged disk".
const REARRANGED_MAGIC: u32 = 0x484F_545A; // "HOTZ"

/// Errors from label decoding and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LabelError {
    /// The magic number did not match — not a labelled disk.
    BadMagic,
    /// The checksum did not verify — corrupt label.
    BadChecksum,
    /// The label fields are internally inconsistent.
    Inconsistent(&'static str),
}

impl fmt::Display for LabelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelError::BadMagic => write!(f, "not a disk label (bad magic)"),
            LabelError::BadChecksum => write!(f, "corrupt disk label (bad checksum)"),
            LabelError::Inconsistent(what) => write!(f, "inconsistent label: {what}"),
        }
    }
}

impl std::error::Error for LabelError {}

/// A partition (logical device) on the virtual disk, in virtual sectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// First virtual sector of the partition.
    pub start_sector: u64,
    /// Length in sectors.
    pub n_sectors: u64,
}

impl Partition {
    /// Exclusive end sector.
    pub fn end_sector(&self) -> u64 {
        self.start_sector + self.n_sectors
    }

    /// Whether a virtual sector falls inside this partition.
    pub fn contains(&self, sector: u64) -> bool {
        sector >= self.start_sector && sector < self.end_sector()
    }
}

/// The reserved cylinder group hidden from the file system (§4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReservedArea {
    /// First physical cylinder of the reserved region.
    pub start_cylinder: u32,
    /// Number of reserved cylinders.
    pub n_cylinders: u32,
}

impl ReservedArea {
    /// Whether a physical cylinder is inside the reserved region.
    pub fn contains_cylinder(&self, cyl: u32) -> bool {
        cyl >= self.start_cylinder && cyl < self.start_cylinder + self.n_cylinders
    }

    /// First physical sector of the reserved region.
    pub fn start_sector(&self, g: &Geometry) -> u64 {
        g.cylinder_start(self.start_cylinder)
    }

    /// Length of the reserved region in sectors.
    pub fn n_sectors(&self, g: &Geometry) -> u64 {
        u64::from(self.n_cylinders) * g.sectors_per_cylinder()
    }

    /// Centre the reserved region on the middle of a disk: `n_cylinders`
    /// reserved cylinders straddling the middle cylinder, like the paper's
    /// 48 (Toshiba) and 80 (Fujitsu) cylinder regions.
    ///
    /// # Panics
    /// Panics if the region would not fit on the disk.
    pub fn centered(g: &Geometry, n_cylinders: u32) -> ReservedArea {
        assert!(n_cylinders > 0 && n_cylinders < g.cylinders);
        let start = g.middle_cylinder().saturating_sub(n_cylinders / 2);
        let start = start.min(g.cylinders - n_cylinders);
        ReservedArea {
            start_cylinder: start,
            n_cylinders,
        }
    }

    /// Like [`ReservedArea::centered`], but nudges the start cylinder so
    /// the region's first sector is aligned to a file-system block of
    /// `sectors_per_block` sectors. This guarantees no file-system block
    /// straddles the virtual→physical mapping discontinuity at the front
    /// of the hidden region, so every block stays physically contiguous.
    ///
    /// Returns `None` if no aligned start exists (can only happen for
    /// pathological geometry/block-size combinations).
    pub fn centered_aligned(
        g: &Geometry,
        n_cylinders: u32,
        sectors_per_block: u32,
    ) -> Option<ReservedArea> {
        let centered = ReservedArea::centered(g, n_cylinders);
        let spb = u64::from(sectors_per_block);
        // Search outward from the centred start for an aligned cylinder.
        for delta in 0..g.cylinders {
            for cand in [
                centered.start_cylinder.checked_sub(delta),
                centered.start_cylinder.checked_add(delta),
            ]
            .into_iter()
            .flatten()
            {
                if cand + n_cylinders > g.cylinders {
                    continue;
                }
                if g.cylinder_start(cand).is_multiple_of(spb) {
                    return Some(ReservedArea {
                        start_cylinder: cand,
                        n_cylinders,
                    });
                }
            }
        }
        None
    }
}

/// The disk label: physical geometry, partition table, and (for a
/// rearranged disk) the reserved-area extent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiskLabel {
    /// True physical geometry of the drive.
    pub physical: Geometry,
    /// Partition table in *virtual* sectors.
    pub partitions: Vec<Partition>,
    /// Reserved area, if this disk is initialized for rearrangement.
    pub reserved: Option<ReservedArea>,
}

impl DiskLabel {
    /// A plain (non-rearranged) label with one partition covering the
    /// whole disk.
    pub fn whole_disk(physical: Geometry) -> DiskLabel {
        DiskLabel {
            physical,
            partitions: vec![Partition {
                start_sector: 0,
                n_sectors: physical.total_sectors(),
            }],
            reserved: None,
        }
    }

    /// Initialize a disk for rearrangement: hide `n_cylinders` in the
    /// middle of the disk and shrink the partition table onto the virtual
    /// disk (one partition covering all of it, which callers may re-slice).
    ///
    /// The reserved region start is block-aligned for 8 KB blocks (the
    /// paper's file-system block size); use
    /// [`DiskLabel::rearranged_aligned`] for other block sizes.
    pub fn rearranged(physical: Geometry, n_cylinders: u32) -> DiskLabel {
        DiskLabel::rearranged_aligned(physical, n_cylinders, 16)
    }

    /// [`DiskLabel::rearranged`] with an explicit file-system block size in
    /// sectors, so the reserved-region boundary lands on a block boundary.
    ///
    /// # Panics
    /// Panics if no aligned placement exists.
    pub fn rearranged_aligned(
        physical: Geometry,
        n_cylinders: u32,
        sectors_per_block: u32,
    ) -> DiskLabel {
        let reserved = ReservedArea::centered_aligned(&physical, n_cylinders, sectors_per_block)
            .expect("no block-aligned reserved placement exists");
        let virtual_geometry = physical.with_cylinders(physical.cylinders - n_cylinders);
        DiskLabel {
            physical,
            partitions: vec![Partition {
                start_sector: 0,
                n_sectors: virtual_geometry.total_sectors(),
            }],
            reserved: Some(reserved),
        }
    }

    /// Like [`DiskLabel::rearranged_aligned`] but with the reserved
    /// region at the *start* of the disk rather than the middle — for
    /// ablating the organ-pipe location choice. Cylinder 0's first
    /// sectors hold the label, so the region starts at the first
    /// block-aligned cylinder at or after cylinder 1.
    pub fn rearranged_at_edge(
        physical: Geometry,
        n_cylinders: u32,
        sectors_per_block: u32,
    ) -> DiskLabel {
        let spb = u64::from(sectors_per_block);
        let start = (1..physical.cylinders - n_cylinders)
            .find(|&c| physical.cylinder_start(c).is_multiple_of(spb))
            .expect("no aligned edge placement exists");
        let reserved = ReservedArea {
            start_cylinder: start,
            n_cylinders,
        };
        let virtual_geometry = physical.with_cylinders(physical.cylinders - n_cylinders);
        DiskLabel {
            physical,
            partitions: vec![Partition {
                start_sector: 0,
                n_sectors: virtual_geometry.total_sectors(),
            }],
            reserved: Some(reserved),
        }
    }

    /// The geometry the file system sees: the physical disk minus any
    /// reserved cylinders.
    pub fn virtual_geometry(&self) -> Geometry {
        match self.reserved {
            Some(r) => self
                .physical
                .with_cylinders(self.physical.cylinders - r.n_cylinders),
            None => self.physical,
        }
    }

    /// Whether this label marks a rearranged disk.
    pub fn is_rearranged(&self) -> bool {
        self.reserved.is_some()
    }

    /// Map a *virtual* sector (file-system view) to the *physical*
    /// sector, skipping over the hidden reserved cylinders (Figure 2).
    ///
    /// # Panics
    /// Debug-asserts the sector is on the virtual disk.
    pub fn virtual_to_physical(&self, vsector: u64) -> u64 {
        match self.reserved {
            None => vsector,
            Some(r) => {
                debug_assert!(
                    vsector < self.virtual_geometry().total_sectors(),
                    "virtual sector off disk"
                );
                let spc = self.physical.sectors_per_cylinder();
                let boundary = u64::from(r.start_cylinder) * spc;
                if vsector < boundary {
                    vsector
                } else {
                    vsector + u64::from(r.n_cylinders) * spc
                }
            }
        }
    }

    /// Inverse of [`DiskLabel::virtual_to_physical`]; `None` if the
    /// physical sector lies inside the reserved region (it has no virtual
    /// address).
    pub fn physical_to_virtual(&self, psector: u64) -> Option<u64> {
        match self.reserved {
            None => Some(psector),
            Some(r) => {
                let spc = self.physical.sectors_per_cylinder();
                let res_start = u64::from(r.start_cylinder) * spc;
                let res_len = u64::from(r.n_cylinders) * spc;
                if psector < res_start {
                    Some(psector)
                } else if psector < res_start + res_len {
                    None
                } else {
                    Some(psector - res_len)
                }
            }
        }
    }

    /// Serialize the label into one 512-byte sector: magic, fields,
    /// checksum.
    pub fn encode(&self) -> [u8; SECTOR_SIZE] {
        let mut buf = [0u8; SECTOR_SIZE];
        let mut w = Writer::new(&mut buf);
        w.u32(LABEL_MAGIC);
        w.u32(self.physical.cylinders);
        w.u32(self.physical.tracks_per_cylinder);
        w.u32(self.physical.sectors_per_track);
        w.u32(self.physical.rpm);
        match self.reserved {
            Some(r) => {
                w.u32(REARRANGED_MAGIC);
                w.u32(r.start_cylinder);
                w.u32(r.n_cylinders);
            }
            None => {
                w.u32(0);
                w.u32(0);
                w.u32(0);
            }
        }
        w.u32(self.partitions.len() as u32);
        for p in &self.partitions {
            w.u64(p.start_sector);
            w.u64(p.n_sectors);
        }
        let end = w.pos;
        let sum = checksum(&buf[..end]);
        buf[SECTOR_SIZE - 4..].copy_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Decode and validate a label sector.
    pub fn decode(buf: &[u8; SECTOR_SIZE]) -> Result<DiskLabel, LabelError> {
        let mut r = Reader::new(buf);
        if r.u32() != LABEL_MAGIC {
            return Err(LabelError::BadMagic);
        }
        let physical = Geometry {
            cylinders: r.u32(),
            tracks_per_cylinder: r.u32(),
            sectors_per_track: r.u32(),
            rpm: r.u32(),
        };
        let marker = r.u32();
        let start_cylinder = r.u32();
        let n_cylinders = r.u32();
        let reserved = if marker == REARRANGED_MAGIC {
            Some(ReservedArea {
                start_cylinder,
                n_cylinders,
            })
        } else if marker == 0 {
            None
        } else {
            return Err(LabelError::Inconsistent("unknown rearrangement marker"));
        };
        let n_parts = r.u32() as usize;
        if n_parts > 16 {
            return Err(LabelError::Inconsistent("too many partitions"));
        }
        let partitions = (0..n_parts)
            .map(|_| Partition {
                start_sector: r.u64(),
                n_sectors: r.u64(),
            })
            .collect();
        let end = r.pos;
        let stored = u32::from_le_bytes(buf[SECTOR_SIZE - 4..].try_into().expect("4 bytes"));
        if checksum(&buf[..end]) != stored {
            return Err(LabelError::BadChecksum);
        }
        let label = DiskLabel {
            physical,
            partitions,
            reserved,
        };
        label.validate()?;
        Ok(label)
    }

    /// Internal consistency checks.
    fn validate(&self) -> Result<(), LabelError> {
        if self.physical.cylinders == 0
            || self.physical.tracks_per_cylinder == 0
            || self.physical.sectors_per_track == 0
            || self.physical.rpm == 0
        {
            return Err(LabelError::Inconsistent("zero geometry field"));
        }
        if let Some(r) = self.reserved {
            if r.n_cylinders == 0 || r.start_cylinder + r.n_cylinders > self.physical.cylinders {
                return Err(LabelError::Inconsistent("reserved area off disk"));
            }
        }
        let vtotal = self.virtual_geometry().total_sectors();
        for p in &self.partitions {
            if p.end_sector() > vtotal {
                return Err(LabelError::Inconsistent("partition off virtual disk"));
            }
        }
        Ok(())
    }
}

/// Simple additive-rotate checksum (label integrity, not cryptography).
fn checksum(bytes: &[u8]) -> u32 {
    bytes
        .iter()
        .fold(0xdead_beefu32, |acc, &b| acc.rotate_left(5) ^ u32::from(b))
}

struct Writer<'a> {
    buf: &'a mut [u8],
    pos: usize,
}

impl<'a> Writer<'a> {
    fn new(buf: &'a mut [u8]) -> Self {
        Writer { buf, pos: 0 }
    }
    fn u32(&mut self, v: u32) {
        self.buf[self.pos..self.pos + 4].copy_from_slice(&v.to_le_bytes());
        self.pos += 4;
    }
    fn u64(&mut self, v: u64) {
        self.buf[self.pos..self.pos + 8].copy_from_slice(&v.to_le_bytes());
        self.pos += 8;
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }
    fn u32(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().expect("4"));
        self.pos += 4;
        v
    }
    fn u64(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().expect("8"));
        self.pos += 8;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    fn toshiba_geom() -> Geometry {
        models::toshiba_mk156f().geometry
    }

    #[test]
    fn whole_disk_label_identity_mapping() {
        let l = DiskLabel::whole_disk(toshiba_geom());
        assert!(!l.is_rearranged());
        assert_eq!(l.virtual_to_physical(12345), 12345);
        assert_eq!(l.physical_to_virtual(12345), Some(12345));
        assert_eq!(l.virtual_geometry(), toshiba_geom());
    }

    #[test]
    fn rearranged_label_hides_cylinders() {
        // The paper's Toshiba setup: 48 reserved cylinders of 815.
        let l = DiskLabel::rearranged(toshiba_geom(), 48);
        let vg = l.virtual_geometry();
        assert_eq!(vg.cylinders, 815 - 48);
        let r = l.reserved.unwrap();
        // Centered near the middle.
        assert!(r.start_cylinder > 350 && r.start_cylinder < 420);
        // ~8 MB, ~6% of capacity (paper §5).
        let mb = r.n_sectors(&toshiba_geom()) as f64 * 512.0 / (1 << 20) as f64;
        assert!((mb - 8.0).abs() < 0.5, "reserved {mb} MB");
    }

    #[test]
    fn fujitsu_reserved_is_50mb() {
        let g = models::fujitsu_m2266().geometry;
        let l = DiskLabel::rearranged(g, 80);
        let r = l.reserved.unwrap();
        let mb = r.n_sectors(&g) as f64 * 512.0 / (1 << 20) as f64;
        assert!((mb - 50.0).abs() < 1.0, "reserved {mb} MB");
    }

    #[test]
    fn mapping_skips_reserved_region() {
        let g = toshiba_geom();
        let l = DiskLabel::rearranged(g, 48);
        let r = l.reserved.unwrap();
        let spc = g.sectors_per_cylinder();
        let boundary = u64::from(r.start_cylinder) * spc;

        // Below the reserved region: identity.
        assert_eq!(l.virtual_to_physical(boundary - 1), boundary - 1);
        // At the boundary: skips over the reserved cylinders.
        assert_eq!(l.virtual_to_physical(boundary), boundary + 48 * spc);
        // No virtual sector ever maps into the reserved region.
        let vtotal = l.virtual_geometry().total_sectors();
        for v in [0, boundary - 1, boundary, boundary + 1, vtotal - 1] {
            let p = l.virtual_to_physical(v);
            let cyl = g.cylinder_of(p);
            assert!(
                !r.contains_cylinder(cyl),
                "virtual {v} mapped into reserved"
            );
        }
    }

    #[test]
    fn physical_to_virtual_inverts() {
        let g = toshiba_geom();
        let l = DiskLabel::rearranged(g, 48);
        let vtotal = l.virtual_geometry().total_sectors();
        for v in [0u64, 1, 1000, vtotal / 2, vtotal - 1] {
            let p = l.virtual_to_physical(v);
            assert_eq!(l.physical_to_virtual(p), Some(v));
        }
        // Sectors inside the reserved region have no virtual address.
        let r = l.reserved.unwrap();
        let res_sector = r.start_sector(&g) + 5;
        assert_eq!(l.physical_to_virtual(res_sector), None);
    }

    #[test]
    fn encode_decode_roundtrip_plain() {
        let l = DiskLabel::whole_disk(toshiba_geom());
        let buf = l.encode();
        assert_eq!(DiskLabel::decode(&buf).unwrap(), l);
    }

    #[test]
    fn encode_decode_roundtrip_rearranged() {
        let mut l = DiskLabel::rearranged(models::fujitsu_m2266().geometry, 80);
        // Multiple partitions, like the paper's system + users split.
        let vtotal = l.virtual_geometry().total_sectors();
        l.partitions = vec![
            Partition {
                start_sector: 0,
                n_sectors: vtotal / 2,
            },
            Partition {
                start_sector: vtotal / 2,
                n_sectors: vtotal - vtotal / 2,
            },
        ];
        let buf = l.encode();
        assert_eq!(DiskLabel::decode(&buf).unwrap(), l);
    }

    #[test]
    fn decode_rejects_garbage() {
        let buf = [0u8; SECTOR_SIZE];
        assert_eq!(DiskLabel::decode(&buf), Err(LabelError::BadMagic));
    }

    #[test]
    fn decode_rejects_bitflip() {
        let l = DiskLabel::whole_disk(toshiba_geom());
        let mut buf = l.encode();
        buf[6] ^= 0x40;
        assert!(matches!(
            DiskLabel::decode(&buf),
            Err(LabelError::BadChecksum) | Err(LabelError::Inconsistent(_))
        ));
    }

    #[test]
    fn partition_contains() {
        let p = Partition {
            start_sector: 10,
            n_sectors: 5,
        };
        assert!(!p.contains(9));
        assert!(p.contains(10));
        assert!(p.contains(14));
        assert!(!p.contains(15));
    }

    #[test]
    fn reserved_area_centered_on_middle() {
        let g = toshiba_geom();
        let r = ReservedArea::centered(&g, 48);
        let mid = g.middle_cylinder();
        assert!(r.contains_cylinder(mid));
        // Roughly symmetric around the middle.
        let before = mid - r.start_cylinder;
        let after = (r.start_cylinder + r.n_cylinders) - mid;
        assert!(before.abs_diff(after) <= 1);
    }
}
