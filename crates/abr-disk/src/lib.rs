//! # abr-disk — disk mechanism model
//!
//! A calibrated model of the two SCSI disks from Table 1 of *Adaptive
//! Block Rearrangement* (Akyürek & Salem): the Toshiba MK156F (135 MB,
//! 815 cylinders) and the Fujitsu M2266 (1 GB, 1658 cylinders, 256 KB
//! read-ahead track buffer). The model computes, for each request, the
//! same service-time decomposition the paper measures: seek time (from the
//! paper's measured piecewise seek curves), rotational latency (3600 RPM
//! rotational position tracking), and media transfer time.
//!
//! Modules:
//! * [`geometry`] — cylinders/tracks/sectors layout and address math.
//! * [`seek`] — piecewise seek-time curves (Table 1).
//! * [`models`] — the two disk presets, plus a small synthetic disk for
//!   tests.
//! * [`disk`] — the disk mechanism itself: head position, rotation,
//!   track-buffer read-ahead, per-request [`disk::ServiceBreakdown`].
//! * [`store`] — sparse in-memory sector store for data-integrity checks.
//! * [`label`] — the UNIX-style disk label: partitions, virtual geometry,
//!   and the "rearranged disk" marker with the reserved-area extent
//!   (§4.1.1).
//! * [`fault`] — deterministic fault injection: transient errors, hard
//!   media errors (a growing defect list), torn writes, power cuts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod disk;
pub mod fault;
pub mod geometry;
pub mod image;
pub mod label;
pub mod models;
pub mod seek;
pub mod store;

pub use disk::{Disk, ServiceBreakdown};
pub use fault::{DiskError, DiskFault, FaultCounters, FaultInjector, FaultPlan};
pub use geometry::{Geometry, SectorAddr};
pub use label::{DiskLabel, Partition, ReservedArea};
pub use models::DiskModel;
pub use seek::SeekCurve;
pub use store::SectorStore;

/// Bytes per sector, fixed at the SCSI-classic 512.
pub const SECTOR_SIZE: usize = 512;

/// [`SECTOR_SIZE`] as `u32`, for sector arithmetic done in 32-bit
/// fields (lint rule C001 bans bare narrowing casts in those modules).
pub const SECTOR_SIZE_U32: u32 = 512;
