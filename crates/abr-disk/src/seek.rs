//! Seek-time curves.
//!
//! Table 1 of the paper gives measured piecewise seek-time functions for
//! both disks, of the form
//!
//! ```text
//! seektime(d) = 0                                   if d = 0
//!             = a + b*sqrt(d) + c*cbrt(d) + e*ln(d) if 0 < d < boundary
//!             = f + g*d                             if d >= boundary
//! ```
//!
//! with `d` the seek distance in cylinders and the result in milliseconds.
//! The short-seek curve captures the arm's acceleration-dominated regime;
//! the linear tail is the constant-velocity regime. The paper *computes*
//! its reported seek times by pushing measured seek-distance distributions
//! through these curves — [`SeekCurve::time_ms`] is that function.

use abr_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Coefficients of the short-seek regime:
/// `a + b*sqrt(d) + c*cbrt(d) + e*ln(d)` milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShortSeek {
    /// Constant term (ms).
    pub a: f64,
    /// `sqrt(d)` coefficient.
    pub b: f64,
    /// `cbrt(d)` coefficient.
    pub c: f64,
    /// `ln(d)` coefficient.
    pub e: f64,
}

/// Coefficients of the long-seek (linear) regime: `f + g*d` milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LongSeek {
    /// Constant term (ms).
    pub f: f64,
    /// Per-cylinder slope (ms/cylinder).
    pub g: f64,
}

/// A piecewise seek-time curve in the paper's Table 1 form.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeekCurve {
    /// Seek distances `1..boundary` use the short-seek curve; `>= boundary`
    /// the linear regime.
    pub boundary: u32,
    /// Short-seek coefficients.
    pub short: ShortSeek,
    /// Long-seek coefficients.
    pub long: LongSeek,
}

impl SeekCurve {
    /// Seek time in (fractional) milliseconds for a seek of `d` cylinders.
    /// Zero-distance seeks take zero time, exactly as in Table 1.
    pub fn time_ms(&self, d: u64) -> f64 {
        if d == 0 {
            return 0.0;
        }
        let df = d as f64;
        if d < u64::from(self.boundary) {
            self.short.a
                + self.short.b * df.sqrt()
                + self.short.c * df.cbrt()
                + self.short.e * df.ln()
        } else {
            self.long.f + self.long.g * df
        }
    }

    /// Seek time as a simulation duration (rounded to microseconds).
    pub fn time(&self, d: u64) -> SimDuration {
        SimDuration::from_millis_f64(self.time_ms(d))
    }

    /// Full-stroke seek time across `cylinders - 1` cylinders.
    pub fn full_stroke_ms(&self, cylinders: u32) -> f64 {
        self.time_ms(u64::from(cylinders.saturating_sub(1)))
    }
}

#[cfg(test)]
mod tests {
    use crate::models;

    #[test]
    fn zero_seek_is_free_on_both_disks() {
        assert_eq!(models::toshiba_mk156f().seek.time_ms(0), 0.0);
        assert_eq!(models::fujitsu_m2266().seek.time_ms(0), 0.0);
    }

    #[test]
    fn toshiba_curve_values() {
        let c = models::toshiba_mk156f().seek;
        // d = 1: 6.248 + 1.393 - 0.99 + 0 = 6.651 ms.
        assert!((c.time_ms(1) - 6.651).abs() < 1e-9);
        // d = 315 uses the linear regime: 17.503 + 0.03*315 = 26.953.
        assert!((c.time_ms(315) - 26.953).abs() < 1e-9);
        // d = 814 (full stroke): 17.503 + 24.42 = 41.923.
        assert!((c.full_stroke_ms(815) - 41.923).abs() < 1e-9);
    }

    #[test]
    fn fujitsu_curve_values() {
        let c = models::fujitsu_m2266().seek;
        // d = 1: 1.205 + 0.65 - 0.734 + 0 = 1.121 ms.
        assert!((c.time_ms(1) - 1.121).abs() < 1e-9);
        // Boundary in Table 1 is "<= 225" for the curve, "> 225" linear;
        // we encode boundary = 226.
        let at_225_curve =
            1.205 + 0.65 * 225f64.sqrt() - 0.734 * 225f64.cbrt() + 0.659 * 225f64.ln();
        assert!((c.time_ms(225) - at_225_curve).abs() < 1e-9);
        let at_226_linear = 7.44 + 0.0114 * 226.0;
        assert!((c.time_ms(226) - at_226_linear).abs() < 1e-9);
    }

    #[test]
    fn curves_are_monotone_within_each_regime() {
        // The paper's fitted curves are monotone within each regime but
        // have a small documented discontinuity at the regime boundary
        // (the fits were made independently), so monotonicity is only
        // checked per-regime.
        for model in [models::toshiba_mk156f(), models::fujitsu_m2266()] {
            let b = u64::from(model.seek.boundary);
            let mut prev = 0.0;
            for d in 1..b {
                let t = model.seek.time_ms(d);
                assert!(t > prev, "{}: short seek({d}) = {t} <= {prev}", model.name);
                prev = t;
            }
            prev = 0.0;
            for d in b..u64::from(model.geometry.cylinders) {
                let t = model.seek.time_ms(d);
                assert!(t > prev, "{}: long seek({d}) = {t} <= {prev}", model.name);
                prev = t;
            }
        }
    }

    #[test]
    fn fujitsu_is_faster_than_toshiba() {
        // The paper's Fujitsu is a much newer, faster mechanism.
        let t = models::toshiba_mk156f().seek;
        let f = models::fujitsu_m2266().seek;
        for d in [1u64, 10, 50, 100, 400, 800] {
            assert!(f.time_ms(d) < t.time_ms(d));
        }
    }

    #[test]
    fn short_seeks_dramatically_cheaper_than_average() {
        // The core premise of block rearrangement: a 1-cylinder seek costs
        // a fraction of an average random seek (~1/3 stroke).
        let c = models::toshiba_mk156f().seek;
        assert!(c.time_ms(1) < 0.35 * c.time_ms(815 / 3));
    }

    #[test]
    fn time_rounds_to_micros() {
        let c = models::toshiba_mk156f().seek;
        let d = c.time(1);
        assert_eq!(d.as_micros(), 6_651);
    }
}
